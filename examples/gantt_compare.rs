//! Side-by-side Gantt comparison of a heuristic and EMTS (mini Figure 6).
//!
//! Schedules one irregular 40-task PTG on a 32-processor cluster with MCPA
//! and EMTS10, prints both ASCII Gantt charts, and writes SVG versions next
//! to the binary output so the packing difference is visible at a glance.
//!
//! Run with: `cargo run --release --example gantt_compare`

use exec_model::{SyntheticModel, TimeMatrix};
use platform::Cluster;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sched::gantt::{ascii_gantt, svg_gantt, SvgOptions};
use sched::metrics::compute_metrics;
use sim::runner::{run, Algorithm};
use workloads::{daggen::random_ptg, CostConfig, DaggenParams};

fn main() {
    let params = DaggenParams {
        n: 40,
        width: 0.5,
        regularity: 0.2,
        density: 0.3,
        jump: 2,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let g = random_ptg(&params, &CostConfig::default(), &mut rng);
    let cluster = Cluster::new("mini-grelon", 32, 3.1);
    let model = SyntheticModel::default();
    let matrix = TimeMatrix::compute(&g, &model, cluster.speed_flops(), cluster.processors);

    for alg in [Algorithm::Mcpa, Algorithm::Emts10] {
        let (report, schedule) = run(alg, &g, &cluster, &model, 123);
        let metrics = compute_metrics(&g, &matrix, &schedule);
        println!(
            "== {} ==  makespan {:.2} s, utilization {:.1} %",
            report.algorithm,
            report.makespan,
            100.0 * metrics.utilization
        );
        println!("{}", ascii_gantt(&schedule, 80));
        let svg = svg_gantt(&g, &schedule, &SvgOptions::default());
        let path = std::env::temp_dir().join(format!("gantt_{}.svg", report.algorithm));
        if std::fs::write(&path, svg).is_ok() {
            println!("wrote {}\n", path.display());
        }
    }
    println!("MCPA's narrow allocations leave processors idle; EMTS stretches the");
    println!("long tasks across more processors and packs the machine tighter.");
}
