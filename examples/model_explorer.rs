//! Explore execution-time models — including plugging in your own.
//!
//! EMTS's selling point is model independence: the EA only ever calls
//! `ExecutionTimeModel::time`, so *any* implementation works. This example
//! prints the time-vs-processors curves of the built-in models for one
//! task, then defines a custom "cache-cliff" model and lets EMTS schedule
//! against it.
//!
//! Run with: `cargo run --example model_explorer`

use emts::{Emts, EmtsConfig};
use exec_model::{Amdahl, Downey, ExecutionTimeModel, Monotonized, SyntheticModel, TimeMatrix};
use ptg::{PtgBuilder, Task};
use stats::TextTable;

/// A custom model: Amdahl, but tasks fall off a cache cliff beyond 8
/// processors per task (e.g. the working set no longer fits cooperative
/// caches), making times sharply non-monotonic.
struct CacheCliff;

impl ExecutionTimeModel for CacheCliff {
    fn time(&self, task: &Task, p: u32, speed_flops: f64) -> f64 {
        let base = Amdahl.time(task, p, speed_flops);
        if p > 8 {
            base * 2.5
        } else {
            base
        }
    }

    fn name(&self) -> &'static str {
        "cache-cliff"
    }
}

fn main() {
    let task = Task::new("pdgemm", 50e9, 0.05);
    let speed = 4.3e9;
    let amdahl = Amdahl;
    let model2 = SyntheticModel::default();
    let downey = Downey::new(16.0, 1.5);
    let mono2 = Monotonized::new(SyntheticModel::default());
    let cliff = CacheCliff;

    let mut table = TextTable::new([
        "p",
        "Amdahl",
        "Model 2",
        "Downey",
        "mono(M2)",
        "cache-cliff",
    ]);
    for p in [1u32, 2, 3, 4, 5, 6, 8, 9, 12, 16, 20] {
        table.push([
            p.to_string(),
            format!("{:.3}", amdahl.time(&task, p, speed)),
            format!("{:.3}", model2.time(&task, p, speed)),
            format!("{:.3}", downey.time(&task, p, speed)),
            format!("{:.3}", mono2.time(&task, p, speed)),
            format!("{:.3}", cliff.time(&task, p, speed)),
        ]);
    }
    println!("Execution time [s] of a 50 GFLOP task (alpha = 0.05) at 4.3 GFLOPS/proc\n");
    println!("{}", table.render());
    println!("Model 2 rises at odd p (×1.3) and non-square even p (×1.1);");
    println!("the monotonized wrapper flattens those bumps away.\n");

    // EMTS against the custom model: a chain of two tasks on 20 processors.
    let mut b = PtgBuilder::new();
    let a = b.add_task("a", 50e9, 0.05);
    let c = b.add_task("c", 50e9, 0.05);
    b.add_edge(a, c).expect("fresh edge");
    let g = b.build().expect("acyclic");
    let matrix = TimeMatrix::compute(&g, &CacheCliff, speed, 20);
    let result = Emts::new(EmtsConfig::emts5()).run(&g, &matrix, 1);
    println!(
        "EMTS under cache-cliff: allocation {:?}, makespan {:.2} s",
        result.best.as_slice(),
        result.best_makespan
    );
    println!("note how the EA keeps every task at ≤ 8 processors — it learned the cliff.");
}
