//! Driving the simulator from files, like the paper's tooling.
//!
//! The paper's simulator "reads a platform file, containing the processors'
//! speed, […] and reads the description of the PTG". This example writes a
//! platform file and a PTG file, reads them back, runs an algorithm chosen
//! on the command line, and prints the JSON run report.
//!
//! Run with: `cargo run --example files_roundtrip -- [algorithm]`
//! (default algorithm: emts5)

use exec_model::PaperModel;
use platform::file::{parse_platform, render_platform};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sim::formats::{parse_ptg, render_ptg};
use sim::runner::{run, Algorithm};
use workloads::{strassen::strassen_ptg, CostConfig};

fn main() {
    let algorithm = std::env::args()
        .nth(1)
        .map(|s| Algorithm::parse(&s).unwrap_or_else(|| panic!("unknown algorithm {s:?}")))
        .unwrap_or(Algorithm::Emts5);

    // Write the inputs the way an external tool would produce them.
    let dir = std::env::temp_dir();
    let platform_path = dir.join("emts_demo_platform.txt");
    let ptg_path = dir.join("emts_demo_ptg.txt");
    std::fs::write(&platform_path, render_platform(&platform::chti())).expect("write platform");
    let g = strassen_ptg(&CostConfig::default(), &mut ChaCha8Rng::seed_from_u64(4));
    std::fs::write(&ptg_path, render_ptg(&g)).expect("write PTG");
    println!(
        "wrote {} and {}",
        platform_path.display(),
        ptg_path.display()
    );

    // Read them back and run the full pipeline.
    let cluster = parse_platform(&std::fs::read_to_string(&platform_path).expect("read platform"))
        .expect("valid platform file");
    let g =
        parse_ptg(&std::fs::read_to_string(&ptg_path).expect("read PTG")).expect("valid PTG file");
    let model = PaperModel::Model2.instantiate();
    let (report, _) = run(algorithm, &g, &cluster, model.as_ref(), 42);

    println!(
        "\n{} scheduled {} tasks on {}: makespan {:.2} s (validated by replay)",
        report.algorithm, report.tasks, cluster, report.makespan
    );
    println!("\nfull run report as JSON:");
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("reports serialize")
    );
}
