//! A small experiment campaign over random irregular PTGs.
//!
//! Mirrors the paper's headline case (irregular 100-task PTGs on the large
//! Grelon cluster, Model 2): generates a batch of random graphs, runs MCPA,
//! HCPA and EMTS5 on each, and reports the mean relative makespan with 95 %
//! confidence intervals — a miniature of Figure 5 you can run in seconds.
//!
//! Run with: `cargo run --release --example irregular_campaign`

use emts::{Emts, EmtsConfig};
use exec_model::{SyntheticModel, TimeMatrix};
use heuristics::{allocate_and_map, Hcpa, Mcpa};
use platform::grelon;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use stats::summary::ratio_summary;
use stats::Summary;
use workloads::{daggen::random_ptg, CostConfig, DaggenParams};

fn main() {
    let cluster = grelon();
    let model = SyntheticModel::default();
    let emts = Emts::new(EmtsConfig::emts5());
    let mut rng = ChaCha8Rng::seed_from_u64(2011);
    let costs = CostConfig::default();
    let params = DaggenParams {
        n: 100,
        width: 0.5,
        regularity: 0.2,
        density: 0.2,
        jump: 2,
    };
    let instances = 10;

    let mut mcpa = Vec::new();
    let mut hcpa = Vec::new();
    let mut best = Vec::new();
    for i in 0..instances {
        let g = random_ptg(&params, &costs, &mut rng);
        let matrix = TimeMatrix::compute(&g, &model, cluster.speed_flops(), cluster.processors);
        mcpa.push(allocate_and_map(&Mcpa, &g, &matrix).1);
        hcpa.push(allocate_and_map(&Hcpa, &g, &matrix).1);
        best.push(emts.run(&g, &matrix, i).best_makespan);
        println!(
            "instance {i:2}: MCPA {:8.2} s  HCPA {:8.2} s  EMTS5 {:8.2} s",
            mcpa[i as usize], hcpa[i as usize], best[i as usize]
        );
    }

    println!("\n{instances} irregular n=100 PTGs on {cluster}, Model 2:");
    println!("  makespans: EMTS5 {}", Summary::of(&best).format(2));
    println!(
        "  rel. makespan MCPA/EMTS5: {}   (paper Fig. 5: well above 1.0 on Grelon)",
        ratio_summary(&mcpa, &best).format(3)
    );
    println!(
        "  rel. makespan HCPA/EMTS5: {}",
        ratio_summary(&hcpa, &best).format(3)
    );
}
