//! Quickstart: schedule a five-task PTG with a heuristic and with EMTS.
//!
//! Builds the five-node PTG of the paper's Figure 2, shows the individual
//! encoding (per-task processor allocations), and compares the MCPA
//! heuristic against EMTS5 on a small cluster under the non-monotonic
//! Model 2.
//!
//! Run with: `cargo run --example quickstart`

use emts::{Emts, EmtsConfig};
use exec_model::{SyntheticModel, TimeMatrix};
use heuristics::{allocate_and_map, Mcpa};
use platform::Cluster;
use ptg::PtgBuilder;
use sched::gantt::ascii_gantt;
use sched::{ListScheduler, Mapper};

fn main() {
    // A PTG like the paper's Fig. 2: v1 feeds v2 and v3; v2 feeds v4; v3 and
    // v4 feed v5. Costs in FLOP, alpha = non-parallelizable fraction.
    let mut builder = PtgBuilder::new();
    let v1 = builder.add_task("v1", 40e9, 0.05);
    let v2 = builder.add_task("v2", 60e9, 0.10);
    let v3 = builder.add_task("v3", 25e9, 0.05);
    let v4 = builder.add_task("v4", 30e9, 0.15);
    let v5 = builder.add_task("v5", 20e9, 0.05);
    for (a, b) in [(v1, v2), (v1, v3), (v2, v4), (v3, v5), (v4, v5)] {
        builder.add_edge(a, b).expect("fresh edge");
    }
    let g = builder.build().expect("acyclic by construction");

    // An 8-processor homogeneous cluster, 4.3 GFLOPS per processor, with the
    // paper's non-monotonic Model 2 (odd processor counts are 30% slower).
    let cluster = Cluster::new("demo", 8, 4.3);
    let model = SyntheticModel::default();
    let matrix = TimeMatrix::compute(&g, &model, cluster.speed_flops(), cluster.processors);

    // Step 1: a classic two-step heuristic.
    let (mcpa_alloc, mcpa_makespan) = allocate_and_map(&Mcpa, &g, &matrix);
    println!("MCPA individual (Fig. 2 encoding — s(v_i) at position i):");
    println!(
        "  {:?}  → makespan {:.2} s",
        mcpa_alloc.as_slice(),
        mcpa_makespan
    );

    // Step 2: EMTS evolves the allocations, seeded by MCPA/HCPA/Δ-critical.
    let result = Emts::new(EmtsConfig::emts5()).run(&g, &matrix, 42);
    println!("\nEMTS5 individual:");
    println!(
        "  {:?}  → makespan {:.2} s ({}× better than its best seed)",
        result.best.as_slice(),
        result.best_makespan,
        format_args!("{:.3}", result.improvement()),
    );
    println!(
        "  {} fitness evaluations in {:.1} ms",
        result.evaluations,
        result.wall_time.as_secs_f64() * 1e3
    );

    println!("\nEMTS5 schedule on {cluster}:");
    let schedule = ListScheduler.map(&g, &matrix, &result.best);
    println!("{}", ascii_gantt(&schedule, 64));
}
