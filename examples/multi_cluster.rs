//! Scheduling across a multi-cluster grid (extension).
//!
//! The paper's HCPA baseline was born for heterogeneous multi-cluster
//! platforms; this example runs the full equivalent-processor HCPA and the
//! grid-EMTS extension on the two paper clusters *combined* (Chti + Grelon
//! = 140 processors at different speeds) and compares against using either
//! cluster alone.
//!
//! Run with: `cargo run --release --example multi_cluster`

use emts::{Emts, EmtsConfig, GridEmts};
use exec_model::{SyntheticModel, TimeMatrix};
use heuristics::{allocate_and_map, Hcpa, HcpaGrid};
use platform::grid::grid5000_pair;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use stats::TextTable;
use workloads::{daggen::random_ptg, CostConfig, DaggenParams};

fn main() {
    let params = DaggenParams {
        n: 60,
        width: 0.5,
        regularity: 0.5,
        density: 0.3,
        jump: 1,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let g = random_ptg(&params, &CostConfig::default(), &mut rng);
    let grid = grid5000_pair();
    let model = SyntheticModel::default();

    let mut table = TextTable::new(["scheduler", "platform", "makespan [s]"]);

    // Single-cluster references.
    for cluster in &grid.clusters {
        let matrix = TimeMatrix::compute(&g, &model, cluster.speed_flops(), cluster.processors);
        let (_, hcpa_ms) = allocate_and_map(&Hcpa, &g, &matrix);
        table.push([
            "HCPA".to_string(),
            cluster.name.clone(),
            format!("{hcpa_ms:.2}"),
        ]);
        let emts_ms = Emts::new(EmtsConfig::emts5())
            .run(&g, &matrix, 1)
            .best_makespan;
        table.push([
            "EMTS5".to_string(),
            cluster.name.clone(),
            format!("{emts_ms:.2}"),
        ]);
    }

    // The whole grid.
    let (_, grid_schedule) = HcpaGrid.schedule(&g, &model, &grid);
    table.push([
        "HCPA-grid".to_string(),
        grid.name.clone(),
        format!("{:.2}", grid_schedule.makespan()),
    ]);
    let grid_result = GridEmts::default().run(&g, &model, &grid, 1);
    table.push([
        "grid-EMTS5".to_string(),
        grid.name.clone(),
        format!("{:.2}", grid_result.best_makespan),
    ]);

    println!(
        "60-task irregular PTG on {} ({} processors total), Model 2\n",
        grid.name,
        grid.total_processors()
    );
    println!("{}", table.render());
    let both: std::collections::HashSet<u32> =
        grid_result.best.per_task.iter().map(|&(k, _)| k).collect();
    println!(
        "grid-EMTS used {} of {} clusters; it improved {:.1} % over its re-mapped \
         HCPA seed ({:.2} s). HCPA-grid's native one-pass mapping co-decides cluster \
         choice during placement, so take the better of the two schedules: {:.2} s.",
        both.len(),
        grid.cluster_count(),
        100.0 * (grid_result.seed_makespan / grid_result.best_makespan - 1.0),
        grid_result.seed_makespan,
        grid_result
            .best_makespan
            .min(grid_result.hcpa_native_makespan)
    );
}
