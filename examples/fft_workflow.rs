//! Scheduling an FFT scientific workflow on a Grid'5000-class cluster.
//!
//! Generates the paper's FFT PTGs (5 to 95 tasks), schedules each with
//! every algorithm the simulator knows, and prints the resulting makespans
//! plus cluster utilization — the workload class the paper's introduction
//! motivates ("scientific workflows are an important type of parallel task
//! graphs").
//!
//! Run with: `cargo run --release --example fft_workflow`

use exec_model::SyntheticModel;
use platform::chti;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sim::runner::{run, Algorithm};
use stats::TextTable;
use workloads::{fft::fft_ptg, CostConfig};

fn main() {
    let cluster = chti();
    let model = SyntheticModel::default();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let costs = CostConfig::default();

    println!("FFT workflows on {cluster}, Model 2 (non-monotonic)\n");
    let mut table = TextTable::new([
        "tasks",
        "algorithm",
        "makespan [s]",
        "utilization",
        "alloc time [ms]",
    ]);
    for k in [2u32, 4, 8, 16] {
        let g = fft_ptg(k, &costs, &mut rng);
        for alg in [
            Algorithm::Cpa,
            Algorithm::Hcpa,
            Algorithm::Mcpa,
            Algorithm::DeltaCritical,
            Algorithm::Emts5,
            Algorithm::Emts10,
        ] {
            let (report, _) = run(alg, &g, &cluster, &model, 99);
            table.push([
                g.task_count().to_string(),
                report.algorithm.clone(),
                format!("{:.2}", report.makespan),
                format!("{:.1} %", 100.0 * report.sim.utilization()),
                format!("{:.2}", report.allocation_seconds * 1e3),
            ]);
        }
    }
    println!("{}", table.render());
    println!("EMTS rows should never exceed the MCPA/HCPA rows of the same PTG —");
    println!("plus-selection starts from those heuristics and only improves.");
}
