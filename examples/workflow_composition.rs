//! Composing workflows and racing EA configurations.
//!
//! Real pipelines chain kernels: this example builds "Strassen, then an
//! FFT over the result, beside an independent stencil sweep" by composing
//! PTGs serially and in parallel, then schedules the composite with a
//! *portfolio* of EMTS configurations racing on separate threads — the
//! paper's future-work idea of comparing evolutionary methods, automated.
//!
//! Run with: `cargo run --release --example workflow_composition`

use emts::portfolio::{default_portfolio, run_portfolio};
use exec_model::{SyntheticModel, TimeMatrix};
use platform::Cluster;
use ptg::transform::{compose_parallel, compose_serial, transitive_reduction};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use workloads::families::diamond_mesh;
use workloads::{fft::fft_ptg, strassen::strassen_ptg, CostConfig};

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let costs = CostConfig::default();

    let strassen = strassen_ptg(&costs, &mut rng);
    let fft = fft_ptg(8, &costs, &mut rng);
    let stencil = diamond_mesh(4, 4, &costs, &mut rng);

    // (Strassen ; FFT) ∥ stencil
    let pipeline = compose_serial(&strassen, &fft);
    let workflow = compose_parallel(&pipeline, &stencil);
    let workflow = transitive_reduction(&workflow);
    let stats = ptg::analysis::shape_stats(&workflow);
    println!(
        "composite workflow: {} tasks, {} edges, {} levels, width {}, {:.1} TFLOP total",
        stats.tasks,
        stats.edges,
        stats.levels,
        stats.max_width,
        stats.total_flop / 1e12
    );

    let cluster = Cluster::new("dept-cluster", 48, 3.1);
    let matrix = TimeMatrix::compute(
        &workflow,
        &SyntheticModel::default(),
        cluster.speed_flops(),
        cluster.processors,
    );

    let portfolio = default_portfolio();
    let outcome = run_portfolio(&portfolio, &workflow, &matrix, 17);
    println!("\nportfolio results on {cluster}:");
    for member in &outcome.members {
        println!(
            "  {:<16} makespan {:>8.2} s  ({} evaluations, {:.0} ms)",
            member.label,
            member.result.best_makespan,
            member.result.evaluations,
            member.result.wall_time.as_secs_f64() * 1e3
        );
    }
    let best = outcome.best();
    println!(
        "\nwinner: {} at {:.2} s ({}× improvement over its seeds)",
        best.label,
        best.result.best_makespan,
        format_args!("{:.3}", best.result.improvement())
    );
}
