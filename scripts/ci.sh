#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
# Everything runs offline against the vendored dependencies (the
# workspace pins `--offline` builds; the container has no registry
# access). Run before every push:
#
#   scripts/ci.sh
#
# Fails fast: the first failing step stops the run.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo test (workspace)"
cargo test -q --offline --workspace

echo "== perf guard (release): delta path must not be slower than pooled full eval"
cargo test --release -q --offline -p emts --test perf_guard -- --ignored

echo "CI OK"
