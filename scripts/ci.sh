#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
# Everything runs offline against the vendored dependencies (the
# workspace pins `--offline` builds; the container has no registry
# access). Run before every push:
#
#   scripts/ci.sh
#
# Fails fast: the first failing step stops the run.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo test (workspace)"
cargo test -q --offline --workspace

echo "CI OK"
