#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
# Everything runs offline against the vendored dependencies (the
# workspace pins `--offline` builds; the container has no registry
# access). Run before every push:
#
#   scripts/ci.sh
#
# Fails fast: the first failing step stops the run.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo test (workspace)"
cargo test -q --offline --workspace

echo "== emts-lint: source, call-graph dataflow and committed artifacts must be clean"
cargo build -q --offline --release -p lint
LINT=target/release/emts-lint
LINT_BASELINE=lint-baseline.json
# Source tree plus the known-good data files and committed telemetry
# artifacts; data/bad is the negative corpus and is deliberately excluded
# (globs do not descend into bad/). Exit codes are gated exactly:
# 1 means findings, 2 means the analyzer itself broke — conflating them
# would let an internal error masquerade as a clean run (or vice versa).
LINT_PATHS=(crates data/*.ptg data/*.platform BENCH_*.json)
set +e
$LINT --format json --deny warning --baseline "$LINT_BASELINE" "${LINT_PATHS[@]}" > /dev/null
LINT_RC=$?
set -e
case $LINT_RC in
    0) ;;
    1) echo "emts-lint found new findings (fix them, or record accepted ones: $LINT --write-baseline $LINT_BASELINE ${LINT_PATHS[*]})" >&2
       exit 1 ;;
    2) echo "emts-lint internal error (exit 2) on the clean tree" >&2; exit 1 ;;
    *) echo "emts-lint exited with unexpected status $LINT_RC" >&2; exit 1 ;;
esac
# Ratchet: the committed baseline may only shrink. When the tree has fewer
# findings than the baseline records, the baseline is stale — shrink it
# with one command and commit the result.
BASELINE_COUNT=$(grep -c '"rule"' "$LINT_BASELINE" || true)
CURRENT_COUNT=$($LINT --format json --deny none "${LINT_PATHS[@]}" | grep -c '"rule"' || true)
if [ "$CURRENT_COUNT" -lt "$BASELINE_COUNT" ]; then
    echo "lint baseline is stale ($BASELINE_COUNT entries, tree has $CURRENT_COUNT findings) — shrink it:" >&2
    echo "  $LINT --write-baseline $LINT_BASELINE ${LINT_PATHS[*]}" >&2
    exit 1
fi
# Inverted check: the corpus must keep tripping the gate with exit 1
# exactly — exit 0 means the analyzer has gone blind, exit 2 means it
# crashed on the corpus instead of analyzing it.
set +e
$LINT --deny warning data/bad > /dev/null 2>&1
CORPUS_RC=$?
set -e
case $CORPUS_RC in
    1) ;;
    0) echo "emts-lint passed data/bad — the negative corpus no longer fires" >&2; exit 1 ;;
    2) echo "emts-lint internal error (exit 2) on data/bad" >&2; exit 1 ;;
    *) echo "emts-lint exited with unexpected status $CORPUS_RC on data/bad" >&2; exit 1 ;;
esac

echo "== perf guards (release): delta vs pooled, flight-recorder budget, SoA core vs oracle, two-tier vs all-exact"
cargo test --release -q --offline -p emts --test perf_guard -- --ignored

echo "== perf-regression observatory: regress gate must pass clean and catch inflation"
cargo build -q --offline --release -p obs --bin emts-report
EMTS_REPORT=target/release/emts-report
REGRESS_DIR=$(mktemp -d)
# Every committed baseline compared against itself must pass (exit 0)...
for BASE in BENCH_fitness.json BENCH_throughput.json BENCH_obs.json BENCH_online.json; do
    [ -f "$BASE" ] || continue
    $EMTS_REPORT regress "$BASE" "$BASE" > /dev/null \
        || { echo "regress gate: $BASE self-comparison reported a regression" >&2; exit 1; }
done
# ...and a synthetically inflated copy must fail with a non-zero exit,
# otherwise the observatory has gone blind. 10x every numeric leaf; the
# default 40% tolerance must flag that on the higher-is-worse metrics.
awk '{ while (match($0, /: [0-9]+(\.[0-9]+)?/)) {
           v = substr($0, RSTART + 2, RLENGTH - 2)
           printf "%s: %s", substr($0, 1, RSTART - 1), v * 10
           $0 = substr($0, RSTART + RLENGTH) }
       print }' BENCH_fitness.json > "$REGRESS_DIR/inflated.json"
if $EMTS_REPORT regress BENCH_fitness.json "$REGRESS_DIR/inflated.json" > /dev/null; then
    echo "regress gate passed a 10x-inflated benchmark — the gate is not gating" >&2
    exit 1
fi
rm -rf "$REGRESS_DIR"

echo "== streaming smoke: sharded + interrupted + resumed 1k-PTG stream is bit-identical"
cargo build -q --offline --release -p bench --bin emts-stream
STREAM=target/release/emts-stream
STREAM_DIR=$(mktemp -d)
# Uninterrupted single-shard run vs a 4-way sharded run stopped after 300
# items mid-checkpoint-interval and resumed from its checkpoint: the
# order-independent fingerprints must agree exactly.
$STREAM --count 1000 --seed 2011 --no-probe --quiet --out "$STREAM_DIR/full.json"
$STREAM --count 1000 --seed 2011 --shards 4 --checkpoint "$STREAM_DIR/cp.json" \
    --checkpoint-every 128 --stop-after 300 --no-probe --quiet \
    --out "$STREAM_DIR/partial.json"
$STREAM --count 1000 --seed 2011 --shards 4 --checkpoint "$STREAM_DIR/cp.json" \
    --no-probe --quiet --out "$STREAM_DIR/resumed.json"
grep -q '"completed": false' "$STREAM_DIR/partial.json" \
    || { echo "stream smoke: --stop-after did not interrupt the run" >&2; exit 1; }
grep -q '"completed": true' "$STREAM_DIR/resumed.json" \
    || { echo "stream smoke: resumed run did not complete" >&2; exit 1; }
FP_FULL=$(grep '"fingerprint"' "$STREAM_DIR/full.json")
FP_RESUMED=$(grep '"fingerprint"' "$STREAM_DIR/resumed.json")
[ -n "$FP_FULL" ] && [ "$FP_FULL" = "$FP_RESUMED" ] \
    || { echo "stream smoke: resumed sharded run diverged from the uninterrupted run" >&2
         echo "  full:    $FP_FULL" >&2
         echo "  resumed: $FP_RESUMED" >&2
         exit 1; }
rm -rf "$STREAM_DIR"

echo "== fault smoke: seeded injection is reproducible, fault-free replay is bit-identical"
SIM="cargo run -q --offline -p sim --bin emts-sim --"
FAULT_A=$(mktemp) FAULT_B=$(mktemp)
trap 'rm -f "$FAULT_A" "$FAULT_B"' EXIT
SPEC="seed=2011,perturb=0.2,straggler_prob=0.05,straggler_factor=4,crash=0.05,procfail=0.02"
$SIM --platform data/chti.platform --ptg data/irregular_n50.ptg --algorithm mcpa \
    --faults "$SPEC" --trials 5 --json | grep -v '_seconds' > "$FAULT_A"
$SIM --platform data/chti.platform --ptg data/irregular_n50.ptg --algorithm mcpa \
    --faults "$SPEC" --trials 5 --json | grep -v '_seconds' > "$FAULT_B"
# Byte-identical apart from the wall-clock timing fields.
cmp "$FAULT_A" "$FAULT_B" \
    || { echo "seeded fault runs are not reproducible" >&2; exit 1; }
# A spec that arms no fault source must degrade the makespan by exactly 1x
# in every trial — the dynamic replay is bit-identical to the plan.
$SIM --platform data/chti.platform --ptg data/fft16.ptg --algorithm mcpa \
    --faults "seed=7" --trials 3 --json > "$FAULT_A"
grep -q '"worst_degradation": 1.0,' "$FAULT_A" \
    || { echo "fault-free replay is not bit-identical to the baseline" >&2; exit 1; }

echo "== online smoke: rolling-horizon loop is seeded-reproducible and degrades, never dies"
# Same seed twice under churn: byte-identical apart from wall-clock fields.
$SIM --platform data/chti.platform --online --jobs 4 --seed 2011 \
    --arrival-mean 30 --epoch 60 --churn "fail_every=150,repair_after=90,spares=1,join_every=400" \
    --json | grep -v '_seconds' > "$FAULT_A"
$SIM --platform data/chti.platform --online --jobs 4 --seed 2011 \
    --arrival-mean 30 --epoch 60 --churn "fail_every=150,repair_after=90,spares=1,join_every=400" \
    --json | grep -v '_seconds' > "$FAULT_B"
cmp "$FAULT_A" "$FAULT_B" \
    || { echo "seeded online runs are not reproducible" >&2; exit 1; }
# Killing the whole platform with nothing pending must be a clean typed
# failure (one stderr line, exit 1), never a panic.
if $SIM --platform data/chti.platform --online --jobs 2 --seed 7 \
    --churn "fail_all_at=40" --reactive-only 2> "$FAULT_A"; then
    echo "online kill-all run exited zero — NoSurvivors was swallowed" >&2; exit 1
fi
grep -q "no surviving processors" "$FAULT_A" \
    || { echo "online kill-all diagnostic missing from stderr" >&2; cat "$FAULT_A" >&2; exit 1; }
if grep -q "panicked" "$FAULT_A"; then
    echo "online kill-all run panicked" >&2; cat "$FAULT_A" >&2; exit 1
fi
# A sabotaged epoch must fall back to a cheaper ring (watchdog degrades)
# while still meeting its decision budget — zero overruns.
$SIM --platform data/chti.platform --online --jobs 2 --seed 11 --arrival-mean 0 \
    --epoch-budget-ms 5000 --sabotage-ring0 0 --json > "$FAULT_A"
grep -q '"watchdog_degraded": [1-9]' "$FAULT_A" \
    || { echo "sabotaged epoch did not register a watchdog degradation" >&2; exit 1; }
grep -q '"deadline_overruns": 0' "$FAULT_A" \
    || { echo "online decision epoch overran its budget" >&2; exit 1; }

echo "CI OK"
