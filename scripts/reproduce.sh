#!/usr/bin/env bash
# Regenerates every figure, table, ablation and extension experiment of the
# reproduction at the paper's full instance counts. Results (JSON/SVG) land
# in results/; terminal reports stream to stdout.
#
# Usage: scripts/reproduce.sh [--quick]
#   --quick  use the 10% corpus scale (minutes instead of ~15 min)

set -euo pipefail
cd "$(dirname "$0")/.."

SCALE_ARGS=(--full)
ABL_SCALE=(--scale 1.0)
if [[ "${1:-}" == "--quick" ]]; then
  SCALE_ARGS=(--scale 0.1)
  ABL_SCALE=(--scale 0.2)
fi

cargo build --release -p bench --bins

run() { echo "== $1 =="; "./target/release/$1" "${@:2}"; echo; }

run fig1_pdgemm
run fig2_encoding
run fig3_mutation_pdf
run fig4_model1 "${SCALE_ARGS[@]}"
run fig5_model2 "${SCALE_ARGS[@]}"
run fig6_gantt
run table_runtime "${SCALE_ARGS[@]}"

for b in ablation_mutation ablation_seeding ablation_selection ablation_params \
         ablation_mapper ablation_rejection ablation_adaptive \
         ext_platform_sweep ext_convergence ext_models ext_bicpa ext_multicluster ext_island; do
  run "$b" "${ABL_SCALE[@]}"
done

echo "All artifacts written to results/."
