#!/usr/bin/env bash
# Fitness-engine benchmark smoke run.
#
# Runs the `fitness` group of crates/bench/benches/emts_generation.rs —
# pre-engine baseline vs the zero-allocation grouped-core engine paths on
# the paper's hard case (irregular n=100 DAGGEN on Grelon, P=120, one
# generation-sized batch of λ=25) — and writes BENCH_fitness.json at the
# repo root with per-evaluation medians and the memo-cache statistics of a
# real EMTS10 run, plus the two-tier fitness pipeline's ns/eval, screen
# rate, and speedup over the pooled all-exact baseline (TWO_TIER_STATS
# line). Also writes BENCH_fitness_report.json, the telemetry
# RunReport (phase spans, counters, histograms) of that EMTS10 run —
# inspect it with `cargo run --bin emts-report -- show BENCH_fitness_report.json`.
# The bench additionally asserts the no-op recorder adds <1% overhead to
# the serial fitness path (NOOP_OVERHEAD line) and that the live flight
# recorder stays within its mapper-loop budget (TRACE_OVERHEAD line).
#
# Also runs the streaming harness (`emts-stream`, 100k DAGGEN PTGs
# generated and scheduled on the fly, single-core) and writes its result —
# honest end-to-end PTGs/sec plus an isolated fitness-core probe
# (ns/eval, ns per heap pop) — to BENCH_throughput.json.
#
# Observability cost lands in BENCH_obs.json (`emts-obsbench`): recorder
# overhead on the mapper loop, flight-recorder events/sec, and the exact
# drop rate at ring capacity. `emts-report regress` diffs every fresh
# BENCH_*.json against the committed baseline in scripts/ci.sh.
#
# Usage: scripts/bench_smoke.sh

set -euo pipefail
cd "$(dirname "$0")/.."

BATCH=25
OUT=BENCH_fitness.json
REPORT=BENCH_fitness_report.json
THROUGHPUT_OUT=BENCH_throughput.json
STREAM_COUNT=100000
LOG=$(mktemp)
trap 'rm -f "$LOG"' EXIT

echo "== streaming throughput: $STREAM_COUNT DAGGEN PTGs end-to-end, single core"
cargo build -q --offline --release -p bench --bin emts-stream
target/release/emts-stream --count "$STREAM_COUNT" --seed 2011 --quiet \
    --out "$THROUGHPUT_OUT"
echo "wrote $THROUGHPUT_OUT:"
cat "$THROUGHPUT_OUT"

echo "== observability cost: recorder overhead, event throughput, drop accounting"
OBS_OUT=BENCH_obs.json
cargo build -q --offline --release -p bench --bin emts-obsbench
target/release/emts-obsbench --rounds 40 --out "$OBS_OUT"
echo "wrote $OBS_OUT:"
cat "$OBS_OUT"

echo "== robustness smoke: fault-injected p95 degradation per workload"
FAULT_SPEC="seed=2011,perturb=0.2,straggler_prob=0.05,straggler_factor=4,crash=0.05,retries=3,backoff=0.5,procfail=0.02"
robust_p95() {
    cargo run -q --offline --release -p sim --bin emts-sim -- \
        --platform data/chti.platform --ptg "data/$1.ptg" --algorithm mcpa \
        --faults "$FAULT_SPEC" --trials 20 --json \
        | awk -F': ' '/"p95_degradation"/ { gsub(/,/, "", $2); print $2 }'
}
P95_FFT=$(robust_p95 fft16)
P95_IRR=$(robust_p95 irregular_n50)
echo "p95 degradation: fft16=${P95_FFT}x irregular_n50=${P95_IRR}x"

echo "== online smoke: rolling-horizon vs reactive-only under churn"
ONLINE_OUT=BENCH_online.json
ONLINE_CHURN="fail_every=200,repair_after=120,spares=1,join_every=500"
ONLINE_ARGS="--platform data/chti.platform --online --jobs 6 --seed 2011 \
    --arrival-mean 40 --epoch 60 --epoch-budget-ms 5000 --churn $ONLINE_CHURN --json"
ONLINE_ROLLING=$(mktemp) ONLINE_REACTIVE=$(mktemp)
cargo run -q --offline --release -p sim --bin emts-sim -- $ONLINE_ARGS \
    > "$ONLINE_ROLLING"
cargo run -q --offline --release -p sim --bin emts-sim -- $ONLINE_ARGS --reactive-only \
    > "$ONLINE_REACTIVE"
# Every decision epoch must have met its budget, in both modes.
for MODE_FILE in "$ONLINE_ROLLING" "$ONLINE_REACTIVE"; do
    grep -q '"deadline_overruns": 0' "$MODE_FILE" \
        || { echo "online benchmark: a decision epoch overran its budget" >&2; exit 1; }
done
online_block() {
    awk -F': ' '
        function val(s) { s = $2; gsub(/,/, "", s); return s }
        /"makespan"/          { mk = val() }
        /"queue_wait_mean"/   { qw = val() }
        /"stretch_mean"/      { sm = val() }
        /"stretch_p95"/       { sp = val() }
        /"utilization"/       { ut = val() }
        /"slo_attainment"/    { slo = val() }
        /"deadline_overruns"/ { ov = val() }
        /"watchdog_degraded"/ { wd = val() }
        /"ring0_epochs"/      { r0 = val() }
        /"ring1_epochs"/      { r1 = val() }
        /"ring2_epochs"/      { r2 = val() }
        /"reactive_replans"/  { rr = val() }
        /"tasks_killed"/      { tk = val() }
        END {
            printf "    \"makespan\": %s,\n", mk
            printf "    \"queue_wait_mean\": %s,\n", qw
            printf "    \"stretch_mean\": %s,\n", sm
            printf "    \"stretch_p95\": %s,\n", sp
            printf "    \"utilization\": %s,\n", ut
            printf "    \"slo_attainment\": %s,\n", slo
            printf "    \"deadline_overruns\": %s,\n", ov
            printf "    \"watchdog_degraded\": %s,\n", wd
            printf "    \"ring_epochs\": [%s, %s, %s],\n", r0, r1, r2
            printf "    \"reactive_replans\": %s,\n", rr
            printf "    \"tasks_killed\": %s\n", tk
        }' "$1"
}
{
    printf '{\n'
    printf '  "workload": "6 streamed DAGGEN jobs on chti (P=20, +1 spare), epoch 60 s, budget 5 s",\n'
    printf '  "seed": 2011,\n'
    printf '  "churn": "%s",\n' "$ONLINE_CHURN"
    printf '  "rolling": {\n';  online_block "$ONLINE_ROLLING";  printf '  },\n'
    printf '  "reactive": {\n'; online_block "$ONLINE_REACTIVE"; printf '  }\n'
    printf '}\n'
} > "$ONLINE_OUT"
rm -f "$ONLINE_ROLLING" "$ONLINE_REACTIVE"
echo "wrote $ONLINE_OUT:"
cat "$ONLINE_OUT"

echo "== lint smoke: full-tree emts-lint wall time"
cargo build -q --offline --release -p lint
LINT=target/release/emts-lint
LINT_T0=$(date +%s%N)
$LINT --deny none crates data > /dev/null
LINT_T1=$(date +%s%N)
LINT_WALL_MS=$(( (LINT_T1 - LINT_T0) / 1000000 ))
echo "emts-lint over crates/ + data/: ${LINT_WALL_MS} ms"

echo "== lint v2 smoke: workspace call-graph analysis wall time and rule hits"
# The full two-pass analysis (scan + call graph + dataflow + artifact
# cross-checks) over everything CI lints; must stay interactive-fast.
LINT_V2_BUDGET_MS=2000
LINT_T0=$(date +%s%N)
$LINT --format json --deny none crates data/*.ptg data/*.platform BENCH_*.json \
    > "$LOG.lintv2"
LINT_T1=$(date +%s%N)
LINT_V2_WALL_MS=$(( (LINT_T1 - LINT_T0) / 1000000 ))
LINT_V2_TREE_FINDINGS=$(grep -c '"rule"' "$LOG.lintv2" || true)
# Rule hits on the negative corpus: the number of distinct rules firing on
# data/bad. Falling means corpus entries have gone blind.
LINT_V2_CORPUS_HITS=$($LINT --format json --deny none data/bad \
    | grep -o '"rule": "[^"]*"' | sort -u | wc -l)
rm -f "$LOG.lintv2"
echo "lint v2 over the CI lint set: ${LINT_V2_WALL_MS} ms," \
     "${LINT_V2_TREE_FINDINGS} tree findings, ${LINT_V2_CORPUS_HITS} corpus rule hits"
if [ "$LINT_V2_WALL_MS" -ge "$LINT_V2_BUDGET_MS" ]; then
    echo "lint v2 took ${LINT_V2_WALL_MS} ms — over the ${LINT_V2_BUDGET_MS} ms single-core budget" >&2
    exit 1
fi

cargo bench --offline -p bench --bench mapper 2>&1 | tee "$LOG"
# Absolute path: cargo runs bench binaries with the package directory
# (crates/bench) as their working directory.
EMTS_RUN_REPORT="$PWD/$REPORT" \
    cargo bench --offline -p bench --bench emts_generation -- fitness 2>&1 | tee -a "$LOG"

awk -v batch="$BATCH" -v fault_spec="$FAULT_SPEC" \
    -v p95_fft="$P95_FFT" -v p95_irr="$P95_IRR" -v lint_wall_ms="$LINT_WALL_MS" \
    -v lint_v2_wall_ms="$LINT_V2_WALL_MS" \
    -v lint_v2_tree_findings="$LINT_V2_TREE_FINDINGS" \
    -v lint_v2_corpus_hits="$LINT_V2_CORPUS_HITS" '
    /^CRITERION_RESULT id=fitness\// {
        id = ""; median = ""
        for (i = 1; i <= NF; i++) {
            if ($i ~ /^id=/)        { id = substr($i, 4); sub(/^fitness\//, "", id) }
            if ($i ~ /^median_ns=/) { median = substr($i, 11) }
        }
        sub(/_grelon_n100_batch25$/, "", id)
        medians[id] = median
        order[n++] = id
    }
    /^CRITERION_RESULT id=mapper\// {
        id = ""; median = ""
        for (i = 1; i <= NF; i++) {
            if ($i ~ /^id=/)        { id = substr($i, 4); sub(/^mapper\//, "", id) }
            if ($i ~ /^median_ns=/) { median = substr($i, 11) }
        }
        mapper[id] = median
        mapper_order[mn++] = id
    }
    /^CACHE_STATS / {
        w = ""
        for (i = 1; i <= NF; i++) {
            split($i, kv, "=")
            if (kv[1] == "workload") w = kv[2]
        }
        if (w != "") {
            cache_order[cn++] = w
            for (i = 1; i <= NF; i++) {
                split($i, kv, "=")
                if (kv[1] != "workload" && kv[1] != "CACHE_STATS")
                    cache[w, kv[1]] = kv[2]
            }
        }
    }
    /^DELTA_STATS / {
        for (i = 1; i <= NF; i++) {
            split($i, kv, "=")
            if (kv[1] == "reused_events") delta_reused = kv[2]
            if (kv[1] == "total_events")  delta_total = kv[2]
            if (kv[1] == "reuse_rate")    delta_rate = kv[2]
        }
    }
    /^TWO_TIER_STATS / {
        for (i = 1; i <= NF; i++) {
            split($i, kv, "=")
            if (kv[1] == "all_exact_ns_per_eval")          tt_allexact = kv[2]
            if (kv[1] == "two_tier_ns_per_eval")           tt_ns = kv[2]
            if (kv[1] == "surrogate_screen_rate")          tt_rate = kv[2]
            if (kv[1] == "speedup_two_tier_vs_all_exact")  tt_speedup = kv[2]
        }
    }
    END {
        if (n == 0) { print "no CRITERION_RESULT lines found" > "/dev/stderr"; exit 1 }
        printf "{\n"
        printf "  \"workload\": \"daggen irregular n=100 on grelon (P=120)\",\n"
        printf "  \"batch_size\": %d,\n", batch
        printf "  \"paths_ns_per_eval\": {\n"
        for (i = 0; i < n; i++) {
            id = order[i]
            printf "    \"%s\": %.1f%s\n", id, medians[id] / batch, (i < n - 1) ? "," : ""
        }
        printf "  },\n"
        if (mn > 0) {
            printf "  \"mapper_ns_per_call\": {\n"
            for (i = 0; i < mn; i++) {
                id = mapper_order[i]
                printf "    \"%s\": %.1f%s\n", id, mapper[id], (i < mn - 1) ? "," : ""
            }
            printf "  },\n"
        }
        if ("prepr_baseline" in medians && "serial_scratch" in medians)
            printf "  \"speedup_vs_prepr_baseline\": %.1f,\n", \
                medians["prepr_baseline"] / medians["serial_scratch"]
        if ("pooled" in medians && "delta_single_gene" in medians) {
            printf "  \"delta_ns_per_eval\": %.1f,\n", medians["delta_single_gene"] / batch
            printf "  \"speedup_delta_vs_pooled\": %.1f,\n", \
                medians["pooled"] / medians["delta_single_gene"]
        }
        if (delta_total != "")
            printf "  \"delta_prefix_reuse\": { \"reused_events\": %d, \"total_events\": %d, \"reuse_rate\": %s },\n", \
                delta_reused, delta_total, delta_rate
        if (tt_ns != "") {
            printf "  \"two_tier\": {\n"
            printf "    \"all_exact_ns_per_eval\": %s,\n", tt_allexact
            printf "    \"two_tier_ns_per_eval\": %s,\n", tt_ns
            printf "    \"surrogate_screen_rate\": %s,\n", tt_rate
            printf "    \"speedup_two_tier_vs_all_exact\": %s\n", tt_speedup
            printf "  },\n"
        }
        if (p95_fft != "" && p95_irr != "") {
            printf "  \"robust_p95_degradation\": {\n"
            printf "    \"spec\": \"%s\",\n", fault_spec
            printf "    \"trials\": 20,\n"
            printf "    \"fft16\": %s,\n", p95_fft
            printf "    \"irregular_n50\": %s\n", p95_irr
            printf "  },\n"
        }
        if (lint_wall_ms != "")
            printf "  \"lint_wall_ms\": %d,\n", lint_wall_ms
        if (lint_v2_wall_ms != "") {
            printf "  \"lint_v2\": {\n"
            printf "    \"wall_ms\": %d,\n", lint_v2_wall_ms
            printf "    \"tree_findings\": %d,\n", lint_v2_tree_findings
            printf "    \"corpus_rule_hits\": %d\n", lint_v2_corpus_hits
            printf "  },\n"
        }
        printf "  \"emts10_run_cache\": {\n"
        for (i = 0; i < cn; i++) {
            w = cache_order[i]
            printf "    \"%s\": { \"hits\": %d, \"misses\": %d, \"hit_rate\": %s, \"noop_skips\": %d, \"lb_pruned\": %d, \"prefix_reuse_events\": %d, \"survival_pruned\": %d }%s\n", \
                w, cache[w, "hits"], cache[w, "misses"], cache[w, "rate"], \
                cache[w, "noop_skips"], cache[w, "lb_pruned"], \
                cache[w, "prefix_reuse_events"], cache[w, "pruned"], (i < cn - 1) ? "," : ""
        }
        printf "  }\n"
        printf "}\n"
    }
' "$LOG" > "$OUT"

echo "wrote $OUT:"
cat "$OUT"
if [ -f "$REPORT" ]; then
    echo "wrote $REPORT (inspect with: cargo run --bin emts-report -- show $REPORT)"
fi
