#!/usr/bin/env bash
# Fitness-engine benchmark smoke run.
#
# Runs the `fitness` group of crates/bench/benches/emts_generation.rs —
# pre-engine baseline vs the zero-allocation grouped-core engine paths on
# the paper's hard case (irregular n=100 DAGGEN on Grelon, P=120, one
# generation-sized batch of λ=25) — and writes BENCH_fitness.json at the
# repo root with per-evaluation medians and the memo-cache statistics of a
# real EMTS10 run. Also writes BENCH_fitness_report.json, the telemetry
# RunReport (phase spans, counters, histograms) of that EMTS10 run —
# inspect it with `cargo run --bin emts-report -- show BENCH_fitness_report.json`.
# The bench additionally asserts the no-op recorder adds <1% overhead to
# the serial fitness path (NOOP_OVERHEAD line).
#
# Usage: scripts/bench_smoke.sh

set -euo pipefail
cd "$(dirname "$0")/.."

BATCH=25
OUT=BENCH_fitness.json
REPORT=BENCH_fitness_report.json
LOG=$(mktemp)
trap 'rm -f "$LOG"' EXIT

cargo bench --offline -p bench --bench mapper 2>&1 | tee "$LOG"
EMTS_RUN_REPORT="$REPORT" \
    cargo bench --offline -p bench --bench emts_generation -- fitness 2>&1 | tee -a "$LOG"

awk -v batch="$BATCH" '
    /^CRITERION_RESULT id=fitness\// {
        id = ""; median = ""
        for (i = 1; i <= NF; i++) {
            if ($i ~ /^id=/)        { id = substr($i, 4); sub(/^fitness\//, "", id) }
            if ($i ~ /^median_ns=/) { median = substr($i, 11) }
        }
        sub(/_grelon_n100_batch25$/, "", id)
        medians[id] = median
        order[n++] = id
    }
    /^CRITERION_RESULT id=mapper\// {
        id = ""; median = ""
        for (i = 1; i <= NF; i++) {
            if ($i ~ /^id=/)        { id = substr($i, 4); sub(/^mapper\//, "", id) }
            if ($i ~ /^median_ns=/) { median = substr($i, 11) }
        }
        mapper[id] = median
        mapper_order[mn++] = id
    }
    /^CACHE_STATS / {
        for (i = 1; i <= NF; i++) {
            if ($i ~ /^hits=/)   hits = substr($i, 6)
            if ($i ~ /^misses=/) misses = substr($i, 8)
            if ($i ~ /^rate=/)   rate = substr($i, 6)
        }
    }
    END {
        if (n == 0) { print "no CRITERION_RESULT lines found" > "/dev/stderr"; exit 1 }
        printf "{\n"
        printf "  \"workload\": \"daggen irregular n=100 on grelon (P=120)\",\n"
        printf "  \"batch_size\": %d,\n", batch
        printf "  \"paths_ns_per_eval\": {\n"
        for (i = 0; i < n; i++) {
            id = order[i]
            printf "    \"%s\": %.1f%s\n", id, medians[id] / batch, (i < n - 1) ? "," : ""
        }
        printf "  },\n"
        if (mn > 0) {
            printf "  \"mapper_ns_per_call\": {\n"
            for (i = 0; i < mn; i++) {
                id = mapper_order[i]
                printf "    \"%s\": %.1f%s\n", id, mapper[id], (i < mn - 1) ? "," : ""
            }
            printf "  },\n"
        }
        if ("prepr_baseline" in medians && "serial_scratch" in medians)
            printf "  \"speedup_vs_prepr_baseline\": %.1f,\n", \
                medians["prepr_baseline"] / medians["serial_scratch"]
        printf "  \"emts10_run_cache\": { \"hits\": %d, \"misses\": %d, \"hit_rate\": %s }\n", \
            hits, misses, rate
        printf "}\n"
    }
' "$LOG" > "$OUT"

echo "wrote $OUT:"
cat "$OUT"
if [ -f "$REPORT" ]; then
    echo "wrote $REPORT (inspect with: cargo run --bin emts-report -- show $REPORT)"
fi
