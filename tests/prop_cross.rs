//! Cross-crate property tests: generated workloads → heuristics/EMTS →
//! mapper → validators must hold for arbitrary parameters.

use exec_model::{SyntheticModel, TimeMatrix};
use heuristics::{Allocator, DeltaCritical, Hcpa, Mcpa};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sched::validate::all_violations;
use sched::{ListScheduler, Mapper};
use sim::executor::execute;
use workloads::daggen::{random_ptg, DaggenParams};
use workloads::CostConfig;

fn params_strategy() -> impl Strategy<Value = (DaggenParams, u64, u32)> {
    (
        5usize..60,
        0.15f64..0.9,
        0.0f64..=1.0,
        0.1f64..0.9,
        0usize..4,
        0u64..10_000,
        2u32..40,
    )
        .prop_map(|(n, width, regularity, density, jump, seed, procs)| {
            (
                DaggenParams {
                    n,
                    width,
                    regularity,
                    density,
                    jump,
                },
                seed,
                procs,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn heuristic_allocations_map_to_valid_replayable_schedules(
        (params, seed, procs) in params_strategy()
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = random_ptg(&params, &CostConfig::default(), &mut rng);
        let matrix = TimeMatrix::compute(&g, &SyntheticModel::default(), 3.1e9, procs);
        for allocator in [
            &Mcpa as &dyn Allocator,
            &Hcpa,
            &DeltaCritical::default(),
        ] {
            let alloc = allocator.allocate(&g, &matrix);
            prop_assert!(alloc.is_valid_for(&g, procs), "{}", allocator.name());
            let schedule = ListScheduler.map(&g, &matrix, &alloc);
            let violations = all_violations(&g, &matrix, &alloc, &schedule);
            prop_assert!(violations.is_empty(), "{}: {:?}", allocator.name(), violations);
            let replay = execute(&g, &schedule);
            prop_assert!(replay.is_ok(), "{}: {:?}", allocator.name(), replay.err());
            let report = replay.unwrap();
            prop_assert!(
                (report.makespan - schedule.makespan()).abs()
                    <= 1e-9 * schedule.makespan().max(1.0)
            );
        }
    }

    #[test]
    fn emts_output_is_valid_and_not_worse_than_mcpa(
        (params, seed, procs) in params_strategy()
    ) {
        use emts::{Emts, EmtsConfig};
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = random_ptg(&params, &CostConfig::default(), &mut rng);
        let matrix = TimeMatrix::compute(&g, &SyntheticModel::default(), 3.1e9, procs);
        // A tiny EA keeps the property test fast; plus-selection still
        // guarantees the seed bound.
        let cfg = EmtsConfig {
            mu: 3,
            lambda: 6,
            generations: 2,
            parallel_evaluation: false,
            ..EmtsConfig::emts5()
        };
        let result = Emts::new(cfg).run(&g, &matrix, seed);
        prop_assert!(result.best.is_valid_for(&g, procs));
        let mcpa = heuristics::allocate_and_map(&Mcpa, &g, &matrix).1;
        prop_assert!(result.best_makespan <= mcpa + 1e-9 * mcpa,
            "EMTS {} vs MCPA {}", result.best_makespan, mcpa);
        // The reported fitness is reproducible from the allocation.
        let remapped = ListScheduler.makespan(&g, &matrix, &result.best);
        prop_assert!((remapped - result.best_makespan).abs() <= 1e-9 * remapped.max(1.0));
    }

    #[test]
    fn ptg_text_format_round_trips_generated_graphs(
        (params, seed, _procs) in params_strategy()
    ) {
        use sim::formats::{parse_ptg, render_ptg};
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = random_ptg(&params, &CostConfig::default(), &mut rng);
        let text = render_ptg(&g);
        let back = parse_ptg(&text).expect("rendered PTGs parse");
        prop_assert_eq!(back.task_count(), g.task_count());
        prop_assert_eq!(back.edge_count(), g.edge_count());
        prop_assert!(back.edges().eq(g.edges()));
        for (a, b) in back.tasks().iter().zip(g.tasks()) {
            prop_assert!((a.flop - b.flop).abs() <= 1e-9 * b.flop);
            prop_assert!((a.alpha - b.alpha).abs() <= 1e-12);
        }
    }
}
