//! The paper's central experimental claims, asserted as integration tests
//! on small corpora. These are *qualitative shape* checks (who wins,
//! where the effect is largest), not absolute-number comparisons — the
//! paper itself only reports relative makespans.

use emts::{Emts, EmtsConfig};
use exec_model::{Amdahl, ExecutionTimeModel, SyntheticModel, TimeMatrix};
use heuristics::{allocate_and_map, Hcpa, Mcpa};
use platform::presets::{chti, grelon};
use platform::Cluster;
use ptg::Ptg;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use workloads::daggen::{random_ptg, DaggenParams};
use workloads::CostConfig;

fn irregular_batch(count: usize, seed: u64) -> Vec<Ptg> {
    let params = DaggenParams {
        n: 100,
        width: 0.5,
        regularity: 0.2,
        density: 0.2,
        jump: 2,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| random_ptg(&params, &CostConfig::default(), &mut rng))
        .collect()
}

/// Mean relative makespan `T_baseline / T_EMTS5` over a batch.
fn mean_rel<M: ExecutionTimeModel>(graphs: &[Ptg], cluster: &Cluster, model: &M) -> (f64, f64) {
    let emts = Emts::new(EmtsConfig::emts5());
    let (mut mcpa_sum, mut hcpa_sum) = (0.0, 0.0);
    for (i, g) in graphs.iter().enumerate() {
        let matrix = TimeMatrix::compute(g, model, cluster.speed_flops(), cluster.processors);
        let (_, mcpa) = allocate_and_map(&Mcpa, g, &matrix);
        let (_, hcpa) = allocate_and_map(&Hcpa, g, &matrix);
        let best = emts.run(g, &matrix, i as u64).best_makespan;
        mcpa_sum += mcpa / best;
        hcpa_sum += hcpa / best;
    }
    (
        mcpa_sum / graphs.len() as f64,
        hcpa_sum / graphs.len() as f64,
    )
}

#[test]
fn claim_emts_never_worse_than_its_seeds_model1_and_model2() {
    // §V: "the best solution that has been found is definitely conserved"
    // — relative makespans are ≥ 1 for every instance and both models.
    let graphs = irregular_batch(4, 50);
    for cluster in [chti(), grelon()] {
        let (m1_mcpa, m1_hcpa) = mean_rel(&graphs, &cluster, &Amdahl);
        let (m2_mcpa, m2_hcpa) = mean_rel(&graphs, &cluster, &SyntheticModel::default());
        for (label, v) in [
            ("M1/MCPA", m1_mcpa),
            ("M1/HCPA", m1_hcpa),
            ("M2/MCPA", m2_mcpa),
            ("M2/HCPA", m2_hcpa),
        ] {
            assert!(v >= 1.0 - 1e-9, "{}/{}: {v}", cluster.name, label);
        }
    }
}

#[test]
fn claim_emts_improves_significantly_on_irregular_ptgs_on_grelon_model2() {
    // Fig. 5's strongest cell: irregular n=100 on the large platform under
    // the non-monotonic model. The paper shows clear improvements (bars
    // well above 1.0); we require ≥ 2 % mean improvement as a conservative
    // smoke threshold.
    let graphs = irregular_batch(5, 51);
    let (rel_mcpa, rel_hcpa) = mean_rel(&graphs, &grelon(), &SyntheticModel::default());
    assert!(rel_mcpa > 1.02, "MCPA/EMTS5 = {rel_mcpa}");
    assert!(rel_hcpa > 1.02, "HCPA/EMTS5 = {rel_hcpa}");
}

#[test]
fn claim_improvement_larger_on_bigger_platform() {
    // §V-A: "EMTS performs comparatively better for larger platforms" —
    // checked for MCPA under Model 2 where the paper's effect is clearest.
    let graphs = irregular_batch(5, 52);
    let model = SyntheticModel::default();
    let (chti_rel, _) = mean_rel(&graphs, &chti(), &model);
    let (grelon_rel, _) = mean_rel(&graphs, &grelon(), &model);
    assert!(
        grelon_rel >= chti_rel - 0.02,
        "Grelon {grelon_rel} should be ≳ Chti {chti_rel}"
    );
}

#[test]
fn claim_emts10_at_least_as_good_as_emts5_on_average() {
    // §V-B: "the scheduling performance improves if more individuals are
    // created and tested" — EMTS10 vs EMTS5 mean makespans.
    let graphs = irregular_batch(4, 53);
    let cluster = grelon();
    let model = SyntheticModel::default();
    let e5 = Emts::new(EmtsConfig::emts5());
    let e10 = Emts::new(EmtsConfig::emts10());
    let (mut sum5, mut sum10) = (0.0, 0.0);
    for (i, g) in graphs.iter().enumerate() {
        let matrix = TimeMatrix::compute(g, &model, cluster.speed_flops(), cluster.processors);
        sum5 += e5.run(g, &matrix, i as u64).best_makespan;
        sum10 += e10.run(g, &matrix, i as u64).best_makespan;
    }
    assert!(
        sum10 <= sum5 * 1.005,
        "EMTS10 mean {} vs EMTS5 mean {}",
        sum10 / graphs.len() as f64,
        sum5 / graphs.len() as f64
    );
}

#[test]
fn claim_mcpa_and_hcpa_grow_allocations_under_model2() {
    // §V-B: "when applying Model 2, the allocation routine of MCPA or HCPA
    // does not stop with 1-processor allocations. Often allocations will
    // grow up to a size of 4–8 processors."
    use heuristics::Allocator;
    let graphs = irregular_batch(3, 54);
    let cluster = grelon();
    let model = SyntheticModel::default();
    for g in &graphs {
        let matrix = TimeMatrix::compute(g, &model, cluster.speed_flops(), cluster.processors);
        for (name, alloc) in [
            ("MCPA", Mcpa.allocate(g, &matrix)),
            ("HCPA", Hcpa.allocate(g, &matrix)),
        ] {
            let grown = alloc.as_slice().iter().filter(|&&s| s > 1).count();
            assert!(grown > 0, "{name} stayed at all-ones");
        }
    }
}
