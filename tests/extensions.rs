//! Integration coverage for the extension APIs: portfolios, islands,
//! BiCPA, CPR, model fitting, sparse interpolation and graph contraction —
//! each exercised end-to-end against the core pipeline.

use emts::portfolio::{default_portfolio, run_portfolio};
use emts::{Emts, EmtsConfig, IslandConfig, IslandEmts};
use exec_model::fit::fit_amdahl_to_model;
use exec_model::{Amdahl, ExecutionTimeModel, SparseTabulated, SyntheticModel, TimeMatrix};
use heuristics::bicpa::{pareto_front, tradeoff_curve};
use heuristics::{allocate_and_map, Allocator, BiCpa, Cpr, Mcpa};
use ptg::transform::merge_series;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sched::{ListScheduler, Mapper};
use workloads::daggen::{random_ptg, DaggenParams};
use workloads::families::chain;
use workloads::CostConfig;

fn sample(n: usize, seed: u64) -> ptg::Ptg {
    random_ptg(
        &DaggenParams {
            n,
            width: 0.5,
            regularity: 0.5,
            density: 0.3,
            jump: 1,
        },
        &CostConfig::default(),
        &mut ChaCha8Rng::seed_from_u64(seed),
    )
}

#[test]
fn portfolio_winner_beats_every_heuristic_baseline() {
    let g = sample(40, 1);
    let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 3.1e9, 40);
    let outcome = run_portfolio(&default_portfolio(), &g, &m, 5);
    let (_, mcpa) = allocate_and_map(&Mcpa, &g, &m);
    assert!(outcome.best().result.best_makespan <= mcpa + 1e-9);
}

#[test]
fn island_results_map_to_reproducible_makespans() {
    let g = sample(40, 2);
    let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 3.1e9, 40);
    let result = IslandEmts::new(IslandConfig {
        islands: 2,
        epochs: 2,
        base: EmtsConfig::emts5(),
    })
    .run(&g, &m, 3);
    let remapped = ListScheduler.makespan(&g, &m, &result.best);
    assert!((remapped - result.best_makespan).abs() <= 1e-9 * remapped);
}

#[test]
fn bicpa_front_brackets_the_emts_solution_in_work() {
    // EMTS optimizes makespan only; its work usage must lie within the
    // BiCPA front's extremes (which span minimal to maximal total work of
    // the capped-CPA family) — loosely: EMTS work ≥ the front's minimum.
    let g = sample(40, 3);
    let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 3.1e9, 40);
    let front = pareto_front(&tradeoff_curve(&g, &m));
    assert!(!front.is_empty());
    let min_work = front.iter().map(|p| p.work).fold(f64::INFINITY, f64::min);
    let emts = Emts::new(EmtsConfig::emts5()).run(&g, &m, 1);
    let times = m.times_for(emts.best.as_slice());
    let emts_work = emts.best.work_area(&times);
    assert!(emts_work + 1e-6 >= min_work);
    // And BiCPA's balanced pick is a valid allocation end to end.
    let (alloc, ms) = allocate_and_map(&BiCpa::default(), &g, &m);
    assert!(alloc.is_valid_for(&g, 40));
    assert!(ms.is_finite() && ms > 0.0);
}

#[test]
fn cpr_and_mcpa_agree_with_their_mapped_validation() {
    let g = sample(30, 4);
    let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 3.1e9, 30);
    for allocator in [&Cpr as &dyn Allocator, &Mcpa] {
        let alloc = allocator.allocate(&g, &m);
        let schedule = ListScheduler.map(&g, &m, &alloc);
        assert!(
            sched::validate::all_violations(&g, &m, &alloc, &schedule).is_empty(),
            "{}",
            allocator.name()
        );
    }
}

#[test]
fn fitted_model_drives_the_scheduler_like_the_original() {
    // Fit Amdahl to a task's exact Amdahl curve, rebuild the task from the
    // fit, and check the scheduler sees identical times.
    let g = chain(4, &CostConfig::default(), &mut ChaCha8Rng::seed_from_u64(5));
    let speed = 3.1e9;
    for v in g.task_ids() {
        let task = g.task(v);
        let ps: Vec<u32> = vec![1, 2, 4, 8, 16];
        let fit = fit_amdahl_to_model(&Amdahl, task, speed, &ps);
        let rebuilt = fit.to_task(task.name.clone(), speed);
        for p in [1u32, 3, 7, 16] {
            let orig = Amdahl.time(task, p, speed);
            let refit = Amdahl.time(&rebuilt, p, speed);
            assert!(
                (orig - refit).abs() <= 1e-6 * orig,
                "{}: p={p}: {orig} vs {refit}",
                task.name
            );
        }
    }
}

#[test]
fn sparse_measurements_schedule_end_to_end() {
    let g = sample(25, 6);
    let model = SparseTabulated::from_measurements(&[
        (1, 10.0),
        (2, 5.4),
        (4, 3.0),
        (8, 1.9),
        (16, 1.4),
        (32, 1.2),
    ]);
    let m = TimeMatrix::compute(&g, &model, 3.1e9, 32);
    let result = Emts::new(EmtsConfig::emts5()).run(&g, &m, 2);
    assert!(result.best_makespan <= result.seed_makespan + 1e-9);
    let (_, mcpa) = allocate_and_map(&Mcpa, &g, &m);
    assert!(result.best_makespan <= mcpa + 1e-9);
}

#[test]
fn series_contraction_preserves_single_processor_makespan() {
    // On one processor the makespan is the total work, which contraction
    // preserves exactly.
    let g = sample(30, 7);
    let (merged, groups) = merge_series(&g);
    assert_eq!(
        groups.iter().map(Vec::len).sum::<usize>(),
        g.task_count(),
        "groups partition the tasks"
    );
    let m_orig = TimeMatrix::compute(&g, &Amdahl, 1e9, 1);
    let m_merged = TimeMatrix::compute(&merged, &Amdahl, 1e9, 1);
    let ms_orig = ListScheduler.makespan(&g, &m_orig, &sched::Allocation::ones(g.task_count()));
    let ms_merged = ListScheduler.makespan(
        &merged,
        &m_merged,
        &sched::Allocation::ones(merged.task_count()),
    );
    assert!(
        (ms_orig - ms_merged).abs() <= 1e-9 * ms_orig,
        "{ms_orig} vs {ms_merged}"
    );
}

#[test]
fn rejection_accelerated_emts_matches_quality_at_generous_slack() {
    let g = sample(40, 8);
    let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 3.1e9, 40);
    let base = Emts::new(EmtsConfig::emts5()).run(&g, &m, 4);
    let rejecting = Emts::new(EmtsConfig {
        rejection: true,
        rejection_slack: 2.0,
        ..EmtsConfig::emts5()
    })
    .run(&g, &m, 4);
    // Identical RNG stream and a slack that rarely fires → same best.
    assert!(
        (base.best_makespan - rejecting.best_makespan).abs() <= 0.05 * base.best_makespan,
        "{} vs {}",
        base.best_makespan,
        rejecting.best_makespan
    );
}
