//! End-to-end telemetry: a recorded EMTS run must produce a coherent,
//! schema-versioned [`obs::RunReport`] whose phase spans account for the
//! evolutionary loop's wall time, and the report tooling must round-trip
//! and diff it.

use emts::{Emts, EmtsConfig};
use exec_model::{SyntheticModel, TimeMatrix};
use obs::{FlightRecorder, RunReport, StatsRecorder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sim::runner::{run_obs, Algorithm};
use workloads::daggen::{random_ptg, DaggenParams};
use workloads::CostConfig;

fn graph(seed: u64) -> ptg::Ptg {
    let params = DaggenParams {
        n: 100,
        width: 0.5,
        regularity: 0.2,
        density: 0.2,
        jump: 2,
    };
    random_ptg(
        &params,
        &CostConfig::default(),
        &mut ChaCha8Rng::seed_from_u64(seed),
    )
}

fn recorded_run(seed: u64) -> RunReport {
    let g = graph(7);
    let cluster = platform::grelon();
    let model = SyntheticModel::default();
    let matrix = TimeMatrix::compute(&g, &model, cluster.speed_flops(), cluster.processors);
    let rec = StatsRecorder::new();
    let result = Emts::new(EmtsConfig::emts10()).run_recorded(&g, &matrix, seed, &rec);
    let mut report = rec.report("test");
    report
        .gauges
        .insert("check.best".into(), result.best_makespan);
    report
}

#[test]
fn ea_phase_spans_sum_to_the_ea_wall_time() {
    let report = recorded_run(1);
    let ea = report.phases.get("ea").expect("ea span recorded");
    assert_eq!(ea.count, 1);
    for child in ["ea/seed", "ea/mutate", "ea/evaluate", "ea/select"] {
        assert!(report.phases.contains_key(child), "missing span {child}");
    }
    // The four per-generation phases are the loop body; whatever they do
    // not cover is loop scaffolding, which must stay below 5% of the run.
    let children = report.children_seconds("ea");
    assert!(
        children <= ea.seconds * 1.000001,
        "children {children} exceed parent {}",
        ea.seconds
    );
    assert!(
        children >= ea.seconds * 0.95,
        "phase spans cover only {:.1}% of the ea span",
        100.0 * children / ea.seconds
    );
    // And the ea span itself is bounded by the recorder's wall clock.
    assert!(ea.seconds <= report.wall_seconds * 1.000001);
}

#[test]
fn hot_path_counters_and_histograms_are_populated() {
    let report = recorded_run(1);
    let hits = report.counters["emts.cache.hits"];
    let misses = report.counters["emts.cache.misses"];
    assert!(misses > 0, "a real run must evaluate something");
    // Offspring fitness requests go through the memo cache; the seed
    // population is evaluated up front, outside the engine.
    assert!(
        hits + misses <= report.counters["emts.evaluations"],
        "engine requests cannot exceed total evaluations"
    );
    let rate = report.cache_hit_rate().expect("cache counters present");
    assert!((0.0..=1.0).contains(&rate));
    // Scheduler heap instrumentation propagated up from the mapper: every
    // engine miss runs the mapper, which places at least one task before
    // any rejection cutoff can fire.
    assert!(report.counters["sched.tasks_placed"] >= misses);
    assert!(report.counters["sched.group_pops"] >= report.counters["sched.tasks_placed"]);
    // Per-evaluation latency histogram: one finite sample per mapper run.
    let lat = &report.histograms["pool.eval_seconds"];
    assert_eq!(lat.total(), misses);
    assert!(lat.mean() > 0.0);
    // Best makespan gauge mirrors the EmtsResult.
    let best = report.best_makespan().expect("gauge recorded");
    assert_eq!(best, report.gauges["check.best"]);
    assert!(best <= report.gauges["emts.seed_makespan"] + 1e-9);
}

#[test]
fn reports_round_trip_and_diff() {
    let a = recorded_run(1);
    let b = recorded_run(2);
    let back = RunReport::from_json(&a.to_json()).expect("round trip");
    assert_eq!(back, a);
    let diff = obs::render::render_diff(&a, &b);
    assert!(diff.contains("ea/evaluate"), "diff lists phases:\n{diff}");
    assert!(
        diff.contains("cache hit rate"),
        "diff shows hit rate:\n{diff}"
    );
    assert!(
        diff.contains("best makespan"),
        "diff shows makespan:\n{diff}"
    );
    let shown = obs::render::render_report(&a);
    assert!(shown.contains("ea/select"));
    assert!(shown.contains("emts.cache.hits"));
}

#[test]
fn flight_recorder_traces_one_lane_per_pool_worker() {
    const WORKERS: usize = 3;
    let g = graph(7);
    let cluster = platform::grelon();
    let model = SyntheticModel::default();
    let matrix = TimeMatrix::compute(&g, &model, cluster.speed_flops(), cluster.processors);
    // Batch items are claimed by an atomic counter, so on a heavily loaded
    // host a worker can lose every claim race and record nothing. Retry a
    // few times: the guarantee is that every worker *does* get its own
    // named lane whenever it evaluates, not that the OS scheduler is fair.
    let mut flight = FlightRecorder::new();
    let mut lanes: Vec<String> = Vec::new();
    for _attempt in 0..5 {
        flight = FlightRecorder::new();
        let result =
            Emts::new(EmtsConfig::emts10()).run_with_workers(&g, &matrix, 5, WORKERS, &flight);
        assert!(result.best_makespan.is_finite());
        lanes = flight.snapshot().into_iter().map(|l| l.name).collect();
        if lanes.len() == WORKERS + 1 {
            break;
        }
    }
    // One ring per thread that recorded anything: the driving thread plus
    // every pool worker — workers time their batch items, so each lane is
    // guaranteed events.
    assert_eq!(
        lanes.len(),
        WORKERS + 1,
        "expected main + {WORKERS} worker lanes, got {lanes:?}"
    );
    for w in 0..WORKERS {
        let name = format!("worker-{w}");
        assert!(lanes.iter().any(|l| l == &name), "missing lane {name}");
    }

    // The Chrome trace is loadable JSON with one named thread per lane,
    // and the span pairing produced complete ("X") events.
    let trace = serde_json::parse(&flight.chrome_trace_json()).expect("chrome trace parses");
    let events = match trace.get("traceEvents") {
        Some(serde::Value::Array(evs)) => evs,
        other => panic!("traceEvents is not an array: {other:?}"),
    };
    let ph_count = |ph: &str| {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(serde::Value::as_str) == Some(ph))
            .count()
    };
    let thread_names = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(serde::Value::as_str) == Some("M")
                && e.get("name").and_then(serde::Value::as_str) == Some("thread_name")
        })
        .count();
    assert_eq!(thread_names, lanes.len(), "one thread_name event per lane");
    assert!(ph_count("X") > 0, "trace contains complete span events");
    // The pool batches themselves are on the timeline.
    assert!(
        events
            .iter()
            .any(|e| { e.get("name").and_then(serde::Value::as_str) == Some("pool.batch") }),
        "pool batch spans are traced"
    );
}

#[test]
fn full_pipeline_records_every_stage() {
    let g = graph(3);
    let cluster = platform::chti();
    let model = SyntheticModel::default();
    let rec = StatsRecorder::new();
    let (run_report, schedule, trace) = run_obs(Algorithm::Emts5, &g, &cluster, &model, 5, &rec);
    let report = rec.report("pipeline");
    for phase in ["matrix", "allocate", "allocate/ea", "map", "replay"] {
        assert!(report.phases.contains_key(phase), "missing span {phase}");
    }
    let trace = trace.expect("EMTS runs surface their convergence trace");
    assert_eq!(trace.cache_hits as u64, report.counters["emts.cache.hits"]);
    assert_eq!(report.gauges["run.makespan"], run_report.makespan);
    assert_eq!(
        report.counters["sim.events"],
        2 * schedule.task_count() as u64
    );
    // Replaying through run() (no recorder) must agree exactly: telemetry
    // cannot perturb the computation.
    let (plain, _) = sim::runner::run(Algorithm::Emts5, &g, &cluster, &model, 5);
    assert_eq!(plain.makespan, run_report.makespan);
    assert_eq!(plain.allocation, run_report.allocation);
}
