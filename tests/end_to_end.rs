//! End-to-end integration: corpus generation → allocation → mapping →
//! discrete-event replay, across every crate of the workspace.

use exec_model::{PaperModel, TimeMatrix};
use platform::presets::{chti, grelon};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sched::validate::all_violations;
use sim::executor::execute;
use sim::runner::{run, Algorithm};
use workloads::{Corpus, CostConfig, PtgClass};

/// A small but class-complete corpus.
fn corpus() -> Corpus {
    Corpus::paper(
        0.01,
        &CostConfig::default(),
        &mut ChaCha8Rng::seed_from_u64(1234),
    )
}

#[test]
fn every_algorithm_survives_a_mixed_corpus_on_chti() {
    let corpus = corpus();
    let cluster = chti();
    let model = PaperModel::Model2.instantiate();
    // One instance per class keeps this quick while touching every code path.
    for class in [
        PtgClass::Fft,
        PtgClass::Strassen,
        PtgClass::Layered,
        PtgClass::Irregular,
    ] {
        let entry = corpus.by_class(class).next().expect("class populated");
        for alg in [
            Algorithm::Cpa,
            Algorithm::Mcpa,
            Algorithm::DeltaCritical,
            Algorithm::Emts5,
        ] {
            let (report, schedule) = run(alg, &entry.ptg, &cluster, model.as_ref(), 5);
            assert!(report.makespan > 0.0, "{}/{:?}", alg.name(), class);
            assert_eq!(schedule.task_count(), entry.ptg.task_count());
        }
    }
}

#[test]
fn static_and_dynamic_validation_agree_on_mapper_output() {
    let corpus = corpus();
    let cluster = grelon();
    let model = PaperModel::Model1.instantiate();
    for entry in corpus.entries.iter().take(20) {
        let matrix = TimeMatrix::compute(
            &entry.ptg,
            model.as_ref(),
            cluster.speed_flops(),
            cluster.processors,
        );
        let alloc = Algorithm::Mcpa.allocate(&entry.ptg, &matrix, 0);
        let schedule = {
            use sched::{ListScheduler, Mapper};
            ListScheduler.map(&entry.ptg, &matrix, &alloc)
        };
        // Static validator: no violations.
        let violations = all_violations(&entry.ptg, &matrix, &alloc, &schedule);
        assert!(violations.is_empty(), "{}: {violations:?}", entry.name);
        // Dynamic replay: executes and re-derives the same makespan.
        let report = execute(&entry.ptg, &schedule).expect("replayable");
        assert!(
            (report.makespan - schedule.makespan()).abs() <= 1e-9 * schedule.makespan().max(1.0),
            "{}: replay {} vs mapper {}",
            entry.name,
            report.makespan,
            schedule.makespan()
        );
    }
}

#[test]
fn emts_schedules_replay_with_high_utilization_than_mcpa_on_big_machine() {
    // Fig. 6's qualitative claim: EMTS uses the cluster more efficiently
    // than MCPA on a large platform. Utilization is not *guaranteed* to be
    // higher per instance (shorter makespan shrinks the denominator), so
    // assert the weaker but universal property: EMTS's makespan is never
    // worse, and both replays succeed.
    let corpus = corpus();
    let cluster = grelon();
    let model = PaperModel::Model2.instantiate();
    let entry = corpus
        .by_class_and_size(PtgClass::Irregular, 100)
        .next()
        .expect("irregular n=100 present");
    let (mcpa, _) = run(Algorithm::Mcpa, &entry.ptg, &cluster, model.as_ref(), 9);
    let (emts, _) = run(Algorithm::Emts5, &entry.ptg, &cluster, model.as_ref(), 9);
    assert!(emts.makespan <= mcpa.makespan + 1e-9);
    assert!(emts.sim.utilization() > 0.0);
}

#[test]
fn model1_and_model2_rank_algorithms_consistently_with_plus_selection() {
    let corpus = corpus();
    let cluster = chti();
    for model in [PaperModel::Model1, PaperModel::Model2] {
        let m = model.instantiate();
        let entry = corpus.by_class(PtgClass::Fft).next().unwrap();
        let (hcpa, _) = run(Algorithm::Hcpa, &entry.ptg, &cluster, m.as_ref(), 3);
        let (emts, _) = run(Algorithm::Emts5, &entry.ptg, &cluster, m.as_ref(), 3);
        assert!(
            emts.makespan <= hcpa.makespan + 1e-9,
            "{model:?}: EMTS {} vs HCPA {}",
            emts.makespan,
            hcpa.makespan
        );
    }
}

#[test]
fn reports_serialize_and_deserialize_through_json() {
    let corpus = corpus();
    let entry = corpus.by_class(PtgClass::Strassen).next().unwrap();
    let model = PaperModel::Model2.instantiate();
    let (report, _) = run(Algorithm::Emts5, &entry.ptg, &chti(), model.as_ref(), 11);
    let json = serde_json::to_string_pretty(&report).expect("serializable");
    let back: sim::RunReport = serde_json::from_str(&json).expect("deserializable");
    assert_eq!(back.makespan, report.makespan);
    assert_eq!(back.allocation, report.allocation);
}
