//! Tooling-level integration: corpus persistence, traces, Gantt rendering
//! and lower bounds working together over real generated workloads.

use exec_model::{SyntheticModel, TimeMatrix};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sched::bounds::{gap_factor, lower_bounds};
use sched::gantt::{ascii_gantt, svg_gantt, SvgOptions};
use sched::{ListScheduler, Mapper};
use sim::corpus_io::{load_corpus, save_corpus};
use sim::runner::{run, Algorithm};
use sim::trace::{occupancy_profile, trace_schedule};
use workloads::{Corpus, CostConfig, PtgClass};

fn corpus() -> Corpus {
    Corpus::paper(
        0.01,
        &CostConfig::default(),
        &mut ChaCha8Rng::seed_from_u64(77),
    )
}

#[test]
fn persisted_corpus_reproduces_schedules_exactly() {
    let dir = std::env::temp_dir().join(format!("emts_it_corpus_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let corpus = corpus();
    save_corpus(&dir, &corpus).unwrap();
    let loaded = load_corpus(&dir).unwrap();
    let cluster = platform::chti();
    let model = SyntheticModel::default();
    for (a, b) in corpus.entries.iter().zip(&loaded.entries).take(10) {
        let (ra, _) = run(Algorithm::Mcpa, &a.ptg, &cluster, &model, 1);
        let (rb, _) = run(Algorithm::Mcpa, &b.ptg, &cluster, &model, 1);
        // Costs survive text round-tripping to ~1e-9 relative precision;
        // identical schedules follow for a deterministic algorithm.
        assert!(
            (ra.makespan - rb.makespan).abs() <= 1e-6 * ra.makespan,
            "{}: {} vs {}",
            a.name,
            ra.makespan,
            rb.makespan
        );
        assert_eq!(ra.allocation, rb.allocation, "{}", a.name);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn traces_account_for_every_processor_second() {
    let corpus = corpus();
    let cluster = platform::grelon();
    let model = SyntheticModel::default();
    let entry = corpus
        .by_class_and_size(PtgClass::Irregular, 100)
        .next()
        .unwrap();
    let (_, schedule) = run(Algorithm::Mcpa, &entry.ptg, &cluster, &model, 2);
    let trace = trace_schedule(&entry.ptg, &schedule);
    assert_eq!(trace.len(), 2 * entry.ptg.task_count());
    // Integrate the occupancy step function: must equal the busy area.
    let profile = occupancy_profile(&trace);
    let mut area = 0.0;
    for w in profile.windows(2) {
        area += w[0].1 as f64 * (w[1].0 - w[0].0);
    }
    assert!(
        (area - schedule.busy_area()).abs() <= 1e-6 * schedule.busy_area(),
        "occupancy integral {} vs busy area {}",
        area,
        schedule.busy_area()
    );
}

#[test]
fn gantt_renderings_cover_all_tasks_and_rows() {
    let corpus = corpus();
    let cluster = platform::chti();
    let model = SyntheticModel::default();
    let entry = corpus.by_class(PtgClass::Strassen).next().unwrap();
    let (_, schedule) = run(Algorithm::Emts5, &entry.ptg, &cluster, &model, 3);
    let ascii = ascii_gantt(&schedule, 60);
    assert_eq!(
        ascii.lines().filter(|l| l.starts_with('P')).count(),
        cluster.processors as usize
    );
    let svg = svg_gantt(&entry.ptg, &schedule, &SvgOptions::default());
    assert!(svg.matches("<rect").count() > entry.ptg.task_count() / 2);
}

#[test]
fn gap_factors_are_sane_across_algorithms() {
    let corpus = corpus();
    let cluster = platform::grelon();
    let model = SyntheticModel::default();
    let entry = corpus
        .by_class_and_size(PtgClass::Layered, 100)
        .next()
        .unwrap();
    let matrix = TimeMatrix::compute(
        &entry.ptg,
        &model,
        cluster.speed_flops(),
        cluster.processors,
    );
    for alg in [Algorithm::Mcpa, Algorithm::Hcpa, Algorithm::Emts5] {
        let alloc = alg.allocate(&entry.ptg, &matrix, 4);
        let ms = ListScheduler.makespan(&entry.ptg, &matrix, &alloc);
        let gap = gap_factor(&entry.ptg, &matrix, &alloc, ms);
        assert!(gap >= 1.0 - 1e-9, "{}: gap {gap}", alg.name());
        assert!(gap < 10.0, "{}: unreasonable gap {gap}", alg.name());
        let bounds = lower_bounds(&entry.ptg, &matrix, &alloc);
        assert!(bounds.universal_bound() <= ms + 1e-9);
    }
}

#[test]
fn emts_gap_is_no_worse_than_mcpa_gap() {
    // EMTS minimizes the same makespan the gap numerator measures, so its
    // gap to the *universal* bound cannot exceed MCPA's.
    let corpus = corpus();
    let cluster = platform::grelon();
    let model = SyntheticModel::default();
    let entry = corpus
        .by_class_and_size(PtgClass::Irregular, 100)
        .next()
        .unwrap();
    let matrix = TimeMatrix::compute(
        &entry.ptg,
        &model,
        cluster.speed_flops(),
        cluster.processors,
    );
    let mcpa_ms = ListScheduler.makespan(
        &entry.ptg,
        &matrix,
        &Algorithm::Mcpa.allocate(&entry.ptg, &matrix, 0),
    );
    let emts_ms = ListScheduler.makespan(
        &entry.ptg,
        &matrix,
        &Algorithm::Emts5.allocate(&entry.ptg, &matrix, 0),
    );
    assert!(emts_ms <= mcpa_ms + 1e-9);
}
