//! Multi-cluster integration: grids, HCPA-grid and grid-EMTS end-to-end.

use emts::GridEmts;
use exec_model::{Amdahl, SyntheticModel};
use heuristics::HcpaGrid;
use platform::grid::{grid5000_pair, Grid};
use platform::Cluster;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sched::multi::{map_on_grid, validate_grid_schedule, GridTimeMatrix};
use workloads::daggen::{random_ptg, DaggenParams};
use workloads::CostConfig;

fn sample(n: usize, seed: u64) -> ptg::Ptg {
    random_ptg(
        &DaggenParams {
            n,
            width: 0.5,
            regularity: 0.5,
            density: 0.3,
            jump: 1,
        },
        &CostConfig::default(),
        &mut ChaCha8Rng::seed_from_u64(seed),
    )
}

#[test]
fn combined_grid_beats_the_small_cluster_alone() {
    use exec_model::TimeMatrix;
    use heuristics::{allocate_and_map, Hcpa};
    let grid = grid5000_pair();
    let chti = &grid.clusters[0];
    let model = SyntheticModel::default();
    let mut grid_wins = 0;
    for seed in 0..4 {
        let g = sample(60, 300 + seed);
        let (_, grid_schedule) = HcpaGrid.schedule(&g, &model, &grid);
        let matrix = TimeMatrix::compute(&g, &model, chti.speed_flops(), chti.processors);
        let (_, chti_ms) = allocate_and_map(&Hcpa, &g, &matrix);
        if grid_schedule.makespan() < chti_ms {
            grid_wins += 1;
        }
    }
    assert!(grid_wins >= 3, "grid won only {grid_wins}/4 against Chti");
}

#[test]
fn grid_emts_improves_or_matches_remapped_hcpa_under_both_models() {
    let grid = grid5000_pair();
    for seed in 0..2 {
        let g = sample(40, 400 + seed);
        for model_case in 0..2 {
            let result = if model_case == 0 {
                GridEmts::default().run(&g, &Amdahl, &grid, seed)
            } else {
                GridEmts::default().run(&g, &SyntheticModel::default(), &grid, seed)
            };
            assert!(result.best_makespan <= result.seed_makespan + 1e-9);
            assert!(result.best.is_valid_for(&g, &grid));
        }
    }
}

#[test]
fn heterogeneous_three_cluster_grid_works() {
    let grid = Grid::new(
        "tri",
        vec![
            Cluster::new("fast-small", 8, 6.0),
            Cluster::new("mid", 32, 3.0),
            Cluster::new("slow-big", 64, 1.5),
        ],
    );
    let model = SyntheticModel::default();
    let g = sample(50, 500);
    let (alloc, schedule) = HcpaGrid.schedule(&g, &model, &grid);
    assert!(alloc.is_valid_for(&g, &grid));
    validate_grid_schedule(&g, &grid, &schedule).unwrap();
    // Re-mapping the produced allocation is also valid.
    let matrices = GridTimeMatrix::compute(&g, &model, &grid);
    let remapped = map_on_grid(&g, &matrices, &alloc, &grid);
    validate_grid_schedule(&g, &grid, &remapped).unwrap();
}

#[test]
fn equivalent_processors_scale_reference_allocations_sensibly() {
    // Doubling every cluster's speed must not change the *structure* of the
    // reference allocation (times scale uniformly).
    let g = sample(30, 600);
    let base = grid5000_pair();
    let double = Grid::new(
        "double",
        base.clusters
            .iter()
            .map(|c| Cluster::new(c.name.clone(), c.processors, c.speed_gflops * 2.0))
            .collect(),
    );
    let a = HcpaGrid.reference_allocation(&g, &Amdahl, &base);
    let b = HcpaGrid.reference_allocation(&g, &Amdahl, &double);
    assert_eq!(a, b, "uniform speedup must not alter the CPA trajectory");
}
