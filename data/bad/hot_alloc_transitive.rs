//! Corpus: `src-hot-path-alloc-transitive` — a `// lint:hot-path` fn whose
//! own body is allocation-free but whose helper allocates. The single-site
//! `src-hot-path-alloc` rule cannot see this; only the call-graph pass can.

// lint:hot-path
fn hot_inner(xs: &mut [u32]) {
    scratch(xs);
}

fn scratch(xs: &mut [u32]) {
    let v = xs.to_vec();
    let _ = v;
}
