//! Corpus: src-unwrap-parse — unwrap on a user-input parse path.

fn parse_count(s: &str) -> u32 {
    s.trim().parse().unwrap()
}
