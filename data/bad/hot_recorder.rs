//! Corpus: src-hot-path-recorder — a concrete StatsRecorder constructed
//! inside a hot-path function instead of a generic `&impl Recorder`.

// lint:hot-path
fn inner_loop(xs: &[f64]) -> f64 {
    let rec = StatsRecorder::new();
    rec.add("evals", xs.len() as u64);
    xs.iter().sum()
}
