//! Corpus: src-write-unwrap — fmt::Result unwrapped instead of propagated.

use std::fmt::Write as _;

fn render(n: u32) -> String {
    let mut out = String::new();
    writeln!(out, "n = {n}").unwrap();
    out
}
