//! Corpus: src-surrogate-exact-confirm — the tier-1 screening interval is
//! consumed as a fitness value; survivors are never confirmed by an exact
//! evaluation, so selection can diverge from the all-exact EA.

fn screen_generation(pop: &[Allocation], cutoff: f64) -> Vec<f64> {
    let mut fitness = Vec::with_capacity(pop.len());
    for alloc in pop {
        let score = surrogate_score_obs(g, matrix, alloc, cutoff, &cfg, &mut scratch, &rec);
        fitness.push(score.lo);
    }
    fitness
}
