//! Corpus: src-timing — wall-clock reads outside the obs/bench crates.

use std::time::Instant;

fn tick() -> Instant {
    Instant::now()
}
