//! Corpus: src-hot-path-alloc — an allocating call in a hot-path function.

// lint:hot-path
fn inner_loop(xs: &[f64]) -> f64 {
    let copy = xs.to_vec();
    copy.iter().sum()
}
