//! Corpus: `lint-stale-allow` — an allow pragma whose rule never fires at
//! its site. Escapes that outlive the code they excused rot into silent
//! blanket suppressions; the audit flags them.

fn quiet() -> u32 {
    // lint:allow(src-timing) -- nothing here reads a clock
    41 + 1
}
