//! Corpus: `src-panic-reach` — a panic hidden two helper calls below a
//! parse path. The parse fn's own body is clean, so only the call-graph
//! propagation can see the panic.

fn parse_widget(s: &str) -> u32 {
    helper(s)
}

fn helper(s: &str) -> u32 {
    deep(s)
}

fn deep(s: &str) -> u32 {
    panic!("invalid widget: {s}")
}
