//! Corpus: `src-determinism-taint` — `Instant::now()` two calls below a
//! fn that produces a `RunReport`. The clock read also fires the
//! single-site `src-timing` rule at its own line (documented companion).

fn emit_report(gens: usize) -> RunReport {
    let stamp = jitter(gens);
    build(stamp)
}

fn jitter(gens: usize) -> u64 {
    wobble(gens)
}

fn wobble(gens: usize) -> u64 {
    let t = Instant::now();
    let _ = t;
    gens as u64
}
