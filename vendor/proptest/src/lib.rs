//! Offline property-testing subset compatible with how this workspace
//! uses proptest.
//!
//! Differences from upstream: no shrinking (a failing case prints its
//! generated input and panics as-is), and generation is deterministic —
//! the RNG is seeded from the test's name, so a given test sees the same
//! case sequence on every run. Rejections (`prop_filter_map`) regenerate
//! the case; a global rejection budget guards against vacuous filters.

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// The RNG driving all generation.
pub type TestRng = StdRng;

/// A generator of test-case values.
///
/// `generate` returns `None` when the underlying value was rejected by a
/// filter; callers regenerate.
pub trait Strategy: Clone {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O + Clone,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy derived from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + Clone,
    {
        FlatMap { inner: self, f }
    }

    /// Transforms values, rejecting those mapped to `None`. The label is
    /// only documentation (upstream reports it on exhaustion).
    fn prop_filter_map<O, F>(self, label: &'static str, f: F) -> FilterMap<Self, F>
    where
        F: Fn(Self::Value) -> Option<O> + Clone,
    {
        FilterMap {
            inner: self,
            label,
            f,
        }
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + Clone,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let first = self.inner.generate(rng)?;
        (self.f)(first).generate(rng)
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    #[allow(dead_code)]
    label: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O> + Clone,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

// Integer and float ranges are strategies sampling uniformly.
macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// Tuples of strategies generate tuples of values; a rejection in any
// component rejects the tuple.
macro_rules! tuple_strategy {
    ($(($($S:ident $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Something that can decide a collection length.
    pub trait SizeRange: Clone {
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            if self.start >= self.end {
                self.start
            } else {
                rng.gen_range(self.clone())
            }
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let len = self.size.sample_len(rng);
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                // Retry rejected elements locally; far cheaper than
                // rejecting the whole collection.
                let mut attempts = 0;
                loop {
                    if let Some(v) = self.element.generate(rng) {
                        out.push(v);
                        break;
                    }
                    attempts += 1;
                    if attempts > 1000 {
                        return None;
                    }
                }
            }
            Some(out)
        }
    }
}

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    //! The case loop behind the [`proptest!`](crate::proptest) macro.

    use super::{ProptestConfig, Strategy, TestRng};
    use rand::SeedableRng;
    use std::fmt::Debug;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Runs one property over many generated cases.
    pub struct TestRunner {
        config: ProptestConfig,
        name: &'static str,
        rng: TestRng,
    }

    impl TestRunner {
        /// Deterministic runner: the RNG seed is derived from the test
        /// name (FNV-1a), so each test replays the same case sequence.
        pub fn new(config: ProptestConfig, name: &'static str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRunner {
                config,
                name,
                rng: TestRng::seed_from_u64(seed),
            }
        }

        /// Generates and runs `config.cases` cases, panicking with the
        /// offending input if the property panics.
        pub fn run<S>(&mut self, strategy: &S, mut test: impl FnMut(S::Value))
        where
            S: Strategy,
            S::Value: Debug,
        {
            let mut case = 0u32;
            let mut rejections = 0u32;
            while case < self.config.cases {
                match strategy.generate(&mut self.rng) {
                    Some(value) => {
                        let shown = format!("{value:?}");
                        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| test(value))) {
                            eprintln!(
                                "proptest `{}`: case {case}/{} failed for input:\n  {shown}",
                                self.name, self.config.cases
                            );
                            resume_unwind(payload);
                        }
                        case += 1;
                    }
                    None => {
                        rejections += 1;
                        assert!(
                            rejections < 65_536,
                            "proptest `{}`: too many rejected cases",
                            self.name
                        );
                    }
                }
            }
        }
    }
}

/// Defines property tests: `#[test]` functions whose arguments are drawn
/// from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { [$crate::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ([$cfg:expr]) => {};
    (
        [$cfg:expr]
        $(#[$meta:meta])*
        fn $name:ident( $($arg_pat:pat in $arg_strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new(
                $cfg,
                stringify!($name),
            );
            let strategy = ($($arg_strat,)+);
            runner.run(&strategy, |($($arg_pat,)+)| $body);
        }
        $crate::__proptest_items! { [$cfg] $($rest)* }
    };
}

/// Asserts inside a property; on failure the runner reports the input.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    //! The imports property tests conventionally glob in.
    pub use crate::collection;
    pub use crate::test_runner::TestRunner;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        use rand::SeedableRng;
        let _ = &mut rng;
        let mut rng = crate::TestRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = (3u32..7).generate(&mut rng).unwrap();
            assert!((3..7).contains(&v));
            let f = (0.25f64..=0.75).generate(&mut rng).unwrap();
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn filter_map_rejects_and_retries() {
        use rand::SeedableRng;
        let mut rng = crate::TestRng::seed_from_u64(7);
        let s = (0usize..10, 0usize..10).prop_filter_map("distinct", |(a, b)| {
            if a != b {
                Some((a, b))
            } else {
                None
            }
        });
        let v = collection::vec(s, 50usize).generate(&mut rng).unwrap();
        assert_eq!(v.len(), 50);
        assert!(v.iter().all(|&(a, b)| a != b));
    }

    #[test]
    fn deterministic_across_runners() {
        let gen = |_: ()| {
            let mut r = TestRunner::new(ProptestConfig::with_cases(5), "determinism_probe");
            let mut seen = Vec::new();
            r.run(&(0u64..1_000_000,), |(x,)| seen.push(x));
            seen
        };
        assert_eq!(gen(()), gen(()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_compiles_and_runs(x in 1u32..100, (a, b) in (0u8..5, 0u8..5)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(a < 5 && b < 5);
        }

        #[test]
        fn flat_map_dependent_generation(v in (1usize..9).prop_flat_map(|n| {
            collection::vec(0usize..n, n)
        })) {
            prop_assert!(!v.is_empty());
            let n = v.len();
            prop_assert!(v.iter().all(|&x| x < n));
        }
    }
}
