//! Offline serde_json subset: JSON text ⇄ the vendored [`serde::Value`]
//! model.
//!
//! Supports everything the workspace writes: objects, arrays, strings
//! (with escapes), integers, floats (shortest round-trip via `{}`
//! formatting), bools and null. Non-finite floats serialize as `null`,
//! matching upstream serde_json.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// A serialization or deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..step * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = format!("{f}");
                out.push_str(&s);
                // Keep floats recognizably floating-point so integral
                // values survive a round trip as floats.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8:
                    // it came from &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        let x: f64 = from_str("2.0").unwrap();
        assert_eq!(x, 2.0);
        let n: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(n, u64::MAX);
    }

    #[test]
    fn float_precision_survives() {
        let vals = [1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5e-7, 123456.789];
        for &v in &vals {
            let s = to_string(&v).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, v, "round trip of {v} via {s}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v: Vec<(u32, String)> = vec![(1, "a\"b".into()), (2, "c\\d\ne".into())];
        let s = to_string(&v).unwrap();
        let back: Vec<(u32, String)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_parseable_and_indented() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert!(s.contains("  "));
        let back: Vec<Vec<u32>> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<u32>("42 trailing").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2,]").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn whitespace_tolerant() {
        let v: Vec<u32> = from_str(" [ 1 , 2 ,\n\t3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
