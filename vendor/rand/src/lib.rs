//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the small slice of `rand` it actually uses: the [`RngCore`] /
//! [`SeedableRng`] / [`Rng`] traits, uniform `gen_range` over integer and
//! float ranges, `gen_bool`, and the `Standard` distribution for `f64`.
//!
//! Algorithms are chosen for statistical quality, not for bit-compatibility
//! with upstream `rand` (nothing in the workspace depends on upstream
//! streams): integers use Lemire's unbiased multiply-shift rejection method,
//! floats use the standard 53-bit mantissa construction, and
//! `seed_from_u64` expands the seed with the same PCG32-based scheme as
//! `rand_core` so different `u64` seeds land on well-separated states.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw 32/64-bit output.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed or a single `u64`.
pub trait SeedableRng: Sized {
    /// The byte-array seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed (PCG32 output function, as in
    /// `rand_core` 0.6) and constructs the generator from it.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    //! The distribution seam `Rng::gen` samples through.

    use super::{Rng, RngCore};

    /// Types that can produce values of `T` from a source of randomness.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution of a type: uniform over its value range
    /// (floats: uniform in `[0, 1)`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits scaled into [0, 1).
            (RngCore::next_u64(rng) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (RngCore::next_u32(rng) >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            RngCore::next_u32(rng) & 1 == 1
        }
    }

    macro_rules! standard_int {
        ($($t:ty => $m:ident),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    RngCore::$m(rng) as $t
                }
            }
        )*};
    }
    standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                  i8 => next_u32, i16 => next_u32, i32 => next_u32,
                  u64 => next_u64, i64 => next_u64, usize => next_u64,
                  isize => next_u64);
}

use distributions::{Distribution, Standard};

/// Uniformly draws one `u32` in `[0, range)` (Lemire's method, unbiased).
fn uniform_u32<R: RngCore + ?Sized>(rng: &mut R, range: u32) -> u32 {
    debug_assert!(range > 0);
    let mut m = rng.next_u32() as u64 * range as u64;
    if (m as u32) < range {
        let threshold = range.wrapping_neg() % range;
        while (m as u32) < threshold {
            m = rng.next_u32() as u64 * range as u64;
        }
    }
    (m >> 32) as u32
}

/// Uniformly draws one `u64` in `[0, range)` (Lemire's method, unbiased).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
    debug_assert!(range > 0);
    let mut m = rng.next_u64() as u128 * range as u128;
    if (m as u64) < range {
        let threshold = range.wrapping_neg() % range;
        while (m as u64) < threshold {
            m = rng.next_u64() as u128 * range as u128;
        }
    }
    (m >> 64) as u64
}

/// Ranges `gen_range` accepts; mirrors `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types `gen_range` can sample uniformly. The `SampleRange` impls below
/// are generic over this trait so the element type is pinned by the range
/// argument itself (keeps type inference working exactly like upstream).
pub trait SampleUniform: Sized + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! int_uniform {
    ($($t:ty : $wide:ty : $sampler:ident),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide);
                lo.wrapping_add($sampler(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide).wrapping_add(1);
                if span == 0 {
                    // Full type range: every bit pattern is fair.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add($sampler(rng, span) as $t)
            }
        }
    )*};
}
int_uniform!(u8: u32: uniform_u32, u16: u32: uniform_u32, u32: u32: uniform_u32,
             i8: u32: uniform_u32, i16: u32: uniform_u32, i32: u32: uniform_u32,
             u64: u64: uniform_u64, i64: u64: uniform_u64,
             usize: u64: uniform_u64, isize: u64: uniform_u64);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                lo + (hi - lo) * unit
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let unit =
                    (rng.next_u64() >> 11) as $t * (1.0 / ((1u64 << 53) - 1) as $t);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
float_uniform!(f32, f64);

/// User-facing convenience methods; blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value via the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Uniformly samples from `range` (half-open or inclusive).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p ∈ [0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must lie in [0, 1], got {p}");
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }

    /// Samples through an explicit distribution object.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Simple generators for tests that do not need a named algorithm.

    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, fast, passes BigCrush; good enough as a stand-in
    /// for `StdRng` in tests.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u8; 8];
            s.copy_from_slice(&seed[..8]);
            StdRng {
                state: u64::from_le_bytes(s),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let a: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&a));
            let b: usize = rng.gen_range(0..5);
            assert!(b < 5);
            let c: i64 = rng.gen_range(-4..=9);
            assert!((-4..=9).contains(&c));
            let d: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            let f = c as f64 / n as f64;
            assert!((f - 0.1).abs() < 0.01, "bucket frequency {f}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.2)).count();
        let f = hits as f64 / n as f64;
        assert!((f - 0.2).abs() < 0.01, "frequency {f}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn seed_from_u64_separates_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
