//! Offline subset of serde used by this workspace.
//!
//! The container has no registry access, so instead of the real
//! serializer-driven serde this crate models serialization through an
//! intermediate [`Value`] tree: [`Serialize`] renders a type *to* a
//! `Value`, [`Deserialize`] rebuilds a type *from* one. The companion
//! `serde_json` crate converts `Value` to/from JSON text. The API surface
//! (trait names, derive macros, `#[serde(transparent)]`) matches what the
//! workspace already uses, so call sites stay untouched.

use std::fmt;
use std::time::Duration;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
///
/// Objects preserve insertion order (they are association lists, not
/// maps) so serialized field order matches declaration order, like real
/// serde_json with `preserve_order`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Integral number. `i128` covers the full `u64`/`i64` range losslessly.
    Int(i128),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object, in order.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object field lookup by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }
}

/// Deserialization failure: what was expected, and where.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// A free-form error.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// "expected X while deserializing Y".
    pub fn expected(what: &str, context: &str) -> Self {
        DeError {
            msg: format!("expected {what} while deserializing {context}"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up and deserializes one named struct field. Called from derived
/// `Deserialize` impls.
pub fn de_field<T: Deserialize>(
    obj: &[(String, Value)],
    name: &str,
    context: &str,
) -> Result<T, DeError> {
    let v = obj
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::expected(&format!("field `{name}`"), context))?;
    T::from_value(v).map_err(|e| DeError::custom(format!("{context}.{name}: {e}")))
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
    )*};
}
ser_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeMap<String, T> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $T:ident),+))*) => {$(
        impl<$($T: Serialize),+> Serialize for ($($T,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::Int(self.as_secs() as i128)),
            ("nanos".to_string(), Value::Int(self.subsec_nanos() as i128)),
        ])
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!(
                            "integer {n} out of range for {}", stringify!($t)))),
                    // Integral floats appear when a float field was written
                    // without a fractional part and re-read as an int field.
                    Value::Float(f) if f.fract() == 0.0 && f.is_finite() => {
                        Ok(*f as $t)
                    }
                    _ => Err(DeError::expected("integer", stringify!($t))),
                }
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            _ => Err(DeError::expected("number", "f64")),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", "Vec")),
        }
    }
}

impl<T: Deserialize> Deserialize for std::collections::BTreeMap<String, T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| {
                    T::from_value(v)
                        .map(|t| (k.clone(), t))
                        .map_err(|e| DeError::custom(format!("BTreeMap[{k}]: {e}")))
                })
                .collect(),
            _ => Err(DeError::expected("object", "BTreeMap")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $T:ident),+))*) => {$(
        impl<$($T: Deserialize),+> Deserialize for ($($T,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($T::from_value(&items[$n])?,)+))
                    }
                    _ => Err(DeError::expected(
                        concat!("array of length ", stringify!($len)),
                        "tuple",
                    )),
                }
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", "Duration"))?;
        let secs: u64 = de_field(obj, "secs", "Duration")?;
        let nanos: u32 = de_field(obj, "nanos", "Duration")?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![(1u32, 2u32), (3, 4)];
        let back: Vec<(u32, u32)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        let opt: Option<u64> = None;
        assert_eq!(opt.to_value(), Value::Null);
        let back: Option<u64> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(back, None);
    }

    #[test]
    fn duration_round_trips() {
        let d = Duration::new(7, 123_456_789);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
    }

    #[test]
    fn int_overflow_is_an_error() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
    }

    #[test]
    fn missing_field_reports_context() {
        let obj = vec![("a".to_string(), Value::Int(1))];
        let err = de_field::<u32>(&obj, "b", "Thing").unwrap_err();
        assert!(err.to_string().contains("`b`"));
        assert!(err.to_string().contains("Thing"));
    }
}
