//! Offline ChaCha8 generator for the vendored `rand` subset.
//!
//! A real ChaCha stream cipher core (IETF layout, 8 rounds) driving the
//! [`rand::RngCore`] interface. Every seeded run in the workspace flows
//! through this type, so the implementation is kept straightforward and
//! deterministic: one 16-word block per refill, 64-bit block counter in
//! words 12–13, zero nonce.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// The ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input state; words 12–13 hold the 64-bit block counter.
    state: [u32; 16],
    /// Output of the current block.
    buf: [u32; 16],
    /// Next unread word in `buf` (16 ⇒ refill).
    idx: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for ((b, &wi), &si) in self.buf.iter_mut().zip(&w).zip(&self.state) {
            *b = wi.wrapping_add(si);
        }
        // Advance the 64-bit block counter.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        // "expand 32-byte k" constants, then the 256-bit key, counter = 0,
        // nonce = 0.
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }

    #[test]
    fn output_is_balanced() {
        // Cheap sanity check on bit balance over 64k words.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut ones = 0u64;
        let n = 65_536u64;
        for _ in 0..n {
            ones += rng.next_u32().count_ones() as u64;
        }
        let frac = ones as f64 / (n as f64 * 32.0);
        assert!((frac - 0.5).abs() < 0.005, "one-bit fraction {frac}");
    }

    #[test]
    fn clone_continues_the_stream_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..5 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..40 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
