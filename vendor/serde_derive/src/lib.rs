//! Offline `#[derive(Serialize, Deserialize)]` for the vendored serde
//! subset.
//!
//! Supports exactly the shapes this workspace uses:
//!
//! * structs with named fields → JSON objects (field order preserved),
//! * newtype structs (and `#[serde(transparent)]`) → the inner value,
//! * enums with unit variants only → the variant name as a string.
//!
//! No `syn`/`quote` in the container, so the input is parsed with a small
//! hand-rolled token walker and the generated impl is assembled as a string
//! (`proc_macro::TokenStream` implements `FromStr`). Generic types are
//! rejected with a compile error rather than silently mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we learned about the deriving type.
enum Shape {
    /// Named-field struct with its field identifiers in declaration order.
    Struct { name: String, fields: Vec<String> },
    /// Tuple struct with one field (newtype / transparent).
    Newtype { name: String },
    /// Enum whose variants are all unit variants.
    UnitEnum { name: String, variants: Vec<String> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Extracts the identifiers naming the fields of a brace-delimited struct
/// body: for every top-level `name : Type` pair, `name` (attributes and
/// visibility modifiers are skipped; generics inside types never reach the
/// top level because `<`/`>` depth is tracked).
fn named_fields(body: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut expecting_name = true;
    let mut pending: Option<String> = None;
    let mut i = 0;
    while i < body.len() {
        match &body[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                expecting_name = true;
                pending = None;
            }
            TokenTree::Punct(p) if p.as_char() == ':' && angle_depth == 0 => {
                // `::` belongs to a path inside a type, a single `:`
                // terminates the field name.
                let double = matches!(body.get(i + 1), Some(TokenTree::Punct(q)) if q.as_char() == ':')
                    || matches!(body.get(i.wrapping_sub(1)), Some(TokenTree::Punct(q)) if q.as_char() == ':');
                if !double {
                    if let Some(name) = pending.take() {
                        fields.push(name);
                    }
                    expecting_name = false;
                }
            }
            TokenTree::Punct(p) if p.as_char() == '#' && expecting_name => {
                // Field attribute: skip the following bracket group.
                if matches!(body.get(i + 1), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) if expecting_name => {
                let s = id.to_string();
                if s != "pub" {
                    pending = Some(s);
                }
            }
            TokenTree::Group(_) if expecting_name => {
                // `pub(crate)` and friends.
            }
            _ => {}
        }
        i += 1;
    }
    fields
}

/// Extracts unit-variant names from a brace-delimited enum body. Returns
/// `None` if any variant carries data.
fn unit_variants(body: &[TokenTree]) -> Option<Vec<String>> {
    let mut variants = Vec::new();
    let mut expecting_name = true;
    let mut i = 0;
    while i < body.len() {
        match &body[i] {
            TokenTree::Punct(p) if p.as_char() == ',' => expecting_name = true,
            TokenTree::Punct(p) if p.as_char() == '#' && expecting_name => {
                if matches!(body.get(i + 1), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) if expecting_name => {
                variants.push(id.to_string());
                expecting_name = false;
            }
            TokenTree::Group(_) => return None, // data-carrying variant
            _ => {}
        }
        i += 1;
    }
    Some(variants)
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility.
    let mut kind: Option<&'static str> = None;
    let mut name = String::new();
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 1, // plus its group below
            TokenTree::Group(_) => {}
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    kind = Some(if s == "struct" { "struct" } else { "enum" });
                    if let Some(TokenTree::Ident(n)) = tokens.get(i + 1) {
                        name = n.to_string();
                    } else {
                        return Err("expected type name".into());
                    }
                    i += 2;
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    let kind = kind.ok_or("expected `struct` or `enum`")?;
    // Reject generics: a `<` before the body group.
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`"
        ));
    }
    // Find the body group (skips `where`-less paths; tuple structs use
    // parentheses).
    for t in &tokens[i..] {
        if let TokenTree::Group(g) = t {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            return match (kind, g.delimiter()) {
                ("struct", Delimiter::Brace) => Ok(Shape::Struct {
                    name,
                    fields: named_fields(&body),
                }),
                ("struct", Delimiter::Parenthesis) => {
                    let commas = body
                        .iter()
                        .filter(
                            |t| matches!(t, TokenTree::Punct(p) if p.as_char() == ','),
                        )
                        .count();
                    if commas > 1 {
                        Err(format!(
                            "vendored serde_derive supports only 1-field tuple structs, `{name}` has more"
                        ))
                    } else {
                        Ok(Shape::Newtype { name })
                    }
                }
                ("enum", Delimiter::Brace) => match unit_variants(&body) {
                    Some(variants) => Ok(Shape::UnitEnum { name, variants }),
                    None => Err(format!(
                        "vendored serde_derive supports only unit-variant enums, `{name}` carries data"
                    )),
                },
                _ => Err("unsupported type shape".into()),
            };
        }
    }
    Err("type body not found".into())
}

/// `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Newtype { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(obj, {f:?}, {name:?})?,\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         let obj = v.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", {name:?}))?;\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Newtype { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                     Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         let s = v.as_str().ok_or_else(|| ::serde::DeError::expected(\"string\", {name:?}))?;\n\
                         match s {{ {arms} _ => Err(::serde::DeError::expected(\"known variant\", {name:?})) }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
