//! Offline micro-benchmark harness exposing the subset of the criterion
//! API this workspace's benches use.
//!
//! Timing is real: each benchmark is warmed up, then measured over
//! `sample_size` samples whose per-iteration means are aggregated into a
//! median. Results are printed human-readably plus one machine-parsable
//! `CRITERION_RESULT` line per benchmark (consumed by
//! `scripts/bench_smoke.sh`). No plots, no statistical regression
//! analysis.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark context.
pub struct Criterion {
    /// Benchmark id filter (substring match) from the command line.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` forwards everything after `--`;
        // cargo itself injects `--bench`. Everything that is not a flag
        // is treated as a substring filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Compatibility no-op: argument handling happens in `default()`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let filter = self.filter.clone();
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
            filter,
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    filter: Option<String>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of measurement samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target per-sample measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.to_string(), |b| f(b));
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.id, |b| f(b, input));
        self
    }

    fn run_one(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&full);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Runs the measured closure.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `f`, recording per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: time single calls until 5 ms or 5 calls.
        let mut calib = Vec::new();
        let warm_start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(f());
            calib.push(t0.elapsed().as_nanos() as f64);
            if calib.len() >= 5 || warm_start.elapsed() > Duration::from_millis(5) {
                break;
            }
        }
        let rough = calib.iter().copied().fold(f64::INFINITY, f64::min).max(1.0);
        // Aim for ~5 ms per sample, capped to keep slow benches bounded.
        let iters = ((5_000_000.0 / rough).ceil() as u64).clamp(1, 1_000_000);
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let per_iter = t0.elapsed().as_nanos() as f64 / iters as f64;
            self.samples_ns.push(per_iter);
        }
    }

    fn report(&self, full_id: &str) {
        if self.samples_ns.is_empty() {
            println!("{full_id:<60} (no measurement)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = sorted[sorted.len() / 2];
        let lo = sorted[0];
        let hi = sorted[sorted.len() - 1];
        println!(
            "{full_id:<60} median {:>12}  [{} .. {}]",
            fmt_ns(median),
            fmt_ns(lo),
            fmt_ns(hi)
        );
        println!(
            "CRITERION_RESULT id={full_id} median_ns={median:.1} min_ns={lo:.1} max_ns={hi:.1} samples={}",
            sorted.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut b = Bencher {
            sample_size: 5,
            samples_ns: Vec::new(),
        };
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert_eq!(b.samples_ns.len(), 5);
        assert!(b.samples_ns.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }

    #[test]
    fn ns_formatting_scales() {
        assert!(fmt_ns(12.0).contains("ns"));
        assert!(fmt_ns(12_000.0).contains("µs"));
        assert!(fmt_ns(12_000_000.0).contains("ms"));
        assert!(fmt_ns(12_000_000_000.0).contains('s'));
    }
}
