//! The [`Recorder`] trait and its zero-cost no-op implementation.

/// A telemetry sink for instrumented code.
///
/// Instrumented functions take `&R` with `R: Recorder` (defaulted to
/// [`NoopRecorder`] wherever a type parameter would otherwise leak into
/// public signatures). The associated constant [`Recorder::ENABLED`] lets
/// hot paths guard *preparation* work — timestamp reads, local counters —
/// with `if R::ENABLED { ... }`, which monomorphization turns into a
/// compile-time branch: with the no-op recorder the whole probe, including
/// the `Instant::now()` calls, is erased.
///
/// Semantics of the four instrument families:
///
/// * **Spans** — monotonic wall-clock phases. Spans nest: a span entered
///   while another is open becomes its child, and its accumulated time is
///   recorded under the `/`-joined path (`"ea/mutate"`). Span methods are
///   only meaningful from one thread at a time; worker threads report via
///   the flat primitives below.
/// * **Phase accumulators** — [`Recorder::phase_add`] adds already-measured
///   seconds under a *flat* name (no nesting), callable from any thread.
/// * **Counters** — monotonically increasing `u64` sums.
/// * **Gauges** — last-write-wins `f64` observations.
/// * **Latency histograms** — fixed-bin log-scaled distributions of
///   durations in seconds (see [`crate::LogHistogram`]).
pub trait Recorder: Sync {
    /// `false` promises every method is a no-op, allowing instrumented code
    /// to skip measurement work entirely.
    const ENABLED: bool;

    /// Opens a nested span named `name` (stack discipline; main thread).
    fn span_enter(&self, name: &'static str);

    /// Closes the innermost span, which must be named `name`.
    fn span_exit(&self, name: &'static str);

    /// Adds `seconds` to the flat phase accumulator `name` (thread-safe).
    fn phase_add(&self, name: &'static str, seconds: f64);

    /// Adds `delta` to counter `name`.
    fn add(&self, name: &'static str, delta: u64);

    /// Sets gauge `name` to `value` (last write wins).
    fn gauge(&self, name: &'static str, value: f64);

    /// Records one duration sample into latency histogram `name`.
    fn latency(&self, name: &'static str, seconds: f64);

    /// Records a point-in-time marker carrying an opaque payload
    /// (batch sizes, decision horizons, sampled heap-pop indices, …).
    ///
    /// Event-stream sinks (the flight recorder) keep each occurrence on
    /// the timeline; aggregating sinks default to counting occurrences
    /// under `name`, and the no-op recorder erases the probe entirely.
    fn event(&self, name: &'static str, value: u64) {
        if Self::ENABLED {
            self.add(name, 1);
        }
        let _ = value;
    }

    /// Opens a *trace* span: like [`Recorder::span_enter`] but scoped to
    /// the calling thread, so worker threads may use it concurrently.
    /// Aggregating sinks whose span stack is single-threaded default to
    /// ignoring trace spans (workers already report busy time through
    /// [`Recorder::phase_add`]); the flight recorder records them on the
    /// calling thread's lane.
    fn trace_enter(&self, name: &'static str) {
        let _ = name;
    }

    /// Closes the calling thread's innermost trace span, which must be
    /// named `name`.
    fn trace_exit(&self, name: &'static str) {
        let _ = name;
    }

    /// RAII guard: enters a thread-local trace span, exits it on drop.
    fn trace_span(&self, name: &'static str) -> TraceSpan<'_, Self>
    where
        Self: Sized,
    {
        TraceSpan::new(self, name)
    }

    /// RAII guard: enters a span, exits it on drop.
    fn span(&self, name: &'static str) -> Span<'_, Self>
    where
        Self: Sized,
    {
        Span::new(self, name)
    }

    /// Runs `f` inside a span named `name`.
    fn time<T>(&self, name: &'static str, f: impl FnOnce() -> T) -> T
    where
        Self: Sized,
    {
        let _guard = self.span(name);
        f()
    }
}

/// RAII span guard returned by [`Recorder::span`].
pub struct Span<'r, R: Recorder> {
    rec: &'r R,
    name: &'static str,
}

impl<'r, R: Recorder> Span<'r, R> {
    fn new(rec: &'r R, name: &'static str) -> Self {
        if R::ENABLED {
            rec.span_enter(name);
        }
        Span { rec, name }
    }
}

impl<R: Recorder> Drop for Span<'_, R> {
    fn drop(&mut self) {
        if R::ENABLED {
            self.rec.span_exit(self.name);
        }
    }
}

/// RAII guard for thread-local trace spans, returned by
/// [`Recorder::trace_span`].
pub struct TraceSpan<'r, R: Recorder> {
    rec: &'r R,
    name: &'static str,
}

impl<'r, R: Recorder> TraceSpan<'r, R> {
    fn new(rec: &'r R, name: &'static str) -> Self {
        if R::ENABLED {
            rec.trace_enter(name);
        }
        TraceSpan { rec, name }
    }
}

impl<R: Recorder> Drop for TraceSpan<'_, R> {
    fn drop(&mut self) {
        if R::ENABLED {
            self.rec.trace_exit(self.name);
        }
    }
}

/// The disabled recorder: every probe compiles to nothing.
///
/// This is the default recorder of every instrumented entry point, so
/// pre-existing call sites pay for telemetry exactly what they paid before
/// it existed (asserted by the `fitness/engine` no-op overhead check in
/// `crates/bench/benches/emts_generation.rs`).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn span_enter(&self, _name: &'static str) {}

    #[inline(always)]
    fn span_exit(&self, _name: &'static str) {}

    #[inline(always)]
    fn phase_add(&self, _name: &'static str, _seconds: f64) {}

    #[inline(always)]
    fn add(&self, _name: &'static str, _delta: u64) {}

    #[inline(always)]
    fn gauge(&self, _name: &'static str, _value: f64) {}

    #[inline(always)]
    fn latency(&self, _name: &'static str, _seconds: f64) {}

    #[inline(always)]
    fn event(&self, _name: &'static str, _value: u64) {}

    #[inline(always)]
    fn trace_enter(&self, _name: &'static str) {}

    #[inline(always)]
    fn trace_exit(&self, _name: &'static str) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    // Compile-time: the disabled recorder must advertise itself as such,
    // or every `if R::ENABLED` probe in the hot paths stays live.
    const _: () = assert!(!NoopRecorder::ENABLED);

    #[test]
    fn noop_is_disabled_and_inert() {
        let rec = NoopRecorder;
        rec.add("c", 1);
        rec.gauge("g", 1.0);
        rec.latency("l", 1.0);
        rec.phase_add("p", 1.0);
        let out = rec.time("span", || 42);
        assert_eq!(out, 42);
    }
}
