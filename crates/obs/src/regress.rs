//! Benchmark regression detection: noise-tolerant diffs of `BENCH_*.json`
//! files against committed baselines.
//!
//! The repo accumulates benchmark artifacts (`BENCH_fitness.json`,
//! `BENCH_throughput.json`, `BENCH_obs.json`, …) whose shapes differ and
//! keep growing, so the comparator is *schema-free*: it walks two JSON
//! trees in parallel, pairs up numeric leaves by dotted path, and decides
//! for each metric which direction is bad from its name — `ns_per_eval`
//! regresses upward, `throughput_ptgs_per_sec` regresses downward, and a
//! `batch_size` is config, not a metric. A metric only fails the gate when
//! it moves in its bad direction by more than the relative tolerance
//! (default ±40%), which is deliberately loose: the gate exists to catch
//! order-of-magnitude breakage (a 10× mapper slowdown, a collapsed cache
//! hit rate) without flagging shared-host jitter, so `emts-report regress
//! A A` and back-to-back runs on one machine must pass. `scripts/ci.sh`
//! holds it to exactly that contract.

use crate::render::fmt_count;
use serde::Value;

/// Which way a metric gets worse, inferred from its name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger is a regression (latencies, drop counts, degradation).
    HigherIsWorse,
    /// Smaller is a regression (throughput, speedups, hit rates).
    LowerIsWorse,
    /// Configuration or identity values; never gate.
    Neutral,
}

/// Canonical direction-token tables. These four constants are the single
/// source of truth for metric-direction inference: [`direction_of`] votes
/// with them, the `emts-lint` artifact cross-checker (`bench-unknown-
/// direction`) consumes them to reject committed benchmark keys no table
/// covers, and `scripts/ci.sh`'s inflation check relies on them through
/// `emts-report regress`. Add a token here — nowhere else — when a
/// benchmark grows a new metric family.
///
/// Badness words win outright (a `drop_rate` is a drop, not a rate), then
/// goodness words, then unit suffixes.
pub const BAD_UP_TOKENS: &[&str] = &[
    "dropped",
    "drops",
    "drop",
    "degradation",
    "overhead",
    "panics",
    "respawns",
    "fallbacks",
    "rejected",
    "misses",
    "overruns",
    "overrun",
    "degraded",
    "killed",
    "stretch",
    "wait",
    "makespan",
    "replans",
    "findings",
    "stale",
    "pops",
];

/// Tokens voting lower-is-worse: throughput, savings and quality rates.
pub const BAD_DOWN_TOKENS: &[&str] = &[
    "throughput",
    "speedup",
    "improvement",
    "rate",
    "hits",
    "reused",
    "reuse",
    "attainment",
    "utilization",
    "skips",
    "skipped",
    "pruned",
];

/// Unit-suffix tokens voting higher-is-worse (costs), consulted last.
pub const BAD_UP_UNIT_TOKENS: &[&str] = &[
    "ns", "us", "ms", "secs", "seconds", "wall", "elapsed", "latency", "bytes", "mem",
];

/// Configuration and identity tokens: values that describe *what ran*
/// (batch sizes, seeds, structural counts), not *how well*. They never
/// gate, and the `bench-unknown-direction` lint accepts them as known.
pub const IDENTITY_TOKENS: &[&str] = &[
    "size",
    "seed",
    "trials",
    "count",
    "counts",
    "version",
    "shards",
    "rounds",
    "jobs",
    "epoch",
    "epochs",
    "scheduled",
    "batch",
    "events",
    "items",
    "tasks",
    "capacity",
    "generations",
    "horizon",
    "workers",
];

fn path_tokens(path: &str) -> Vec<String> {
    path.to_ascii_lowercase()
        .split(['.', '_', '-', '[', ']'])
        .filter(|t| !t.is_empty())
        .map(str::to_string)
        .collect()
}

/// Infers the bad direction for a dotted metric path.
///
/// Tokens from the *whole* path (split on `.`, `_`, `-`) vote in priority
/// order, so `paths_ns_per_eval.serial_scratch` inherits the `ns` of its
/// parent object and `emts10_run_cache.*.hit_rate` reads as a rate even
/// though its leaf name alone says nothing.
pub fn direction_of(path: &str) -> Direction {
    let tokens = path_tokens(path);
    let has = |names: &[&str]| tokens.iter().any(|t| names.contains(&t.as_str()));
    // Badness words win outright: a `drop_rate` is a drop, not a rate.
    if has(BAD_UP_TOKENS) {
        return Direction::HigherIsWorse;
    }
    if path.to_ascii_lowercase().contains("per_sec") || has(BAD_DOWN_TOKENS) {
        return Direction::LowerIsWorse;
    }
    if has(BAD_UP_UNIT_TOKENS) {
        return Direction::HigherIsWorse;
    }
    Direction::Neutral
}

/// True when the path names configuration or identity (an
/// [`IDENTITY_TOKENS`] vote): a numeric leaf that is *expected* to have no
/// regress direction. The `bench-unknown-direction` lint flags numeric
/// leaves that are neither directed nor identity — metrics the regress
/// gate would silently never check.
pub fn is_identity(path: &str) -> bool {
    path_tokens(path)
        .iter()
        .any(|t| IDENTITY_TOKENS.contains(&t.as_str()))
}

/// What happened to one metric between baseline and fresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaKind {
    /// Moved in its bad direction beyond tolerance — gates the exit code.
    Regressed,
    /// Moved in its good direction beyond tolerance.
    Improved,
    /// Within tolerance (or a neutral metric).
    Unchanged,
    /// Present in the baseline, absent (or non-numeric) in the fresh run.
    MissingInFresh,
    /// Absent in the baseline: a new metric, informational.
    NewInBaselineOnlyFresh,
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Dotted path of the numeric leaf (`"paths_ns_per_eval.pooled"`).
    pub path: String,
    /// Baseline value (`NaN` when the metric is new).
    pub baseline: f64,
    /// Fresh value (`NaN` when the metric went missing).
    pub fresh: f64,
    /// Inferred bad direction.
    pub direction: Direction,
    /// Outcome under the tolerance used for the comparison.
    pub kind: DeltaKind,
}

impl Delta {
    /// Signed relative change `(fresh - baseline) / |baseline|`; `0` when
    /// the baseline is zero and nothing moved.
    pub fn rel_change(&self) -> f64 {
        if self.baseline == 0.0 && self.fresh == 0.0 {
            return 0.0;
        }
        if self.baseline == 0.0 {
            return f64::INFINITY.copysign(self.fresh);
        }
        (self.fresh - self.baseline) / self.baseline.abs()
    }
}

fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

fn classify(path: &str, baseline: f64, fresh: f64, tolerance: f64) -> (Direction, DeltaKind) {
    let dir = direction_of(path);
    if dir == Direction::Neutral {
        return (dir, DeltaKind::Unchanged);
    }
    // Relative band around the baseline; a zero baseline can't scale a
    // band, so counts appearing from zero only trip the gate once they
    // are unambiguously non-noise (> 1.0, e.g. drops materializing).
    let (lo, hi) = if baseline == 0.0 {
        (-1.0, 1.0)
    } else {
        let slack = baseline.abs() * tolerance;
        (baseline - slack, baseline + slack)
    };
    let kind = match dir {
        Direction::HigherIsWorse if fresh > hi => DeltaKind::Regressed,
        Direction::HigherIsWorse if fresh < lo => DeltaKind::Improved,
        Direction::LowerIsWorse if fresh < lo => DeltaKind::Regressed,
        Direction::LowerIsWorse if fresh > hi => DeltaKind::Improved,
        _ => DeltaKind::Unchanged,
    };
    (dir, kind)
}

fn join(prefix: &str, key: &str) -> String {
    if prefix.is_empty() {
        key.to_string()
    } else {
        format!("{prefix}.{key}")
    }
}

fn walk(prefix: &str, baseline: &Value, fresh: &Value, tolerance: f64, out: &mut Vec<Delta>) {
    match (baseline, fresh) {
        (Value::Object(b), Value::Object(f)) => {
            for (key, bv) in b {
                let path = join(prefix, key);
                match f.iter().find(|(k, _)| k == key) {
                    Some((_, fv)) => walk(&path, bv, fv, tolerance, out),
                    None => {
                        if let Some(bnum) = numeric(bv) {
                            out.push(Delta {
                                direction: direction_of(&path),
                                path,
                                baseline: bnum,
                                fresh: f64::NAN,
                                kind: DeltaKind::MissingInFresh,
                            });
                        }
                    }
                }
            }
            for (key, fv) in f {
                if b.iter().any(|(k, _)| k == key) {
                    continue;
                }
                if let Some(fnum) = numeric(fv) {
                    let path = join(prefix, key);
                    out.push(Delta {
                        direction: direction_of(&path),
                        path,
                        baseline: f64::NAN,
                        fresh: fnum,
                        kind: DeltaKind::NewInBaselineOnlyFresh,
                    });
                }
            }
        }
        (Value::Array(b), Value::Array(f)) => {
            for (i, (bv, fv)) in b.iter().zip(f).enumerate() {
                walk(&format!("{prefix}[{i}]"), bv, fv, tolerance, out);
            }
        }
        _ => {
            if let (Some(b), Some(f)) = (numeric(baseline), numeric(fresh)) {
                let (direction, kind) = classify(prefix, b, f, tolerance);
                out.push(Delta {
                    path: prefix.to_string(),
                    baseline: b,
                    fresh: f,
                    direction,
                    kind,
                });
            } else {
                // Type changed (object/number ↔ string/null/…): a `null`
                // mapper probe from an incomplete run must not fail the
                // gate, but every numeric leaf it had is noted as missing.
                collect_missing(prefix, baseline, out);
            }
        }
    }
}

/// Records every numeric leaf under `v` as [`DeltaKind::MissingInFresh`].
fn collect_missing(prefix: &str, v: &Value, out: &mut Vec<Delta>) {
    match v {
        Value::Object(fields) => {
            for (key, inner) in fields {
                collect_missing(&join(prefix, key), inner, out);
            }
        }
        Value::Array(items) => {
            for (i, inner) in items.iter().enumerate() {
                collect_missing(&format!("{prefix}[{i}]"), inner, out);
            }
        }
        _ => {
            if let Some(b) = numeric(v) {
                out.push(Delta {
                    direction: direction_of(prefix),
                    path: prefix.to_string(),
                    baseline: b,
                    fresh: f64::NAN,
                    kind: DeltaKind::MissingInFresh,
                });
            }
        }
    }
}

/// Compares every numeric leaf of `fresh` against `baseline`.
///
/// `tolerance` is the relative half-width of the pass band (`0.4` = a
/// metric may move ±40% in its bad direction before it counts as a
/// regression). Identical inputs always produce zero regressions.
pub fn compare(baseline: &Value, fresh: &Value, tolerance: f64) -> Vec<Delta> {
    let mut out = Vec::new();
    walk("", baseline, fresh, tolerance, &mut out);
    out
}

/// Renders a comparison as a stable plain-text table; regressions first.
pub fn render(deltas: &[Delta], tolerance: f64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let regressions: Vec<&Delta> = deltas
        .iter()
        .filter(|d| d.kind == DeltaKind::Regressed)
        .collect();
    let improved = deltas
        .iter()
        .filter(|d| d.kind == DeltaKind::Improved)
        .count();
    let missing: Vec<&Delta> = deltas
        .iter()
        .filter(|d| d.kind == DeltaKind::MissingInFresh)
        .collect();
    let compared = deltas
        .iter()
        .filter(|d| {
            matches!(
                d.kind,
                DeltaKind::Regressed | DeltaKind::Improved | DeltaKind::Unchanged
            )
        })
        .count();
    for d in &regressions {
        let _ = writeln!(
            out,
            "REGRESSION {}: {} -> {} ({:+.1}%, {} is worse, tolerance ±{:.0}%)",
            d.path,
            fmt_count(d.baseline),
            fmt_count(d.fresh),
            d.rel_change() * 100.0,
            match d.direction {
                Direction::HigherIsWorse => "higher",
                Direction::LowerIsWorse => "lower",
                Direction::Neutral => "neither",
            },
            tolerance * 100.0
        );
    }
    for d in &missing {
        let _ = writeln!(
            out,
            "note: {} ({}) missing from fresh run",
            d.path,
            fmt_count(d.baseline)
        );
    }
    let _ = writeln!(
        out,
        "{} metrics compared: {} regressed, {} improved, {} within ±{:.0}%",
        compared,
        regressions.len(),
        improved,
        compared - regressions.len() - improved,
        tolerance * 100.0
    );
    out
}

/// True when any compared metric regressed (the CI gate condition).
pub fn has_regression(deltas: &[Delta]) -> bool {
    deltas.iter().any(|d| d.kind == DeltaKind::Regressed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Value {
        serde_json::parse(s).expect("test JSON parses")
    }

    #[test]
    fn identical_inputs_never_self_flag() {
        let v = parse(
            r#"{"paths_ns_per_eval": {"pooled": 6000.2, "serial_scratch": 5498.0},
                "speedup_vs_prepr_baseline": 54.9,
                "throughput_ptgs_per_sec": 7913.0,
                "batch_size": 25,
                "robust_p95_degradation": {"fft16": 1.8}}"#,
        );
        let deltas = compare(&v, &v, 0.4);
        assert!(!has_regression(&deltas));
        assert!(deltas.iter().all(|d| d.kind == DeltaKind::Unchanged));
    }

    #[test]
    fn latency_regresses_upward_and_throughput_downward() {
        let base = parse(r#"{"ns_per_eval": 100.0, "throughput_ptgs_per_sec": 1000.0}"#);
        let slow = parse(r#"{"ns_per_eval": 1000.0, "throughput_ptgs_per_sec": 100.0}"#);
        let deltas = compare(&base, &slow, 0.4);
        assert_eq!(
            deltas
                .iter()
                .filter(|d| d.kind == DeltaKind::Regressed)
                .count(),
            2
        );
        // The same move in the other direction is an improvement.
        let deltas = compare(&slow, &base, 0.4);
        assert!(!has_regression(&deltas));
        assert_eq!(
            deltas
                .iter()
                .filter(|d| d.kind == DeltaKind::Improved)
                .count(),
            2
        );
    }

    #[test]
    fn moves_within_tolerance_pass() {
        let base = parse(r#"{"ns_per_eval": 100.0}"#);
        let near = parse(r#"{"ns_per_eval": 130.0}"#);
        assert!(!has_regression(&compare(&base, &near, 0.4)));
        assert!(has_regression(&compare(&base, &near, 0.2)));
    }

    #[test]
    fn neutral_config_values_never_gate() {
        let base = parse(r#"{"batch_size": 25, "seed": 2011, "trials": 20}"#);
        let other = parse(r#"{"batch_size": 100, "seed": 1, "trials": 5}"#);
        assert!(!has_regression(&compare(&base, &other, 0.4)));
    }

    #[test]
    fn direction_inference_reads_the_whole_path() {
        assert_eq!(
            direction_of("paths_ns_per_eval.serial_scratch"),
            Direction::HigherIsWorse
        );
        assert_eq!(
            direction_of("emts10_run_cache.chti_n20.hit_rate"),
            Direction::LowerIsWorse
        );
        assert_eq!(
            direction_of("drop_rate_at_capacity"),
            Direction::HigherIsWorse,
            "a drop rate is a drop count, not a hit rate"
        );
        assert_eq!(
            direction_of("robust_p95_degradation.fft16"),
            Direction::HigherIsWorse
        );
        assert_eq!(direction_of("events_per_sec"), Direction::LowerIsWorse);
        assert_eq!(direction_of("tasks_scheduled"), Direction::Neutral);
    }

    #[test]
    fn online_metric_names_infer_their_bad_direction() {
        for worse_up in [
            "rolling.queue_wait_mean",
            "rolling.stretch_p95",
            "reactive.makespan",
            "rolling.deadline_overruns",
            "rolling.watchdog_degraded",
            "reactive.tasks_killed",
        ] {
            assert_eq!(
                direction_of(worse_up),
                Direction::HigherIsWorse,
                "{worse_up}"
            );
        }
        for worse_down in ["rolling.slo_attainment", "reactive.utilization"] {
            assert_eq!(
                direction_of(worse_down),
                Direction::LowerIsWorse,
                "{worse_down}"
            );
        }
    }

    #[test]
    fn null_probe_is_a_note_not_a_regression() {
        let base = parse(r#"{"mapper_probe": {"ns_per_eval": 3592.0}}"#);
        let fresh = parse(r#"{"mapper_probe": null}"#);
        let deltas = compare(&base, &fresh, 0.4);
        assert!(!has_regression(&deltas));
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].kind, DeltaKind::MissingInFresh);
    }

    #[test]
    fn zero_baseline_counts_need_a_real_move_to_gate() {
        let base = parse(r#"{"dropped": 0}"#);
        assert!(!has_regression(&compare(
            &base,
            &parse(r#"{"dropped": 0.5}"#),
            0.4
        )));
        assert!(has_regression(&compare(
            &base,
            &parse(r#"{"dropped": 2}"#),
            0.4
        )));
    }

    #[test]
    fn render_names_the_offender() {
        let base = parse(r#"{"ns_per_eval": 100.0}"#);
        let slow = parse(r#"{"ns_per_eval": 1000.0}"#);
        let deltas = compare(&base, &slow, 0.4);
        let text = render(&deltas, 0.4);
        assert!(text.contains("REGRESSION ns_per_eval"), "{text}");
        assert!(text.contains("+900.0%"), "{text}");
    }
}
