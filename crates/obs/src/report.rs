//! Schema-versioned run reports.

use crate::hist::LogHistogram;
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Version of the [`RunReport`] JSON layout. Bump on any incompatible
/// change; [`RunReport::from_json`] rejects mismatches outright rather than
/// guessing at migrations.
///
/// v2: the embedded convergence trace carries the two-tier fitness
/// pipeline's surrogate series (`surrogate_evals`, `exact_skipped`,
/// `ambiguous_fallbacks`, `surrogate_interval_width`), which the
/// `emts-report surrogate` view requires; v1 reports predate the
/// pipeline and are rejected with a [`ReportError::SchemaMismatch`].
pub const SCHEMA_VERSION: u32 = 2;

/// Accumulated wall time of one named phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseStat {
    /// Total seconds across all entries of the phase.
    pub seconds: f64,
    /// How many times the phase ran.
    pub count: u64,
}

/// One run's complete telemetry: phase timings, counters, gauges, latency
/// histograms, and (for EA runs) the per-generation convergence trace.
///
/// Produced by [`crate::StatsRecorder::report`], written as JSON by the
/// `--report <path>` flag of `emts-sim` and the bench binaries, and
/// consumed by the `emts-report` CLI. Nested span timings appear in
/// `phases` under `/`-joined paths (`"ea/evaluate"`); flat accumulators
/// (worker busy time, batch dispatch/drain) appear under plain names.
///
/// `convergence` carries the EA's `ConvergenceTrace` as a raw JSON value:
/// `obs` sits below `emts` in the crate graph, so it stores the trace
/// opaquely instead of depending on the concrete type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Always [`SCHEMA_VERSION`] for reports written by this build.
    pub schema_version: u32,
    /// The producing binary (`"emts-sim"`, `"fig4"`, ...).
    pub source: String,
    /// Free-form run context: workload, platform, seed, configuration.
    pub meta: BTreeMap<String, String>,
    /// Wall-clock seconds from recorder creation to snapshot.
    pub wall_seconds: f64,
    /// Phase timings keyed by span path or flat phase name.
    pub phases: BTreeMap<String, PhaseStat>,
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins observations.
    pub gauges: BTreeMap<String, f64>,
    /// Latency distributions.
    pub histograms: BTreeMap<String, LogHistogram>,
    /// The EA's convergence trace, if the run produced one.
    pub convergence: Option<Value>,
}

/// Why a report failed to load.
#[derive(Debug)]
pub enum ReportError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The JSON text did not parse, or parsed into the wrong shape.
    Parse(String),
    /// The report is from an incompatible schema version.
    SchemaMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::Io(e) => write!(f, "report I/O error: {e}"),
            ReportError::Parse(e) => write!(f, "malformed report: {e}"),
            ReportError::SchemaMismatch { found, expected } => write!(
                f,
                "report schema version {found} is not supported (this build reads {expected})"
            ),
        }
    }
}

impl std::error::Error for ReportError {}

impl From<std::io::Error> for ReportError {
    fn from(e: std::io::Error) -> Self {
        ReportError::Io(e)
    }
}

impl RunReport {
    /// An empty report at the current schema version.
    pub fn new(source: &str) -> Self {
        RunReport {
            schema_version: SCHEMA_VERSION,
            source: source.to_string(),
            meta: BTreeMap::new(),
            wall_seconds: 0.0,
            phases: BTreeMap::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            convergence: None,
        }
    }

    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }

    /// Parses a report, rejecting unknown schema versions before looking at
    /// anything else.
    pub fn from_json(text: &str) -> Result<Self, ReportError> {
        let value = serde_json::parse(text).map_err(|e| ReportError::Parse(e.to_string()))?;
        let version = value
            .get("schema_version")
            .ok_or_else(|| ReportError::Parse("missing `schema_version`".into()))?;
        let found = u32::from_value(version)
            .map_err(|e| ReportError::Parse(format!("schema_version: {e}")))?;
        if found != SCHEMA_VERSION {
            return Err(ReportError::SchemaMismatch {
                found,
                expected: SCHEMA_VERSION,
            });
        }
        RunReport::from_value(&value).map_err(|e| ReportError::Parse(e.to_string()))
    }

    /// Peeks at a report's declared `schema_version` without validating
    /// the rest, so callers comparing two reports can name *both* versions
    /// in one error instead of failing on whichever file loads first.
    pub fn schema_version_of(text: &str) -> Option<u32> {
        let value = serde_json::parse(text).ok()?;
        u32::from_value(value.get("schema_version")?).ok()
    }

    /// Writes the report as pretty JSON, creating parent directories.
    pub fn save(&self, path: &Path) -> Result<(), ReportError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json() + "\n")?;
        Ok(())
    }

    /// Loads and validates a report from disk.
    pub fn load(path: &Path) -> Result<Self, ReportError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }

    /// Fraction of fitness lookups served by the memo cache, if the run
    /// recorded the `emts.cache.*` counters.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let hits = *self.counters.get("emts.cache.hits")?;
        let misses = *self.counters.get("emts.cache.misses")?;
        let total = hits + misses;
        (total > 0).then(|| hits as f64 / total as f64)
    }

    /// The run's best makespan, if recorded.
    pub fn best_makespan(&self) -> Option<f64> {
        self.gauges.get("emts.best_makespan").copied()
    }

    /// Total seconds of the *direct* children of span path `parent` (e.g.
    /// `children_seconds("ea")` sums `ea/seed`, `ea/mutate`, ... but not
    /// `ea/evaluate/pool`).
    pub fn children_seconds(&self, parent: &str) -> f64 {
        let prefix = format!("{parent}/");
        self.phases
            .iter()
            .filter(|(k, _)| {
                k.strip_prefix(&prefix)
                    .is_some_and(|rest| !rest.contains('/'))
            })
            .map(|(_, p)| p.seconds)
            .sum()
    }

    /// The phase stat at span path `path`, if recorded. Also matches a path
    /// *suffix* when unambiguous-by-construction lookups are inconvenient
    /// (reports produced under an extra outer span, e.g. `allocate/ea`
    /// found via `ea`).
    pub fn phase(&self, path: &str) -> Option<&PhaseStat> {
        self.phases.get(path).or_else(|| {
            let suffix = format!("/{path}");
            let mut matches = self.phases.iter().filter(|(k, _)| k.ends_with(&suffix));
            let first = matches.next()?;
            matches.next().is_none().then_some(first.1)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        let mut r = RunReport::new("unit-test");
        r.wall_seconds = 1.5;
        r.meta.insert("workload".into(), "fft8".into());
        r.phases.insert(
            "ea".into(),
            PhaseStat {
                seconds: 1.4,
                count: 1,
            },
        );
        r.phases.insert(
            "ea/evaluate".into(),
            PhaseStat {
                seconds: 1.0,
                count: 10,
            },
        );
        r.phases.insert(
            "ea/evaluate/deep".into(),
            PhaseStat {
                seconds: 0.7,
                count: 10,
            },
        );
        r.phases.insert(
            "ea/mutate".into(),
            PhaseStat {
                seconds: 0.3,
                count: 10,
            },
        );
        r.counters.insert("emts.cache.hits".into(), 30);
        r.counters.insert("emts.cache.misses".into(), 10);
        r.gauges.insert("emts.best_makespan".into(), 12.25);
        let mut h = LogHistogram::latency_default();
        h.record(3e-5);
        h.record(9e-5);
        r.histograms.insert("pool.eval_seconds".into(), h);
        r.convergence = Some(Value::Array(vec![Value::Int(1), Value::Int(2)]));
        r
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let report = sample();
        let restored = RunReport::from_json(&report.to_json()).expect("round trip");
        assert_eq!(report, restored);
    }

    #[test]
    fn save_and_load_via_disk() {
        let report = sample();
        let dir = std::env::temp_dir().join("obs-report-test");
        let path = dir.join("nested/run.json");
        report.save(&path).expect("save");
        let restored = RunReport::load(&path).expect("load");
        assert_eq!(report, restored);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let mut report = sample();
        report.schema_version = SCHEMA_VERSION + 1;
        match RunReport::from_json(&report.to_json()) {
            Err(ReportError::SchemaMismatch { found, expected }) => {
                assert_eq!(found, SCHEMA_VERSION + 1);
                assert_eq!(expected, SCHEMA_VERSION);
            }
            other => panic!("expected schema mismatch, got {other:?}"),
        }
    }

    #[test]
    fn missing_version_and_garbage_are_parse_errors() {
        assert!(matches!(
            RunReport::from_json("{}"),
            Err(ReportError::Parse(_))
        ));
        assert!(matches!(
            RunReport::from_json("not json"),
            Err(ReportError::Parse(_))
        ));
    }

    #[test]
    fn derived_quantities() {
        let report = sample();
        assert_eq!(report.cache_hit_rate(), Some(0.75));
        assert_eq!(report.best_makespan(), Some(12.25));
        // Direct children only: evaluate + mutate, not evaluate/deep.
        assert!((report.children_seconds("ea") - 1.3).abs() < 1e-12);
        assert_eq!(report.phase("ea").unwrap().count, 1);
        assert_eq!(report.phase("evaluate").unwrap().count, 10);
        assert_eq!(report.phase("mutate").unwrap().seconds, 0.3);
        assert!(report.phase("nonexistent").is_none());
    }
}
