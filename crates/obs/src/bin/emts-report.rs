//! `emts-report`: inspect and diff the JSON run reports written by
//! `emts-sim --report` and the bench binaries.
//!
//! ```text
//! emts-report show run.json          # pretty-print one report
//! emts-report show --json run.json   # re-emit normalized JSON
//! emts-report diff a.json b.json     # per-phase / cache / makespan deltas
//! ```

use obs::render::{render_diff, render_report};
use obs::RunReport;
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "usage:
  emts-report show [--json] <report.json>
  emts-report diff <a.json> <b.json>";

fn load(path: &str) -> Result<RunReport, String> {
    RunReport::load(Path::new(path)).map_err(|e| format!("{path}: {e}"))
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("show") => {
            let mut json = false;
            let mut paths = Vec::new();
            for a in &args[1..] {
                match a.as_str() {
                    "--json" => json = true,
                    flag if flag.starts_with("--") => {
                        return Err(format!("unknown flag {flag}\n{USAGE}"));
                    }
                    path => paths.push(path),
                }
            }
            let [path] = paths[..] else {
                return Err(format!("`show` takes exactly one report\n{USAGE}"));
            };
            let report = load(path)?;
            if json {
                println!("{}", report.to_json());
            } else {
                print!("{}", render_report(&report));
            }
            Ok(())
        }
        Some("diff") => {
            let [a, b] = &args[1..] else {
                return Err(format!("`diff` takes exactly two reports\n{USAGE}"));
            };
            let a = load(a)?;
            let b = load(b)?;
            print!("{}", render_diff(&a, &b));
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
        None => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
