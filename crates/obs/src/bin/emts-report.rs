//! `emts-report`: inspect, diff, and gate the JSON artifacts written by
//! `emts-sim --report` and the bench binaries.
//!
//! ```text
//! emts-report show run.json            # pretty-print one report
//! emts-report show --json run.json     # re-emit normalized JSON
//! emts-report diff a.json b.json       # per-phase / cache / makespan deltas
//! emts-report timeline run.json        # per-generation series table
//! emts-report surrogate run.json       # two-tier screening rates per generation
//! emts-report flame run.json           # self-time table over the span tree
//! emts-report regress base.json fresh.json [--tolerance 40]
//!                                      # noise-tolerant benchmark gate
//! ```
//!
//! Exit codes: `0` success, `1` regression detected by `regress`, `2`
//! usage or input errors.

use obs::regress;
use obs::render::{render_diff, render_flame, render_report, render_surrogate, render_timeline};
use obs::RunReport;
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "usage:
  emts-report show [--json] <report.json>
  emts-report diff <a.json> <b.json>
  emts-report timeline <report.json>
  emts-report surrogate <report.json>
  emts-report flame <report.json>
  emts-report regress <baseline.json> <fresh.json> [--tolerance <pct>]";

fn load(path: &str) -> Result<RunReport, String> {
    RunReport::load(Path::new(path)).map_err(|e| format!("{path}: {e}"))
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

/// Parses any JSON file (reports or free-form `BENCH_*.json`).
fn load_value(path: &str) -> Result<serde::Value, String> {
    serde_json::parse(&read(path)?).map_err(|e| format!("{path}: {e}"))
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("show") => {
            let mut json = false;
            let mut paths = Vec::new();
            for a in &args[1..] {
                match a.as_str() {
                    "--json" => json = true,
                    flag if flag.starts_with("--") => {
                        return Err(format!("unknown flag {flag}\n{USAGE}"));
                    }
                    path => paths.push(path),
                }
            }
            let [path] = paths[..] else {
                return Err(format!("`show` takes exactly one report\n{USAGE}"));
            };
            let report = load(path)?;
            if json {
                println!("{}", report.to_json());
            } else {
                print!("{}", render_report(&report));
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("diff") => {
            let [a_path, b_path] = &args[1..] else {
                return Err(format!("`diff` takes exactly two reports\n{USAGE}"));
            };
            // Peek at both declared versions first: when the two files
            // disagree, name both in one line instead of surfacing a parse
            // error for whichever side loads first.
            let (a_text, b_text) = (read(a_path)?, read(b_path)?);
            let (va, vb) = (
                RunReport::schema_version_of(&a_text),
                RunReport::schema_version_of(&b_text),
            );
            if let (Some(va), Some(vb)) = (va, vb) {
                if va != vb {
                    return Err(format!(
                        "schema mismatch: {a_path} is schema v{va}, {b_path} is schema v{vb}"
                    ));
                }
            }
            let a = RunReport::from_json(&a_text).map_err(|e| format!("{a_path}: {e}"))?;
            let b = RunReport::from_json(&b_text).map_err(|e| format!("{b_path}: {e}"))?;
            print!("{}", render_diff(&a, &b));
            Ok(ExitCode::SUCCESS)
        }
        Some("timeline") => {
            let [path] = &args[1..] else {
                return Err(format!("`timeline` takes exactly one report\n{USAGE}"));
            };
            print!("{}", render_timeline(&load(path)?));
            Ok(ExitCode::SUCCESS)
        }
        Some("surrogate") => {
            // Reports from before the v2 schema bump lack the surrogate
            // series entirely; `load` rejects them with the one-line typed
            // `SchemaMismatch` error instead of rendering an empty table.
            let [path] = &args[1..] else {
                return Err(format!("`surrogate` takes exactly one report\n{USAGE}"));
            };
            print!("{}", render_surrogate(&load(path)?));
            Ok(ExitCode::SUCCESS)
        }
        Some("flame") => {
            let [path] = &args[1..] else {
                return Err(format!("`flame` takes exactly one report\n{USAGE}"));
            };
            print!("{}", render_flame(&load(path)?));
            Ok(ExitCode::SUCCESS)
        }
        Some("regress") => {
            let mut tolerance = 0.40;
            let mut paths = Vec::new();
            let mut iter = args[1..].iter();
            while let Some(a) = iter.next() {
                match a.as_str() {
                    "--tolerance" => {
                        let v = iter
                            .next()
                            .ok_or_else(|| format!("--tolerance needs a percentage\n{USAGE}"))?;
                        let pct: f64 = v
                            .parse()
                            .map_err(|_| format!("bad --tolerance value {v:?}"))?;
                        if !(pct > 0.0 && pct.is_finite()) {
                            return Err(format!(
                                "--tolerance must be a positive percentage, got {v}"
                            ));
                        }
                        tolerance = pct / 100.0;
                    }
                    flag if flag.starts_with("--") => {
                        return Err(format!("unknown flag {flag}\n{USAGE}"));
                    }
                    path => paths.push(path.to_string()),
                }
            }
            let [baseline_path, fresh_path] = &paths[..] else {
                return Err(format!(
                    "`regress` takes a baseline and a fresh file\n{USAGE}"
                ));
            };
            let baseline = load_value(baseline_path)?;
            let fresh = load_value(fresh_path)?;
            let deltas = regress::compare(&baseline, &fresh, tolerance);
            print!("{}", regress::render(&deltas, tolerance));
            if regress::has_regression(&deltas) {
                println!("FAIL: {fresh_path} regressed against {baseline_path}");
                Ok(ExitCode::FAILURE)
            } else {
                println!("OK: {fresh_path} within tolerance of {baseline_path}");
                Ok(ExitCode::SUCCESS)
            }
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
        None => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
