//! Fixed-bin log-scaled histograms for latency distributions.

use serde::{Deserialize, Serialize};

/// A histogram over geometrically spaced bins.
///
/// Latencies in this workspace span seven orders of magnitude (a memoized
/// fitness hit is ~100 ns, a full EMTS10 run is seconds), so bins are
/// spaced by a constant *ratio* rather than a constant width. Boundaries
/// are precomputed at construction and bin lookup is a binary search over
/// them, which makes the two invariants the property tests check true by
/// construction: boundaries are strictly increasing, and every sample lands
/// in exactly one bin (out-of-range samples clamp to the edge bins).
///
/// All stored values are finite, so a histogram survives the JSON
/// round-trip bit-for-bit (the vendored `serde_json` writes non-finite
/// floats as `null`). Non-finite samples are counted into `total` via the
/// edge bins but never contaminate `sum`/`min`/`max`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Bin boundaries, strictly increasing, `len() == bins + 1`: bin `i`
    /// covers `[bounds[i], bounds[i+1])`, with the edge bins absorbing
    /// anything outside `[bounds[0], bounds[last])`.
    bounds: Vec<f64>,
    /// Sample count per bin, `len() == bins`.
    counts: Vec<u64>,
    /// Total samples recorded.
    total: u64,
    /// Samples that were finite (the only ones `sum`/`min`/`max` cover).
    finite: u64,
    /// Sum of all finite samples (seconds).
    sum: f64,
    /// Smallest finite sample, `0.0` until one is recorded.
    min: f64,
    /// Largest finite sample, `0.0` until one is recorded.
    max: f64,
}

impl LogHistogram {
    /// A histogram with `bins` geometric bins covering `[lo, hi)`.
    ///
    /// Panics unless `0 < lo < hi` and `bins ≥ 1`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi, got [{lo}, {hi})");
        assert!(bins >= 1, "need at least one bin");
        let ratio = (hi / lo).powf(1.0 / bins as f64);
        let mut bounds = Vec::with_capacity(bins + 1);
        for i in 0..=bins {
            bounds.push(lo * ratio.powi(i as i32));
        }
        // powi rounding must not break strict monotonicity or the exact hi
        // endpoint; pin the last bound and verify.
        bounds[bins] = hi;
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "degenerate bin layout for [{lo}, {hi}) / {bins}"
        );
        LogHistogram {
            bounds,
            counts: vec![0; bins],
            total: 0,
            finite: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
        }
    }

    /// The default latency layout: 10 ns .. 1000 s, 8 bins per decade.
    pub fn latency_default() -> Self {
        Self::new(1e-8, 1e3, 88)
    }

    /// The bin index `sample` falls into (edge bins absorb out-of-range and
    /// non-finite samples).
    pub fn bin_of(&self, sample: f64) -> usize {
        let bins = self.counts.len();
        if sample.is_nan() || sample < self.bounds[0] {
            return 0;
        }
        if sample >= self.bounds[bins] {
            return bins - 1;
        }
        // First boundary strictly greater than the sample starts the next
        // bin, so the sample's bin is one to the left.
        self.bounds.partition_point(|b| *b <= sample) - 1
    }

    /// Records one sample (seconds).
    pub fn record(&mut self, sample: f64) {
        let bin = self.bin_of(sample);
        self.counts[bin] += 1;
        self.total += 1;
        if sample.is_finite() {
            self.finite += 1;
            self.sum += sample;
            if self.finite == 1 || sample < self.min {
                self.min = sample;
            }
            if self.finite == 1 || sample > self.max {
                self.max = sample;
            }
        }
    }

    /// Folds another histogram with the *same layout* into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.bounds, other.bounds, "incompatible histogram layouts");
        if other.total == 0 {
            return;
        }
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        if other.finite > 0 {
            if self.finite == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.total += other.total;
        self.finite += other.finite;
        self.sum += other.sum;
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of the finite samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.finite == 0 {
            0.0
        } else {
            self.sum / self.finite as f64
        }
    }

    /// Sum of the finite samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest finite sample (0 when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest finite sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Upper bound of the bin where the cumulative count first reaches
    /// `q * total` — a conservative quantile estimate (0 when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.bounds[i + 1];
            }
        }
        self.bounds[self.counts.len()]
    }

    /// Bin boundaries (`bins + 1` entries, strictly increasing).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bin sample counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// `(low, high, count)` for each non-empty bin.
    pub fn nonzero_bins(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (self.bounds[i], self.bounds[i + 1], *c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_covering_bins() {
        let mut h = LogHistogram::new(1e-6, 1.0, 12);
        for s in [1e-6, 3e-5, 0.02, 0.999999] {
            let bin = h.bin_of(s);
            assert!(h.bounds()[bin] <= s && s < h.bounds()[bin + 1], "{s}");
            h.record(s);
        }
        assert_eq!(h.total(), 4);
        assert_eq!(h.counts().iter().sum::<u64>(), 4);
    }

    #[test]
    fn out_of_range_clamps_to_edges() {
        let mut h = LogHistogram::new(1e-3, 1.0, 4);
        h.record(1e-9);
        h.record(50.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.counts()[0], 2); // 1e-9 and NaN
        assert_eq!(h.counts()[3], 2); // 50.0 and +inf
        assert_eq!(h.total(), 4);
        // Non-finite samples never reach the finite summary stats.
        assert!(h.sum().is_finite() && h.max() == 50.0);
    }

    #[test]
    fn summary_stats_track_finite_samples() {
        let mut h = LogHistogram::latency_default();
        assert_eq!((h.mean(), h.min(), h.max()), (0.0, 0.0, 0.0));
        h.record(2e-3);
        h.record(4e-3);
        assert!((h.mean() - 3e-3).abs() < 1e-12);
        assert_eq!(h.min(), 2e-3);
        assert_eq!(h.max(), 4e-3);
    }

    #[test]
    fn quantile_is_monotone_and_bounded() {
        let mut h = LogHistogram::new(1e-6, 1.0, 24);
        for i in 1..=1000 {
            h.record(i as f64 * 1e-6);
        }
        let q50 = h.quantile(0.5);
        let q99 = h.quantile(0.99);
        assert!(q50 <= q99);
        assert!((4e-4..=7e-4).contains(&q50), "median bin bound {q50}");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LogHistogram::new(1e-6, 1.0, 8);
        let mut b = LogHistogram::new(1e-6, 1.0, 8);
        a.record(1e-4);
        b.record(1e-2);
        b.record(1e-5);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.min(), 1e-5);
        assert_eq!(a.max(), 1e-2);
    }
}
