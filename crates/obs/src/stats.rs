//! The recording [`Recorder`] implementation.

use crate::hist::LogHistogram;
use crate::recorder::Recorder;
use crate::report::{PhaseStat, RunReport};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Aggregating recorder: spans, counters, gauges and histograms behind one
/// mutex.
///
/// The EA calls the recorder once per *phase* (a generation's mutate /
/// evaluate / select step, a drained batch, a finished evaluation), never
/// per heap operation — hot loops accumulate locally and flush once — so a
/// single uncontended mutex is far cheaper than sharded atomics here and
/// keeps the whole recorder trivially consistent for snapshotting.
///
/// Span nesting uses a stack, so `span_enter`/`span_exit` must come from
/// one thread at a time (in practice: the main thread). Worker threads
/// report through the flat primitives (`add`, `gauge`, `latency`,
/// `phase_add`), which are safe from anywhere.
pub struct StatsRecorder {
    started: Instant,
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    /// Open spans, innermost last; each holds its full `/`-joined path.
    stack: Vec<OpenSpan>,
    phases: BTreeMap<String, PhaseStat>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LogHistogram>,
}

struct OpenSpan {
    path: String,
    entered: Instant,
}

impl StatsRecorder {
    /// Locks the aggregate state, recovering from a poisoned lock.
    ///
    /// Every critical section below performs a handful of map updates that
    /// never panic halfway through a logically-coupled pair, so a poison
    /// flag (left by an instrumented thread that panicked for unrelated
    /// reasons, e.g. a contained worker-pool panic) carries no torn data.
    /// Telemetry must outlive such failures — it is how they get reported.
    fn locked(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A fresh recorder; wall time counts from this moment.
    pub fn new() -> Self {
        StatsRecorder {
            started: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Seconds since the recorder was created.
    pub fn wall_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Snapshots everything recorded so far into a [`RunReport`].
    ///
    /// Open spans contribute nothing until exited, so snapshot after the
    /// instrumented work completes. `source` names the producing binary.
    pub fn report(&self, source: &str) -> RunReport {
        let inner = self.locked();
        debug_assert!(
            inner.stack.is_empty(),
            "snapshot taken with open spans: {:?}",
            inner.stack.iter().map(|s| &s.path).collect::<Vec<_>>()
        );
        RunReport {
            schema_version: crate::report::SCHEMA_VERSION,
            source: source.to_string(),
            meta: BTreeMap::new(),
            wall_seconds: self.started.elapsed().as_secs_f64(),
            phases: inner.phases.clone(),
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
            convergence: None,
        }
    }

    /// Current value of counter `name` (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.locked().counters.get(name).copied().unwrap_or(0)
    }

    /// Accumulated seconds of phase `name` (0 if never recorded).
    pub fn phase_seconds(&self, name: &str) -> f64 {
        self.locked()
            .phases
            .get(name)
            .map(|p| p.seconds)
            .unwrap_or(0.0)
    }
}

impl Default for StatsRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder for StatsRecorder {
    const ENABLED: bool = true;

    fn span_enter(&self, name: &'static str) {
        let entered = Instant::now();
        let mut inner = self.locked();
        let path = match inner.stack.last() {
            Some(parent) => format!("{}/{name}", parent.path),
            None => name.to_string(),
        };
        inner.stack.push(OpenSpan { path, entered });
    }

    fn span_exit(&self, name: &'static str) {
        let mut inner = self.locked();
        let Some(span) = inner.stack.pop() else {
            debug_assert!(false, "span_exit(\"{name}\") with no span open");
            return;
        };
        debug_assert!(
            span.path == name || span.path.ends_with(&format!("/{name}")),
            "span_exit(\"{name}\") closes \"{}\"",
            span.path
        );
        let seconds = span.entered.elapsed().as_secs_f64();
        let stat = inner.phases.entry(span.path).or_default();
        stat.seconds += seconds;
        stat.count += 1;
    }

    fn phase_add(&self, name: &'static str, seconds: f64) {
        let mut inner = self.locked();
        let stat = inner.phases.entry(name.to_string()).or_default();
        stat.seconds += seconds;
        stat.count += 1;
    }

    fn add(&self, name: &'static str, delta: u64) {
        let mut inner = self.locked();
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    fn gauge(&self, name: &'static str, value: f64) {
        let mut inner = self.locked();
        inner.gauges.insert(name.to_string(), value);
    }

    fn latency(&self, name: &'static str, seconds: f64) {
        let mut inner = self.locked();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(LogHistogram::latency_default)
            .record(seconds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_into_slash_paths() {
        let rec = StatsRecorder::new();
        rec.time("outer", || {
            rec.time("inner", || {
                std::thread::sleep(std::time::Duration::from_millis(1))
            });
            rec.time("inner", || ());
        });
        let report = rec.report("test");
        let outer = &report.phases["outer"];
        let inner = &report.phases["outer/inner"];
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 2);
        assert!(inner.seconds > 0.0);
        assert!(outer.seconds >= inner.seconds);
    }

    #[test]
    fn counters_gauges_and_histograms_accumulate() {
        let rec = StatsRecorder::new();
        rec.add("c", 2);
        rec.add("c", 3);
        rec.gauge("g", 1.0);
        rec.gauge("g", 7.5);
        rec.latency("l", 1e-4);
        rec.latency("l", 2e-4);
        rec.phase_add("p", 0.25);
        rec.phase_add("p", 0.25);
        let report = rec.report("test");
        assert_eq!(report.counters["c"], 5);
        assert_eq!(report.gauges["g"], 7.5);
        assert_eq!(report.histograms["l"].total(), 2);
        assert_eq!(report.phases["p"].count, 2);
        assert!((report.phases["p"].seconds - 0.5).abs() < 1e-12);
    }

    #[test]
    fn flat_primitives_are_thread_safe() {
        let rec = StatsRecorder::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        rec.add("hits", 1);
                        rec.latency("lat", 1e-5);
                        rec.phase_add("busy", 1e-3);
                    }
                });
            }
        });
        assert_eq!(rec.counter("hits"), 400);
        let report = rec.report("test");
        assert_eq!(report.histograms["lat"].total(), 400);
        assert!((report.phases["busy"].seconds - 0.4).abs() < 1e-9);
    }
}
