//! Human-readable rendering of run reports: single-report summaries,
//! A/B diffs, per-generation timelines, and flame-style self-time tables.

use crate::report::RunReport;
use serde::Value;
use std::fmt::Write as _;

/// Engineering notation for seconds: picks ns/µs/ms/s.
pub fn fmt_seconds(s: f64) -> String {
    let a = s.abs();
    if a == 0.0 {
        "0 s".to_string()
    } else if a < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if a < 1e-3 {
        format!("{:.1} µs", s * 1e6)
    } else if a < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

/// Compact numeric formatting for metric values: integral values render
/// without a fraction, everything else with Rust's shortest round-trip
/// float form; `NaN` (a missing side of a comparison) renders as `–`.
pub fn fmt_count(v: f64) -> String {
    if v.is_nan() {
        "–".to_string()
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn fmt_delta_pct(a: f64, b: f64) -> String {
    if a == 0.0 {
        if b == 0.0 {
            "±0.0%".to_string()
        } else {
            "new".to_string()
        }
    } else {
        format!("{:+.1}%", (b - a) / a * 100.0)
    }
}

/// Pretty-prints one report: metadata, phase tree, counters, gauges, and
/// histogram summaries.
pub fn render_report(r: &RunReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "run report — {} (schema v{})",
        r.source, r.schema_version
    );
    let _ = writeln!(out, "wall time: {}", fmt_seconds(r.wall_seconds));
    if !r.meta.is_empty() {
        let _ = writeln!(out, "meta:");
        for (k, v) in &r.meta {
            let _ = writeln!(out, "  {k}: {v}");
        }
    }
    if !r.phases.is_empty() {
        let _ = writeln!(out, "phases:");
        let width = r.phases.keys().map(|k| k.len()).max().unwrap_or(0);
        for (path, p) in &r.phases {
            let share = if r.wall_seconds > 0.0 {
                format!("{:5.1}%", p.seconds / r.wall_seconds * 100.0)
            } else {
                "  –  ".to_string()
            };
            let _ = writeln!(
                out,
                "  {path:<width$}  {:>10}  ×{:<8} {share}",
                fmt_seconds(p.seconds),
                p.count
            );
        }
    }
    if !r.counters.is_empty() {
        let _ = writeln!(out, "counters:");
        let width = r.counters.keys().map(|k| k.len()).max().unwrap_or(0);
        for (name, v) in &r.counters {
            let _ = writeln!(out, "  {name:<width$}  {v}");
        }
    }
    if let Some(rate) = r.cache_hit_rate() {
        let _ = writeln!(out, "cache hit rate: {:.1}%", rate * 100.0);
    }
    out.push_str(&render_fault_kinds(r));
    if !r.gauges.is_empty() {
        let _ = writeln!(out, "gauges:");
        let width = r.gauges.keys().map(|k| k.len()).max().unwrap_or(0);
        for (name, v) in &r.gauges {
            let _ = writeln!(out, "  {name:<width$}  {v:.6}");
        }
    }
    for (name, h) in &r.histograms {
        let _ = writeln!(
            out,
            "histogram {name}: n={} mean={} p50={} p99={} max={}",
            h.total(),
            fmt_seconds(h.mean()),
            fmt_seconds(h.quantile(0.5)),
            fmt_seconds(h.quantile(0.99)),
            fmt_seconds(h.max()),
        );
        for (lo, hi, c) in h.nonzero_bins() {
            let bar = "#".repeat(((c * 40).div_ceil(h.total().max(1))) as usize);
            let _ = writeln!(
                out,
                "  [{:>9} .. {:>9})  {c:>8} {bar}",
                fmt_seconds(lo),
                fmt_seconds(hi)
            );
        }
    }
    if r.convergence.is_some() {
        let _ = writeln!(
            out,
            "convergence trace: present (use --json for the raw data)"
        );
    }
    out
}

/// Renders the per-fault-kind breakdown as its own table, when the run
/// recorded any `faults.kind.<kind>.*` metrics (fault-injection runs).
/// Empty string otherwise, so `render_report` can append unconditionally.
fn render_fault_kinds(r: &RunReport) -> String {
    const PREFIX: &str = "faults.kind.";
    let mut kinds: Vec<&str> = r
        .counters
        .keys()
        .filter_map(|k| k.strip_prefix(PREFIX)?.split('.').next())
        .collect();
    kinds.sort_unstable();
    kinds.dedup();
    if kinds.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    let _ = writeln!(out, "fault kinds:");
    let width = kinds.iter().map(|k| k.len()).max().unwrap_or(0);
    for kind in kinds {
        let counter = |leaf: &str| {
            r.counters
                .get(&format!("{PREFIX}{kind}.{leaf}"))
                .copied()
                .unwrap_or(0)
        };
        let events = counter("events");
        let trials = counter("trials_affected");
        let degradation = r
            .gauges
            .get(&format!("{PREFIX}{kind}.mean_degradation"))
            .map(|d| format!("  mean degradation {d:.3}×"))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "  {kind:<width$}  events {events:<6} trials affected {trials:<4}{degradation}"
        );
    }
    out
}

/// Renders the diff `a → b`: per-phase time deltas, counter deltas, cache
/// hit-rate and best-makespan movement.
pub fn render_diff(a: &RunReport, b: &RunReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "report diff: {} → {}", a.source, b.source);
    let _ = writeln!(
        out,
        "wall time: {} → {} ({})",
        fmt_seconds(a.wall_seconds),
        fmt_seconds(b.wall_seconds),
        fmt_delta_pct(a.wall_seconds, b.wall_seconds)
    );

    let phase_names: Vec<&String> = {
        let mut names: Vec<&String> = a.phases.keys().chain(b.phases.keys()).collect();
        names.sort();
        names.dedup();
        names
    };
    if !phase_names.is_empty() {
        let _ = writeln!(out, "phases:");
        let width = phase_names.iter().map(|k| k.len()).max().unwrap_or(0);
        for name in phase_names {
            let sa = a.phases.get(name).copied().unwrap_or_default();
            let sb = b.phases.get(name).copied().unwrap_or_default();
            let marker = match (sa.count, sb.count) {
                (0, _) => "  [new]",
                (_, 0) => "  [gone]",
                _ => "",
            };
            let _ = writeln!(
                out,
                "  {name:<width$}  {:>10} → {:>10}  {:>8}{marker}",
                fmt_seconds(sa.seconds),
                fmt_seconds(sb.seconds),
                fmt_delta_pct(sa.seconds, sb.seconds)
            );
        }
    }

    let counter_names: Vec<&String> = {
        let mut names: Vec<&String> = a.counters.keys().chain(b.counters.keys()).collect();
        names.sort();
        names.dedup();
        names
    };
    if !counter_names.is_empty() {
        let _ = writeln!(out, "counters:");
        let width = counter_names.iter().map(|k| k.len()).max().unwrap_or(0);
        for name in counter_names {
            let ca = a.counters.get(name).copied().unwrap_or(0);
            let cb = b.counters.get(name).copied().unwrap_or(0);
            let _ = writeln!(
                out,
                "  {name:<width$}  {ca} → {cb} ({:+})",
                cb as i128 - ca as i128
            );
        }
    }

    match (a.cache_hit_rate(), b.cache_hit_rate()) {
        (Some(ra), Some(rb)) => {
            let _ = writeln!(
                out,
                "cache hit rate: {:.1}% → {:.1}% ({:+.1} pp)",
                ra * 100.0,
                rb * 100.0,
                (rb - ra) * 100.0
            );
        }
        (Some(ra), None) => {
            let _ = writeln!(out, "cache hit rate: {:.1}% → (absent)", ra * 100.0);
        }
        (None, Some(rb)) => {
            let _ = writeln!(out, "cache hit rate: (absent) → {:.1}%", rb * 100.0);
        }
        (None, None) => {}
    }

    match (a.best_makespan(), b.best_makespan()) {
        (Some(ma), Some(mb)) => {
            let _ = writeln!(
                out,
                "best makespan: {ma:.6} → {mb:.6} ({})",
                fmt_delta_pct(ma, mb)
            );
        }
        (Some(ma), None) => {
            let _ = writeln!(out, "best makespan: {ma:.6} → (absent)");
        }
        (None, Some(mb)) => {
            let _ = writeln!(out, "best makespan: (absent) → {mb:.6}");
        }
        (None, None) => {}
    }
    out
}

/// Renders the report's embedded per-generation series as a table.
///
/// The convergence trace is opaque to `obs` (it is produced by `emts`,
/// which sits above this crate), so the renderer is *schema-free*: it
/// takes the `generations` array from the convergence object and prints
/// one column per numeric field, in the order the producer wrote them.
/// The sentinel generation `usize::MAX` (the seed population) renders as
/// `seed`. Trailing whole-run fields of the convergence object (cache
/// totals, delta counters) are listed after the table.
pub fn render_timeline(r: &RunReport) -> String {
    let mut out = String::new();
    let Some(conv) = &r.convergence else {
        let _ = writeln!(out, "no convergence trace in this report ({})", r.source);
        return out;
    };
    let Some(Value::Array(gens)) = conv.get("generations") else {
        let _ = writeln!(out, "convergence trace has no generations array");
        return out;
    };
    if gens.is_empty() {
        let _ = writeln!(out, "convergence trace is empty");
        return out;
    }
    let _ = writeln!(
        out,
        "per-generation series — {} ({} rows)",
        r.source,
        gens.len()
    );
    // Columns: numeric fields of the first row, producer order.
    let columns: Vec<&str> = match &gens[0] {
        Value::Object(fields) => fields
            .iter()
            .filter(|(_, v)| matches!(v, Value::Int(_) | Value::Float(_)))
            .map(|(k, _)| k.as_str())
            .collect(),
        _ => Vec::new(),
    };
    if columns.is_empty() {
        let _ = writeln!(out, "generations carry no numeric fields");
        return out;
    }
    const SEED_SENTINEL: i128 = usize::MAX as i128;
    let cell = |row: &Value, col: &str| -> String {
        match row.get(col) {
            Some(Value::Int(i)) if col == "generation" && *i == SEED_SENTINEL => "seed".into(),
            Some(Value::Int(i)) => format!("{i}"),
            Some(Value::Float(f)) => format!("{f:.4}"),
            _ => "–".into(),
        }
    };
    let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
    for row in gens {
        for (i, col) in columns.iter().enumerate() {
            widths[i] = widths[i].max(cell(row, col).len());
        }
    }
    for (i, col) in columns.iter().enumerate() {
        let _ = write!(
            out,
            "{}{:>width$}",
            if i > 0 { "  " } else { "" },
            col,
            width = widths[i]
        );
    }
    let _ = writeln!(out);
    for row in gens {
        for (i, col) in columns.iter().enumerate() {
            let _ = write!(
                out,
                "{}{:>width$}",
                if i > 0 { "  " } else { "" },
                cell(row, col),
                width = widths[i]
            );
        }
        let _ = writeln!(out);
    }
    if let Some(fields) = conv.as_object() {
        let totals: Vec<String> = fields
            .iter()
            .filter_map(|(k, v)| match v {
                Value::Int(i) if k != "generations" => Some(format!("{k}={i}")),
                Value::Float(f) if k != "generations" => Some(format!("{k}={f}")),
                _ => None,
            })
            .collect();
        if !totals.is_empty() {
            let _ = writeln!(out, "run totals: {}", totals.join(" "));
        }
    }
    out
}

/// Renders the two-tier fitness pipeline's surrogate series as a table:
/// per generation, how many offspring tier 1 scored, what share it
/// screened away from exact evaluation, how often the interval straddled
/// the cutoff (ambiguous fallback), and the mean interval width.
///
/// Like [`render_timeline`] this reads the opaque convergence object, so
/// it works on any v2 report; a run that never activated the pipeline
/// (two-tier off, serial path, comma-selection) renders a one-line note
/// instead of an all-zero table.
pub fn render_surrogate(r: &RunReport) -> String {
    let mut out = String::new();
    let Some(conv) = &r.convergence else {
        let _ = writeln!(out, "no convergence trace in this report ({})", r.source);
        return out;
    };
    let Some(Value::Array(gens)) = conv.get("generations") else {
        let _ = writeln!(out, "convergence trace has no generations array");
        return out;
    };
    let int = |row: &Value, key: &str| -> i128 {
        match row.get(key) {
            Some(Value::Int(i)) => *i,
            _ => 0,
        }
    };
    let float = |row: &Value, key: &str| -> f64 {
        match row.get(key) {
            Some(Value::Float(f)) => *f,
            Some(Value::Int(i)) => *i as f64,
            _ => 0.0,
        }
    };
    let total: i128 = gens.iter().map(|g| int(g, "surrogate_evals")).sum();
    if total == 0 {
        let _ = writeln!(
            out,
            "two-tier surrogate inactive in this run ({}) — no offspring were tier-1 scored",
            r.source
        );
        return out;
    }
    let _ = writeln!(out, "surrogate screening — {}", r.source);
    let _ = writeln!(
        out,
        "{:>10}  {:>9}  {:>8}  {:>7}  {:>9}  {:>6}  {:>12}",
        "generation", "surrogate", "screened", "screen%", "ambiguous", "ambig%", "mean width"
    );
    const SEED_SENTINEL: i128 = usize::MAX as i128;
    for row in gens {
        let evals = int(row, "surrogate_evals");
        if evals == 0 {
            continue; // seed population / delta-path generations
        }
        let screened = int(row, "exact_skipped");
        let ambiguous = int(row, "ambiguous_fallbacks");
        let gen = match int(row, "generation") {
            SEED_SENTINEL => "seed".to_string(),
            g => format!("{g}"),
        };
        let _ = writeln!(
            out,
            "{gen:>10}  {evals:>9}  {screened:>8}  {:>6.1}%  {ambiguous:>9}  {:>5.1}%  {:>12}",
            screened as f64 / evals as f64 * 100.0,
            ambiguous as f64 / evals as f64 * 100.0,
            fmt_seconds(float(row, "surrogate_interval_width")),
        );
    }
    let screened: i128 = gens.iter().map(|g| int(g, "exact_skipped")).sum();
    let ambiguous: i128 = gens.iter().map(|g| int(g, "ambiguous_fallbacks")).sum();
    let _ = writeln!(
        out,
        "run totals: surrogate_evals={total} exact_skipped={screened} ({:.1}%) ambiguous_fallbacks={ambiguous} ({:.1}%)",
        screened as f64 / total as f64 * 100.0,
        ambiguous as f64 / total as f64 * 100.0,
    );
    out
}

/// Renders a flame-style *self-time* table over the report's span tree.
///
/// A phase's self time is its recorded seconds minus the seconds of its
/// direct children (`"ea"` minus `"ea/mutate"`, `"ea/evaluate"`, …), i.e.
/// the time the phase spent in its own code rather than in instrumented
/// sub-phases — the number a flame graph would show as the bar's exposed
/// width. Sorted widest first.
pub fn render_flame(r: &RunReport) -> String {
    let mut out = String::new();
    if r.phases.is_empty() {
        let _ = writeln!(out, "no phase spans in this report ({})", r.source);
        return out;
    }
    let mut rows: Vec<(&String, f64, f64, u64)> = r
        .phases
        .iter()
        .map(|(path, stat)| {
            let prefix = format!("{path}/");
            let children: f64 = r
                .phases
                .iter()
                .filter(|(p, _)| p.starts_with(&prefix) && !p[prefix.len()..].contains('/'))
                .map(|(_, s)| s.seconds)
                .sum();
            // Clamp: clock jitter can make children sum to a hair more
            // than the parent.
            (
                path,
                (stat.seconds - children).max(0.0),
                stat.seconds,
                stat.count,
            )
        })
        .collect();
    let total_self: f64 = rows.iter().map(|(_, s, _, _)| *s).sum();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("self times are finite"));
    let _ = writeln!(
        out,
        "flame (self time) — {} — total instrumented {}",
        r.source,
        fmt_seconds(total_self)
    );
    let width = rows.iter().map(|(p, ..)| p.len()).max().unwrap_or(0);
    for (path, self_s, total_s, count) in rows {
        let share = if total_self > 0.0 {
            self_s / total_self
        } else {
            0.0
        };
        let bar = "#".repeat((share * 40.0).round() as usize);
        let _ = writeln!(
            out,
            "  {path:<width$}  self {:>10}  total {:>10}  ×{count:<8} {:5.1}% {bar}",
            fmt_seconds(self_s),
            fmt_seconds(total_s),
            share * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::PhaseStat;

    fn report(source: &str, eval_s: f64, hits: u64) -> RunReport {
        let mut r = RunReport::new(source);
        r.wall_seconds = eval_s + 0.2;
        r.phases.insert(
            "ea/evaluate".into(),
            PhaseStat {
                seconds: eval_s,
                count: 10,
            },
        );
        r.counters.insert("emts.cache.hits".into(), hits);
        r.counters.insert("emts.cache.misses".into(), 100 - hits);
        r.gauges.insert("emts.best_makespan".into(), 10.0 + eval_s);
        r
    }

    #[test]
    fn report_rendering_mentions_all_sections() {
        let mut r = report("fig4", 1.0, 60);
        r.meta.insert("platform".into(), "grelon".into());
        let mut h = crate::LogHistogram::latency_default();
        h.record(1e-4);
        r.histograms.insert("pool.eval_seconds".into(), h);
        let text = render_report(&r);
        for needle in [
            "fig4",
            "schema v2",
            "ea/evaluate",
            "platform: grelon",
            "emts.cache.hits",
            "cache hit rate: 60.0%",
            "emts.best_makespan",
            "histogram pool.eval_seconds",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn fault_kind_breakdown_renders_as_its_own_section() {
        let mut r = report("faulted", 1.0, 60);
        r.counters.insert("faults.kind.crash.events".into(), 12);
        r.counters
            .insert("faults.kind.crash.trials_affected".into(), 5);
        r.counters.insert("faults.kind.straggler.events".into(), 3);
        r.gauges
            .insert("faults.kind.crash.mean_degradation".into(), 1.25);
        let text = render_report(&r);
        for needle in [
            "fault kinds:",
            "crash",
            "events 12",
            "trials affected 5",
            "mean degradation 1.250×",
            "straggler",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // Fault-free reports must not grow the section.
        let clean = render_report(&report("clean", 1.0, 60));
        assert!(!clean.contains("fault kinds:"), "{clean}");
    }

    #[test]
    fn diff_rendering_shows_phase_and_hit_rate_deltas() {
        let a = report("baseline", 1.0, 50);
        let b = report("candidate", 1.5, 75);
        let text = render_diff(&a, &b);
        for needle in [
            "baseline → candidate",
            "ea/evaluate",
            "+50.0%",
            "cache hit rate: 50.0% → 75.0% (+25.0 pp)",
            "best makespan",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn flame_ranks_by_self_time_and_subtracts_children() {
        let mut r = RunReport::new("flame-test");
        for (path, seconds) in [("ea", 10.0), ("ea/evaluate", 7.0), ("ea/mutate", 1.0)] {
            r.phases
                .insert(path.into(), PhaseStat { seconds, count: 1 });
        }
        let text = render_flame(&r);
        // ea self = 10 − (7+1) = 2s; evaluate leads with 7s of self time.
        let eval_at = text.find("ea/evaluate").expect("evaluate row");
        let ea_at = text.find("  ea ").expect("ea row");
        assert!(eval_at < ea_at, "evaluate should rank first:\n{text}");
        assert!(text.contains("2.000 s"), "{text}");
        assert!(text.contains("7.000 s"), "{text}");
    }

    #[test]
    fn timeline_renders_generation_rows_and_seed_sentinel() {
        let mut r = RunReport::new("timeline-test");
        r.convergence = Some(
            serde_json::parse(&format!(
                r#"{{"generations": [
                     {{"generation": {}, "best": 12.5, "mean": 14.0}},
                     {{"generation": 0, "best": 11.0, "mean": 12.0}}],
                    "cache_hits": 3, "cache_misses": 7}}"#,
                usize::MAX
            ))
            .expect("test JSON parses"),
        );
        let text = render_timeline(&r);
        assert!(text.contains("seed"), "{text}");
        assert!(text.contains("11.0000"), "{text}");
        assert!(text.contains("cache_hits=3"), "{text}");
    }

    #[test]
    fn timeline_without_trace_says_so() {
        let r = RunReport::new("empty");
        assert!(render_timeline(&r).contains("no convergence trace"));
    }

    #[test]
    fn surrogate_view_renders_rates_and_totals() {
        let mut r = RunReport::new("surrogate-test");
        r.convergence = Some(
            serde_json::parse(&format!(
                r#"{{"generations": [
                     {{"generation": {}, "surrogate_evals": 0}},
                     {{"generation": 0, "surrogate_evals": 20, "exact_skipped": 10,
                       "ambiguous_fallbacks": 2, "surrogate_interval_width": 0.25}},
                     {{"generation": 1, "surrogate_evals": 10, "exact_skipped": 8,
                       "ambiguous_fallbacks": 0, "surrogate_interval_width": 0.5}}],
                    "surrogate_evals": 30, "exact_skipped": 18}}"#,
                usize::MAX
            ))
            .expect("test JSON parses"),
        );
        let text = render_surrogate(&r);
        // Seed row (0 surrogate evals) is dropped; rates derive per row.
        assert!(!text.contains("seed"), "{text}");
        assert!(text.contains("50.0%"), "{text}");
        assert!(text.contains("80.0%"), "{text}");
        assert!(text.contains("250.00 ms"), "{text}");
        assert!(
            text.contains("surrogate_evals=30 exact_skipped=18 (60.0%)"),
            "{text}"
        );
    }

    #[test]
    fn surrogate_view_on_an_inactive_run_says_so() {
        let mut r = RunReport::new("all-exact");
        r.convergence = Some(
            serde_json::parse(r#"{"generations": [{"generation": 0, "best": 1.0}]}"#)
                .expect("test JSON parses"),
        );
        let text = render_surrogate(&r);
        assert!(text.contains("two-tier surrogate inactive"), "{text}");
        let empty = RunReport::new("no-trace");
        assert!(render_surrogate(&empty).contains("no convergence trace"));
    }

    #[test]
    fn seconds_formatting_picks_sane_units() {
        assert_eq!(fmt_seconds(0.0), "0 s");
        assert_eq!(fmt_seconds(2.5e-8), "25.0 ns");
        assert_eq!(fmt_seconds(3.1e-5), "31.0 µs");
        assert_eq!(fmt_seconds(4e-2), "40.00 ms");
        assert_eq!(fmt_seconds(2.0), "2.000 s");
    }
}
