//! Telemetry layer for the EMTS suite.
//!
//! The EA's inner loop evaluates the mapping function millions of times per
//! experiment; any instrumentation on that path must cost *nothing* when it
//! is off. This crate therefore models telemetry as a compile-time choice:
//! hot paths are generic over a [`Recorder`] whose `ENABLED` associated
//! constant lets the optimizer erase every probe when the recorder is
//! [`NoopRecorder`] (the `fitness/engine` bench asserts the erased probes
//! cost < 1%). [`StatsRecorder`] is the recording implementation: nested
//! monotonic phase spans, counters, gauges, and fixed-bin log-scaled
//! latency histograms.
//!
//! A finished run is snapshotted into a schema-versioned [`RunReport`]
//! (JSON via the vendored serde subset) which the `emts-report` binary
//! pretty-prints, diffs, renders as per-generation timelines and
//! self-time flame tables, and gates for benchmark regressions
//! ([`regress`]). The event-level view is the [`FlightRecorder`]: a
//! fixed-capacity per-thread ring of typed events with exact drop
//! accounting, exported as Chrome Trace Event JSON ([`trace`]).
//!
//! Built from scratch against the offline container (no crates.io
//! `tracing`/`metrics`); the only dependencies are the vendored `serde`
//! and `serde_json` subsets.

pub mod hist;
pub mod recorder;
pub mod regress;
pub mod render;
pub mod report;
pub mod stats;
pub mod trace;

pub use hist::LogHistogram;
pub use recorder::{NoopRecorder, Recorder, Span, TraceSpan};
pub use report::{PhaseStat, ReportError, RunReport, SCHEMA_VERSION};
pub use stats::StatsRecorder;
pub use trace::{FlightRecorder, LaneSnapshot, TeeRecorder, TraceEvent, TraceEventKind};
