//! Flight-recorder tracing: fixed-capacity per-thread event rings with
//! Chrome Trace Event export.
//!
//! [`FlightRecorder`] is the event-level companion to the aggregating
//! [`StatsRecorder`](crate::StatsRecorder): instead of folding probes into
//! sums it keeps the *last N* typed events per thread — span enters/exits,
//! counter deltas, gauges, latency samples, and instants — each stamped
//! with nanoseconds since the recorder was created. Memory is bounded by
//! construction (`capacity` events per lane, 32 bytes each) and overflow
//! is accounted exactly: the ring overwrites its oldest event and bumps
//! the lane's `dropped` counter, so `recorded + dropped` always equals the
//! number of events ever emitted on that lane.
//!
//! Each thread writes to its own *lane* (named after the thread when it
//! has a name), so worker threads never contend with the main thread or
//! each other; a lane's mutex is only ever touched by its owning thread
//! and the exporter. [`FlightRecorder::chrome_trace`] pairs span events
//! into Chrome Trace `"X"` (complete) events and emits one
//! `thread_name` metadata record per lane, producing JSON loadable in
//! `chrome://tracing` or Perfetto.
//!
//! Like every [`Recorder`], the flight recorder is a compile-time choice:
//! code instrumented against [`NoopRecorder`](crate::NoopRecorder) still
//! const-folds every probe away, and the recording overhead on the mapper
//! hot loop is bench-gated (see `crates/emts/tests/perf_guard.rs`).

use crate::recorder::Recorder;
use serde::Value;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// What a [`TraceEvent`] records. The payload lives in
/// [`TraceEvent::value`]; kinds with an `f64` payload store its raw bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A span opened (`value` unused).
    SpanEnter,
    /// The innermost span closed (`value` unused).
    SpanExit,
    /// A counter delta (`value` = delta).
    Counter,
    /// A gauge observation (`value` = `f64` bits).
    Gauge,
    /// A latency sample in seconds (`value` = `f64` bits).
    Latency,
    /// A flat phase-time addition in seconds (`value` = `f64` bits).
    PhaseAdd,
    /// A point-in-time marker (`value` = caller-defined payload).
    Instant,
}

/// One recorded event: kind, static name, nanoseconds since the recorder
/// epoch, and a kind-dependent payload.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Event type; fixes the interpretation of `value`.
    pub kind: TraceEventKind,
    /// Probe name (static, so recording never allocates).
    pub name: &'static str,
    /// Nanoseconds since [`FlightRecorder::new`].
    pub t_ns: u64,
    /// Payload (see [`TraceEventKind`]).
    pub value: u64,
}

impl TraceEvent {
    /// The payload reinterpreted as `f64` (meaningful for `Gauge`,
    /// `Latency` and `PhaseAdd` events).
    pub fn value_f64(&self) -> f64 {
        f64::from_bits(self.value)
    }
}

/// Fixed-capacity ring of events plus exact drop accounting.
struct LaneBuf {
    /// Ring storage; grows up to the recorder capacity, then wraps.
    events: Vec<TraceEvent>,
    /// Index of the oldest retained event once the ring has wrapped.
    head: usize,
    /// Events overwritten because the ring was full.
    dropped: u64,
}

/// One thread's event stream inside a [`FlightRecorder`].
struct Lane {
    name: String,
    buf: Mutex<LaneBuf>,
}

impl Lane {
    /// Locks the ring, recovering from poison: an instrumented thread that
    /// panicked mid-`push` cannot tear the buffer (a single `Vec` write),
    /// and the crash timeline is exactly what a flight recorder exists to
    /// preserve.
    fn locked(&self) -> MutexGuard<'_, LaneBuf> {
        self.buf.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn push(&self, capacity: usize, ev: TraceEvent) {
        let mut buf = self.locked();
        if buf.events.len() < capacity {
            buf.events.push(ev);
        } else {
            let head = buf.head;
            buf.events[head] = ev;
            // Branch instead of `%`: capacity is arbitrary, and integer
            // division is the single most expensive op on this path.
            buf.head = if head + 1 == capacity { 0 } else { head + 1 };
            buf.dropped += 1;
        }
    }
}

/// Read-only copy of one lane taken by [`FlightRecorder::snapshot`].
pub struct LaneSnapshot {
    /// Lane (thread) name.
    pub name: String,
    /// Retained events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overflow, exact.
    pub dropped: u64,
}

/// Recorder-instance ids so thread-local lane caches can tell two
/// coexisting recorders apart.
static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread cache of `(recorder id, lane)`. Entries hold a strong
    /// [`Arc`] so the per-event fast path is a borrow + linear scan with
    /// no refcount traffic; the cache is capped at [`LANE_CACHE_MAX`]
    /// entries (oldest evicted first), which bounds how many lanes of
    /// already-dropped recorders one thread can keep alive.
    static LANE_CACHE: RefCell<Vec<(u64, Arc<Lane>)>> = const { RefCell::new(Vec::new()) };
}

/// Per-thread lane-cache cap — the number of *coexisting* recorders one
/// thread emits through is in practice 1 or 2.
const LANE_CACHE_MAX: usize = 16;

/// The flight recorder: bounded per-thread event rings, one lane per
/// thread that emits through it.
///
/// See the [module docs](self) for the design. Every [`Recorder`] probe
/// maps to one ring push on the calling thread's lane; `span_enter` /
/// `span_exit` are lane-local here (unlike [`StatsRecorder`]'s
/// main-thread-only span stack), so worker threads get real span
/// timelines.
pub struct FlightRecorder {
    id: u64,
    epoch: Instant,
    capacity: usize,
    lanes: Mutex<Vec<Arc<Lane>>>,
}

/// Default per-lane capacity: 64k events ≈ 2 MiB per lane.
pub const DEFAULT_CAPACITY: usize = 65_536;

impl FlightRecorder {
    /// A recorder with the [`DEFAULT_CAPACITY`] per-lane ring.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A recorder whose lanes each retain at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        FlightRecorder {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            capacity,
            lanes: Mutex::new(Vec::new()),
        }
    }

    /// Per-lane ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Nanoseconds since the recorder was created.
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn lanes_locked(&self) -> MutexGuard<'_, Vec<Arc<Lane>>> {
        // Same poison policy as `Lane::locked`.
        self.lanes.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Creates and registers the calling thread's lane, caching the
    /// `(recorder, thread)` pair thread-locally so the registry lock is
    /// taken once per thread, not per event.
    #[cold]
    fn register_lane(&self) -> Arc<Lane> {
        let mut lanes = self.lanes_locked();
        let name = match std::thread::current().name() {
            Some(n) => n.to_string(),
            None => format!("lane-{}", lanes.len()),
        };
        let lane = Arc::new(Lane {
            name,
            buf: Mutex::new(LaneBuf {
                events: Vec::with_capacity(self.capacity.min(1024)),
                head: 0,
                dropped: 0,
            }),
        });
        lanes.push(Arc::clone(&lane));
        drop(lanes);
        LANE_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if cache.len() >= LANE_CACHE_MAX {
                // Oldest entry first: almost certainly a dropped recorder.
                cache.remove(0);
            }
            cache.push((self.id, Arc::clone(&lane)));
        });
        lane
    }

    #[inline]
    fn push(&self, kind: TraceEventKind, name: &'static str, value: u64) {
        let ev = TraceEvent {
            kind,
            name,
            t_ns: self.now_ns(),
            value,
        };
        LANE_CACHE.with(|cache| {
            // Fast path: shared borrow, scan (the hit is almost always the
            // only entry), one uncontended lane-mutex lock.
            if let Some((_, lane)) = cache.borrow().iter().find(|(id, _)| *id == self.id) {
                lane.push(self.capacity, ev);
                return;
            }
            self.register_lane().push(self.capacity, ev);
        });
    }

    /// Copies every lane out in registration order, each lane's events
    /// oldest-first.
    pub fn snapshot(&self) -> Vec<LaneSnapshot> {
        let lanes = self.lanes_locked();
        lanes
            .iter()
            .map(|lane| {
                let buf = lane.locked();
                let mut events = Vec::with_capacity(buf.events.len());
                if buf.events.len() == self.capacity {
                    events.extend_from_slice(&buf.events[buf.head..]);
                    events.extend_from_slice(&buf.events[..buf.head]);
                } else {
                    events.extend_from_slice(&buf.events);
                }
                LaneSnapshot {
                    name: lane.name.clone(),
                    events,
                    dropped: buf.dropped,
                }
            })
            .collect()
    }

    /// Number of lanes (threads that have emitted at least one event).
    pub fn lane_count(&self) -> usize {
        self.lanes_locked().len()
    }

    /// Total events currently retained across all lanes.
    pub fn total_events(&self) -> usize {
        self.lanes_locked()
            .iter()
            .map(|lane| lane.locked().events.len())
            .sum()
    }

    /// Total events lost to ring overflow across all lanes, exact.
    pub fn total_dropped(&self) -> u64 {
        self.lanes_locked()
            .iter()
            .map(|lane| lane.locked().dropped)
            .sum()
    }

    /// Exports the recorded timeline as a Chrome Trace Event JSON value
    /// (`{"traceEvents": [...]}`), one `tid` per lane, loadable in
    /// `chrome://tracing` / Perfetto.
    ///
    /// Span enter/exit pairs become `"X"` complete events (guaranteeing
    /// proper nesting); a span still open at export time is closed at the
    /// export timestamp, and an exit whose enter was overwritten by ring
    /// overflow is skipped. Counters, gauges, phase additions and latency
    /// samples become `"C"` counter events; instants become `"i"`.
    pub fn chrome_trace(&self) -> Value {
        let export_ns = self.now_ns();
        let mut trace_events: Vec<Value> = Vec::new();
        for (tid, lane) in self.snapshot().into_iter().enumerate() {
            let tid = tid as i128 + 1;
            trace_events.push(Value::Object(vec![
                ("name".into(), Value::Str("thread_name".into())),
                ("ph".into(), Value::Str("M".into())),
                ("pid".into(), Value::Int(1)),
                ("tid".into(), Value::Int(tid)),
                (
                    "args".into(),
                    Value::Object(vec![("name".into(), Value::Str(lane.name.clone()))]),
                ),
            ]));
            if lane.dropped > 0 {
                trace_events.push(instant_event(
                    "ring.dropped",
                    tid,
                    0.0,
                    Value::Int(lane.dropped as i128),
                ));
            }
            let mut open: Vec<(&'static str, u64)> = Vec::new();
            for ev in &lane.events {
                let ts = ev.t_ns as f64 / 1_000.0;
                match ev.kind {
                    TraceEventKind::SpanEnter => open.push((ev.name, ev.t_ns)),
                    TraceEventKind::SpanExit => {
                        // Orphan exits (enter lost to overflow, or
                        // mismatched nesting) are skipped rather than
                        // guessed at.
                        if open.last().is_some_and(|(name, _)| *name == ev.name) {
                            let (name, t0) = open.pop().expect("last() was Some");
                            trace_events.push(complete_event(name, tid, t0, ev.t_ns));
                        }
                    }
                    TraceEventKind::Counter => {
                        trace_events.push(counter_event(
                            ev.name,
                            tid,
                            ts,
                            Value::Int(ev.value as i128),
                        ));
                    }
                    TraceEventKind::Gauge | TraceEventKind::Latency | TraceEventKind::PhaseAdd => {
                        trace_events.push(counter_event(
                            ev.name,
                            tid,
                            ts,
                            Value::Float(ev.value_f64()),
                        ));
                    }
                    TraceEventKind::Instant => {
                        trace_events.push(instant_event(
                            ev.name,
                            tid,
                            ts,
                            Value::Int(ev.value as i128),
                        ));
                    }
                }
            }
            // Close spans still open at export time so they are visible
            // (innermost last, preserving nesting).
            while let Some((name, t0)) = open.pop() {
                trace_events.push(complete_event(name, tid, t0, export_ns));
            }
        }
        Value::Object(vec![("traceEvents".into(), Value::Array(trace_events))])
    }

    /// [`Self::chrome_trace`] rendered as a JSON string.
    pub fn chrome_trace_json(&self) -> String {
        serde_json::to_string_pretty(&self.chrome_trace())
            .expect("chrome traces serialize infallibly")
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

fn complete_event(name: &str, tid: i128, t0_ns: u64, t1_ns: u64) -> Value {
    Value::Object(vec![
        ("name".into(), Value::Str(name.into())),
        ("ph".into(), Value::Str("X".into())),
        ("pid".into(), Value::Int(1)),
        ("tid".into(), Value::Int(tid)),
        ("ts".into(), Value::Float(t0_ns as f64 / 1_000.0)),
        (
            "dur".into(),
            Value::Float(t1_ns.saturating_sub(t0_ns) as f64 / 1_000.0),
        ),
    ])
}

fn counter_event(name: &str, tid: i128, ts_us: f64, value: Value) -> Value {
    Value::Object(vec![
        ("name".into(), Value::Str(name.into())),
        ("ph".into(), Value::Str("C".into())),
        ("pid".into(), Value::Int(1)),
        ("tid".into(), Value::Int(tid)),
        ("ts".into(), Value::Float(ts_us)),
        ("args".into(), Value::Object(vec![("value".into(), value)])),
    ])
}

fn instant_event(name: &str, tid: i128, ts_us: f64, value: Value) -> Value {
    Value::Object(vec![
        ("name".into(), Value::Str(name.into())),
        ("ph".into(), Value::Str("i".into())),
        ("s".into(), Value::Str("t".into())),
        ("pid".into(), Value::Int(1)),
        ("tid".into(), Value::Int(tid)),
        ("ts".into(), Value::Float(ts_us)),
        ("args".into(), Value::Object(vec![("value".into(), value)])),
    ])
}

impl Recorder for FlightRecorder {
    const ENABLED: bool = true;

    fn span_enter(&self, name: &'static str) {
        self.push(TraceEventKind::SpanEnter, name, 0);
    }

    fn span_exit(&self, name: &'static str) {
        self.push(TraceEventKind::SpanExit, name, 0);
    }

    fn phase_add(&self, name: &'static str, seconds: f64) {
        self.push(TraceEventKind::PhaseAdd, name, seconds.to_bits());
    }

    fn add(&self, name: &'static str, delta: u64) {
        self.push(TraceEventKind::Counter, name, delta);
    }

    fn gauge(&self, name: &'static str, value: f64) {
        self.push(TraceEventKind::Gauge, name, value.to_bits());
    }

    fn latency(&self, name: &'static str, seconds: f64) {
        self.push(TraceEventKind::Latency, name, seconds.to_bits());
    }

    fn event(&self, name: &'static str, value: u64) {
        self.push(TraceEventKind::Instant, name, value);
    }

    fn trace_enter(&self, name: &'static str) {
        self.push(TraceEventKind::SpanEnter, name, 0);
    }

    fn trace_exit(&self, name: &'static str) {
        self.push(TraceEventKind::SpanExit, name, 0);
    }
}

/// Fans every probe out to two recorders.
///
/// `emts-sim --trace` uses this to aggregate a [`StatsRecorder`] RunReport
/// *and* capture a [`FlightRecorder`] timeline from the same run. The
/// compile-time [`Recorder::ENABLED`] guard stays honest: it is the OR of
/// the two sides, so tee-ing a no-op recorder in costs nothing extra.
///
/// [`StatsRecorder`]: crate::StatsRecorder
pub struct TeeRecorder<'a, A: Recorder, B: Recorder>(pub &'a A, pub &'a B);

impl<A: Recorder, B: Recorder> Recorder for TeeRecorder<'_, A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn span_enter(&self, name: &'static str) {
        self.0.span_enter(name);
        self.1.span_enter(name);
    }

    fn span_exit(&self, name: &'static str) {
        self.0.span_exit(name);
        self.1.span_exit(name);
    }

    fn phase_add(&self, name: &'static str, seconds: f64) {
        self.0.phase_add(name, seconds);
        self.1.phase_add(name, seconds);
    }

    fn add(&self, name: &'static str, delta: u64) {
        self.0.add(name, delta);
        self.1.add(name, delta);
    }

    fn gauge(&self, name: &'static str, value: f64) {
        self.0.gauge(name, value);
        self.1.gauge(name, value);
    }

    fn latency(&self, name: &'static str, seconds: f64) {
        self.0.latency(name, seconds);
        self.1.latency(name, seconds);
    }

    fn event(&self, name: &'static str, value: u64) {
        self.0.event(name, value);
        self.1.event(name, value);
    }

    fn trace_enter(&self, name: &'static str) {
        self.0.trace_enter(name);
        self.1.trace_enter(name);
    }

    fn trace_exit(&self, name: &'static str) {
        self.0.trace_exit(name);
        self.1.trace_exit(name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_newest_events_and_counts_drops_exactly() {
        let rec = FlightRecorder::with_capacity(4);
        for i in 0..10u64 {
            rec.event("tick", i);
        }
        let lanes = rec.snapshot();
        assert_eq!(lanes.len(), 1);
        assert_eq!(lanes[0].dropped, 6);
        let values: Vec<u64> = lanes[0].events.iter().map(|e| e.value).collect();
        assert_eq!(values, vec![6, 7, 8, 9]);
        assert_eq!(rec.total_dropped(), 6);
        assert_eq!(rec.total_events(), 4);
    }

    #[test]
    fn timestamps_are_monotone_within_a_lane() {
        let rec = FlightRecorder::new();
        for i in 0..100u64 {
            rec.event("tick", i);
        }
        let lanes = rec.snapshot();
        let ts: Vec<u64> = lanes[0].events.iter().map(|e| e.t_ns).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn each_thread_gets_its_own_lane() {
        let rec = FlightRecorder::new();
        rec.event("main", 0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| rec.event("worker", 1));
            }
        });
        assert_eq!(rec.lane_count(), 4);
    }

    #[test]
    fn named_threads_name_their_lanes() {
        let rec = FlightRecorder::new();
        std::thread::scope(|scope| {
            std::thread::Builder::new()
                .name("worker-7".into())
                .spawn_scoped(scope, || rec.event("x", 0))
                .expect("spawn named thread");
        });
        let lanes = rec.snapshot();
        assert_eq!(lanes.len(), 1);
        assert_eq!(lanes[0].name, "worker-7");
    }

    #[test]
    fn chrome_trace_pairs_spans_and_names_lanes() {
        let rec = FlightRecorder::new();
        rec.span_enter("outer");
        rec.span_enter("inner");
        rec.span_exit("inner");
        rec.span_exit("outer");
        rec.add("count", 3);
        rec.event("mark", 9);
        let trace = rec.chrome_trace();
        let events = trace
            .get("traceEvents")
            .and_then(|v| match v {
                Value::Array(a) => Some(a),
                _ => None,
            })
            .expect("traceEvents array");
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(Value::as_str))
            .collect();
        assert_eq!(phases.iter().filter(|p| **p == "M").count(), 1);
        assert_eq!(phases.iter().filter(|p| **p == "X").count(), 2);
        assert_eq!(phases.iter().filter(|p| **p == "C").count(), 1);
        assert_eq!(phases.iter().filter(|p| **p == "i").count(), 1);
        // Round-trip through the JSON text form.
        let parsed = serde_json::parse(&rec.chrome_trace_json()).expect("export parses");
        assert!(parsed.get("traceEvents").is_some());
    }

    #[test]
    fn open_spans_are_closed_at_export_time() {
        let rec = FlightRecorder::new();
        rec.span_enter("never-exited");
        let trace = rec.chrome_trace();
        let events = match trace.get("traceEvents") {
            Some(Value::Array(a)) => a,
            _ => panic!("traceEvents array"),
        };
        let x = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .expect("synthesized complete event");
        assert_eq!(x.get("name").and_then(Value::as_str), Some("never-exited"));
    }

    #[test]
    fn tee_forwards_to_both_sides() {
        let stats = crate::StatsRecorder::new();
        let flight = FlightRecorder::new();
        let tee = TeeRecorder(&stats, &flight);
        tee.add("c", 2);
        tee.time("span", || ());
        assert_eq!(stats.counter("c"), 2);
        assert_eq!(flight.total_events(), 3); // counter + enter + exit
    }
}
