//! Property tests for the flight recorder (ISSUE 7 satellite): ring
//! wraparound preserves per-thread event order, drop accounting is exact
//! under forced overflow, and the Chrome Trace export round-trips through
//! JSON with properly nested spans.

use obs::trace::{FlightRecorder, TraceEventKind};
use obs::Recorder as _;
use proptest::prelude::*;
use serde::Value;

/// Interned static names so `TraceEvent::name` stays `&'static str`.
const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

fn trace_events(value: &Value) -> &[Value] {
    match value.get("traceEvents") {
        Some(Value::Array(a)) => a,
        other => panic!("traceEvents array missing: {other:?}"),
    }
}

fn field_str<'v>(ev: &'v Value, key: &str) -> &'v str {
    ev.get(key).and_then(Value::as_str).unwrap_or("")
}

fn field_f64(ev: &Value, key: &str) -> f64 {
    match ev.get(key) {
        Some(Value::Float(f)) => *f,
        Some(Value::Int(i)) => *i as f64,
        _ => f64::NAN,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pushing `n` events through a capacity-`cap` ring retains exactly
    /// the last `min(n, cap)` in emission order and drops the rest —
    /// counted exactly.
    #[test]
    fn wraparound_keeps_a_suffix_in_order(
        cap in 1usize..48,
        payloads in proptest::collection::vec(0u64..1_000_000, 0..160),
    ) {
        let rec = FlightRecorder::with_capacity(cap);
        for &p in &payloads {
            rec.event(NAMES[(p % 4) as usize], p);
        }
        let lanes = rec.snapshot();
        if payloads.is_empty() {
            prop_assert!(lanes.is_empty() || lanes[0].events.is_empty());
        } else {
            prop_assert_eq!(lanes.len(), 1);
            let lane = &lanes[0];
            let kept = payloads.len().min(cap);
            prop_assert_eq!(lane.events.len(), kept);
            prop_assert_eq!(lane.dropped, (payloads.len() - kept) as u64);
            // Exactly the newest `kept` payloads, oldest first.
            let expected = &payloads[payloads.len() - kept..];
            let got: Vec<u64> = lane.events.iter().map(|e| e.value).collect();
            prop_assert_eq!(&got[..], expected);
            // Event order implies timestamp order.
            for w in lane.events.windows(2) {
                prop_assert!(w[0].t_ns <= w[1].t_ns);
            }
        }
    }

    /// Concurrent writers each keep their own lane's order and drop
    /// accounting; lanes never bleed into each other.
    #[test]
    fn per_thread_order_survives_concurrent_overflow(
        cap in 1usize..32,
        counts in proptest::collection::vec(1usize..80, 1..4),
    ) {
        let rec = FlightRecorder::with_capacity(cap);
        std::thread::scope(|scope| {
            for (t, &n) in counts.iter().enumerate() {
                let rec = &rec;
                std::thread::Builder::new()
                    .name(format!("w{t}"))
                    .spawn_scoped(scope, move || {
                        for i in 0..n {
                            // Payload encodes (thread, sequence) so cross-lane
                            // bleed would be visible.
                            rec.event("tick", (t as u64) << 32 | i as u64);
                        }
                    })
                    .expect("spawn worker");
            }
        });
        let lanes = rec.snapshot();
        prop_assert_eq!(lanes.len(), counts.len());
        let mut total_dropped = 0u64;
        for lane in &lanes {
            let t: u64 = lane.name[1..].parse().expect("lane named w<t>");
            let n = counts[t as usize];
            let kept = n.min(cap);
            prop_assert_eq!(lane.events.len(), kept);
            prop_assert_eq!(lane.dropped, (n - kept) as u64);
            total_dropped += lane.dropped;
            for (i, ev) in lane.events.iter().enumerate() {
                let seq = (n - kept + i) as u64;
                prop_assert_eq!(ev.value, t << 32 | seq, "lane {} event {}", lane.name, i);
            }
        }
        prop_assert_eq!(rec.total_dropped(), total_dropped);
    }

    /// The Chrome export parses back from its JSON text, every event
    /// carries the required fields, and `"X"` spans nest properly: within
    /// a lane, any two are either disjoint or one contains the other.
    #[test]
    fn chrome_export_round_trips_and_spans_nest(
        script in proptest::collection::vec((0u8..4, 0usize..4), 0..64),
    ) {
        let rec = FlightRecorder::new();
        let mut depth = 0usize;
        for &(op, name) in &script {
            match op {
                // Enter/exit driven by a depth counter so the emitted
                // stream is always well-bracketed per thread (the
                // discipline the Recorder contract requires); some spans
                // stay open to exercise close-at-export.
                0 | 1 => {
                    rec.trace_enter(NAMES[name]);
                    depth += 1;
                }
                2 if depth > 0 => {
                    // A trace exit must name the innermost open span; track
                    // names with a stack mirror.
                    depth -= 1;
                    rec.trace_exit(NAMES[name]);
                }
                _ => rec.event(NAMES[name], name as u64),
            }
        }
        let _ = depth;
        let text = rec.chrome_trace_json();
        let parsed = serde_json::parse(&text).expect("chrome trace parses");
        let events = trace_events(&parsed);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for ev in events {
            let ph = field_str(ev, "ph");
            prop_assert!(["M", "X", "C", "i"].contains(&ph), "unknown ph {ph:?}");
            if ph == "M" {
                continue;
            }
            let ts = field_f64(ev, "ts");
            prop_assert!(ts.is_finite() && ts >= 0.0);
            prop_assert!(!field_str(ev, "name").is_empty());
            if ph == "X" {
                let dur = field_f64(ev, "dur");
                prop_assert!(dur.is_finite() && dur >= 0.0);
                // Compare in integer nanoseconds: `ts + dur` in µs floats
                // accumulates 1e-15 error that would fake an overlap.
                let t0 = (ts * 1000.0).round() as u64;
                let t1 = ((ts + dur) * 1000.0).round() as u64;
                spans.push((t0, t1));
            }
        }
        // Proper nesting: pairwise disjoint or contained.
        for (i, &(a0, a1)) in spans.iter().enumerate() {
            for &(b0, b1) in &spans[i + 1..] {
                let disjoint = a1 <= b0 || b1 <= a0;
                let contained = (a0 <= b0 && b1 <= a1) || (b0 <= a0 && a1 <= b1);
                prop_assert!(
                    disjoint || contained,
                    "spans overlap without nesting: ({a0},{a1}) vs ({b0},{b1})"
                );
            }
        }
    }
}

/// The exit-name bookkeeping above is intentionally loose (`trace_exit`
/// may be called with a name that does not match the innermost span);
/// the exporter's contract is that *mismatched* exits are dropped, never
/// paired wrongly. Pin that with a direct case.
#[test]
fn mismatched_exits_are_skipped_not_mispaired() {
    let rec = FlightRecorder::new();
    rec.trace_enter("outer");
    rec.trace_exit("not-outer"); // orphan: skipped
    rec.trace_exit("outer");
    let trace = rec.chrome_trace();
    let events = trace_events(&trace);
    let xs: Vec<&Value> = events
        .iter()
        .filter(|e| field_str(e, "ph") == "X")
        .collect();
    assert_eq!(xs.len(), 1);
    assert_eq!(field_str(xs[0], "name"), "outer");
}

/// Overflow that swallows a span's enter must not fabricate a pairing
/// for the surviving exit.
#[test]
fn exit_whose_enter_was_overwritten_is_dropped() {
    let rec = FlightRecorder::with_capacity(2);
    rec.trace_enter("span"); // will be overwritten
    rec.event("filler", 0);
    rec.event("filler", 1); // ring now [filler, filler]
    rec.trace_exit("span"); // enter is gone
    let lanes = rec.snapshot();
    assert_eq!(lanes[0].dropped, 2);
    assert_eq!(
        lanes[0].events[1].kind,
        TraceEventKind::SpanExit,
        "exit survived in the ring"
    );
    let trace = rec.chrome_trace();
    let n_complete = trace_events(&trace)
        .iter()
        .filter(|e| field_str(e, "ph") == "X")
        .count();
    assert_eq!(n_complete, 0, "orphan exit must not synthesize a span");
}
