//! End-to-end tests of the `emts-report` binary: exit codes, the
//! schema-mismatch one-liner on `diff`, and the `regress` gate contract
//! that `scripts/ci.sh` relies on (self-comparison passes, a synthetic
//! inflation fails with a non-zero exit).

use obs::{RunReport, StatsRecorder};
use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_emts-report"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("emts-report-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

fn write(name: &str, contents: &str) -> PathBuf {
    let path = tmp(name);
    std::fs::write(&path, contents).expect("write test file");
    path
}

fn run(cmd: &mut Command) -> Output {
    cmd.output().expect("spawn emts-report")
}

fn sample_report() -> String {
    let rec = StatsRecorder::new();
    use obs::Recorder as _;
    rec.time("ea", || {
        rec.time("evaluate", || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
    });
    rec.add("emts.cache.hits", 3);
    rec.add("emts.cache.misses", 7);
    rec.report("cli-test").to_json()
}

#[test]
fn show_renders_a_report() {
    let path = write("show.json", &sample_report());
    let out = run(bin().arg("show").arg(&path));
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("cli-test"), "{text}");
    assert!(text.contains("ea/evaluate"), "{text}");
}

#[test]
fn diff_on_mismatched_schema_versions_is_one_typed_line() {
    let a = write("diff_current.json", &sample_report());
    let current = format!("\"schema_version\": {}", obs::report::SCHEMA_VERSION);
    let future = sample_report().replacen(&current, "\"schema_version\": 99", 1);
    assert!(
        future.contains("\"schema_version\": 99"),
        "fixture edit failed"
    );
    let b = write("diff_v99.json", &future);
    let out = run(bin().arg("diff").arg(&a).arg(&b));
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert_eq!(err.lines().count(), 1, "expected one line, got:\n{err}");
    assert!(err.contains("schema mismatch"), "{err}");
    assert!(
        err.contains(&format!("schema v{}", obs::report::SCHEMA_VERSION)),
        "{err}"
    );
    assert!(err.contains("schema v99"), "{err}");
}

#[test]
fn diff_on_matching_reports_succeeds() {
    let a = write("diff_a.json", &sample_report());
    let b = write("diff_b.json", &sample_report());
    let out = run(bin().arg("diff").arg(&a).arg(&b));
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn timeline_and_flame_render_from_a_report_file() {
    let mut report = RunReport::from_json(&sample_report()).expect("sample parses");
    report.convergence = Some(
        serde_json::parse(
            r#"{"generations": [{"generation": 0, "best": 10.0, "mean": 12.0}],
                "cache_hits": 1, "cache_misses": 2}"#,
        )
        .expect("trace parses"),
    );
    let path = write("timeline.json", &report.to_json());
    let out = run(bin().arg("timeline").arg(&path));
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("10.0000"));
    let out = run(bin().arg("flame").arg(&path));
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("self"), "{text}");
    assert!(text.contains("ea/evaluate"), "{text}");
}

#[test]
fn surrogate_view_renders_screen_rates() {
    let mut report = RunReport::from_json(&sample_report()).expect("sample parses");
    report.convergence = Some(
        serde_json::parse(
            r#"{"generations": [{"generation": 0, "surrogate_evals": 10,
                 "exact_skipped": 4, "ambiguous_fallbacks": 1,
                 "surrogate_interval_width": 0.125}],
                "surrogate_evals": 10, "exact_skipped": 4}"#,
        )
        .expect("trace parses"),
    );
    let path = write("surrogate.json", &report.to_json());
    let out = run(bin().arg("surrogate").arg(&path));
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("40.0%"), "{text}");
    assert!(text.contains("surrogate_evals=10"), "{text}");
}

#[test]
fn surrogate_view_rejects_pre_bump_reports_with_one_typed_line() {
    // Reports written before the v2 schema bump predate the surrogate
    // series entirely; the view must fail with the loader's one-line
    // SchemaMismatch error, not render an empty or all-zero table.
    let current = format!("\"schema_version\": {}", obs::report::SCHEMA_VERSION);
    let old = sample_report().replacen(&current, "\"schema_version\": 1", 1);
    assert!(old.contains("\"schema_version\": 1"), "fixture edit failed");
    let path = write("surrogate_v1.json", &old);
    let out = run(bin().arg("surrogate").arg(&path));
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert_eq!(err.lines().count(), 1, "expected one line, got:\n{err}");
    assert!(err.contains("schema version 1 is not supported"), "{err}");
}

#[test]
fn regress_self_comparison_passes() {
    let bench = r#"{"paths_ns_per_eval": {"pooled": 6000.0}, "throughput_ptgs_per_sec": 7913.0}"#;
    let path = write("bench_self.json", bench);
    let out = run(bin().arg("regress").arg(&path).arg(&path));
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK"));
}

#[test]
fn regress_flags_synthetic_inflation_with_nonzero_exit() {
    let base = write(
        "bench_base.json",
        r#"{"paths_ns_per_eval": {"pooled": 6000.0}, "throughput_ptgs_per_sec": 7913.0}"#,
    );
    let slow = write(
        "bench_slow.json",
        r#"{"paths_ns_per_eval": {"pooled": 60000.0}, "throughput_ptgs_per_sec": 7913.0}"#,
    );
    let out = run(bin().arg("regress").arg(&base).arg(&slow));
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("REGRESSION paths_ns_per_eval.pooled"),
        "{text}"
    );
    assert!(text.contains("FAIL"), "{text}");
}

#[test]
fn regress_tolerance_flag_tightens_the_gate() {
    let base = write("bench_tol_a.json", r#"{"ns_per_eval": 100.0}"#);
    let near = write("bench_tol_b.json", r#"{"ns_per_eval": 130.0}"#);
    let out = run(bin().arg("regress").arg(&base).arg(&near));
    assert_eq!(out.status.code(), Some(0));
    let out = run(bin()
        .arg("regress")
        .arg(&base)
        .arg(&near)
        .args(["--tolerance", "10"]));
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn usage_errors_exit_2() {
    let out = run(bin().arg("frobnicate"));
    assert_eq!(out.status.code(), Some(2));
    let out = run(&mut bin());
    assert_eq!(out.status.code(), Some(2));
}
