//! Property tests for the log-scaled histogram: boundaries must be strictly
//! monotone for any layout, and every sample must land in exactly one bin.

use obs::LogHistogram;
use proptest::prelude::*;

fn layout() -> impl Strategy<Value = (f64, f64, usize)> {
    // lo spans 1 ns .. 1 s, the range spans one to nine decades.
    (-9.0f64..0.0, 0.5f64..9.0, 1usize..128).prop_map(|(lo_exp, decades, bins)| {
        let lo = 10f64.powf(lo_exp);
        (lo, lo * 10f64.powf(decades), bins)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn boundaries_are_strictly_monotone((lo, hi, bins) in layout()) {
        let h = LogHistogram::new(lo, hi, bins);
        prop_assert_eq!(h.bounds().len(), bins + 1);
        for w in h.bounds().windows(2) {
            prop_assert!(w[0] < w[1], "bounds not strictly increasing: {:?}", w);
        }
        prop_assert_eq!(h.bounds()[0], lo);
        prop_assert_eq!(h.bounds()[bins], hi);
    }

    #[test]
    fn every_sample_lands_in_exactly_one_bin(
        (lo, hi, bins) in layout(),
        samples in proptest::collection::vec(-12.0f64..4.0, 1..64),
    ) {
        let mut h = LogHistogram::new(lo, hi, bins);
        for exp in samples {
            let s = 10f64.powf(exp);
            // Exactly one bin covers the sample: the membership predicate
            // (with edge-clamping) holds for bin_of(s) and no other bin.
            let covering: Vec<usize> = (0..bins)
                .filter(|&i| {
                    let below_all = s < h.bounds()[0] && i == 0;
                    let above_all = s >= h.bounds()[bins] && i == bins - 1;
                    let inside = h.bounds()[i] <= s && s < h.bounds()[i + 1];
                    below_all || above_all || inside
                })
                .collect();
            prop_assert_eq!(covering.len(), 1, "sample {} covered by {:?}", s, covering);
            prop_assert_eq!(covering[0], h.bin_of(s));
            h.record(s);
        }
        prop_assert_eq!(h.counts().iter().sum::<u64>(), h.total());
    }

    #[test]
    fn totals_and_stats_survive_any_sample_stream(
        samples in proptest::collection::vec((0u8..10, -1e9f64..1e9), 0..64),
    ) {
        // Tags 0–2 inject the non-finite values a misbehaving probe could
        // produce; the rest are ordinary (possibly negative) durations.
        let samples: Vec<f64> = samples
            .into_iter()
            .map(|(tag, v)| match tag {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                _ => v,
            })
            .collect();
        let mut h = LogHistogram::latency_default();
        for s in &samples {
            h.record(*s);
        }
        prop_assert_eq!(h.total(), samples.len() as u64);
        prop_assert_eq!(h.counts().iter().sum::<u64>(), h.total());
        // Summary statistics stay finite no matter what was recorded, so a
        // report containing this histogram always survives JSON.
        prop_assert!(h.mean().is_finite());
        prop_assert!(h.min().is_finite());
        prop_assert!(h.max().is_finite());
        prop_assert!(h.sum().is_finite());
    }
}
