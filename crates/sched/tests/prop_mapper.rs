//! Property-based tests for the mapping step.
//!
//! For random DAGs and random allocations, both mappers must produce valid
//! schedules whose makespans respect the two classic lower bounds (critical
//! path and total-area / P), and the list scheduler's fast makespan-only
//! path must agree exactly with the full mapping.

use proptest::prelude::*;
use ptg::critpath::critical_path_length;
use ptg::{Ptg, PtgBuilder, TaskId};
use sched::validate::all_violations;
use sched::{Allocation, InsertionScheduler, ListScheduler, Mapper};

use exec_model::{Amdahl, SyntheticModel, TimeMatrix};

fn build_graph(n: usize, edges: &[(usize, usize)]) -> Ptg {
    let mut b = PtgBuilder::with_capacity(n);
    for i in 0..n {
        let flop = 1e9 * (1 + (i * 7919) % 23) as f64;
        let alpha = ((i * 31) % 26) as f64 / 100.0; // 0 .. 0.25
        b.add_task(format!("t{i}"), flop, alpha);
    }
    for &(i, j) in edges {
        let _ = b.add_edge_dedup(TaskId::from_index(i), TaskId::from_index(j));
    }
    b.build().expect("forward edges are acyclic")
}

fn scenario() -> impl Strategy<Value = (usize, Vec<(usize, usize)>, u32, Vec<u32>)> {
    (2usize..25).prop_flat_map(|n| {
        let edge = (0usize..n, 0usize..n).prop_filter_map("fwd", |(a, b)| match a.cmp(&b) {
            std::cmp::Ordering::Less => Some((a, b)),
            std::cmp::Ordering::Greater => Some((b, a)),
            std::cmp::Ordering::Equal => None,
        });
        (2u32..20).prop_flat_map(move |p| {
            (
                Just(n),
                proptest::collection::vec(edge.clone(), 0..n * 2),
                Just(p),
                proptest::collection::vec(1u32..=p, n),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn both_mappers_produce_valid_schedules((n, edges, p, alloc) in scenario()) {
        let g = build_graph(n, &edges);
        let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 1e9, p);
        let alloc = Allocation::from_vec(alloc);
        for mapper in [&ListScheduler as &dyn Mapper, &InsertionScheduler] {
            let s = mapper.map(&g, &m, &alloc);
            let v = all_violations(&g, &m, &alloc, &s);
            prop_assert!(v.is_empty(), "{}: {:?}", mapper.name(), v);
        }
    }

    #[test]
    fn fast_makespan_equals_full_map((n, edges, p, alloc) in scenario()) {
        let g = build_graph(n, &edges);
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, p);
        let alloc = Allocation::from_vec(alloc);
        let full = ListScheduler.map(&g, &m, &alloc).makespan();
        let fast = ListScheduler.makespan(&g, &m, &alloc);
        prop_assert!((full - fast).abs() <= 1e-9 * full.max(1.0), "{full} vs {fast}");
    }

    #[test]
    fn makespan_respects_lower_bounds((n, edges, p, alloc) in scenario()) {
        let g = build_graph(n, &edges);
        let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 1e9, p);
        let alloc = Allocation::from_vec(alloc);
        let times = m.times_for(alloc.as_slice());
        let cp = critical_path_length(&g, &times);
        let area = alloc.work_area(&times) / p as f64;
        let lower = cp.max(area);
        for mapper in [&ListScheduler as &dyn Mapper, &InsertionScheduler] {
            let ms = mapper.map(&g, &m, &alloc).makespan();
            prop_assert!(ms + 1e-9 * lower >= lower,
                "{}: makespan {} below lower bound {}", mapper.name(), ms, lower);
        }
    }

    #[test]
    fn insertion_never_beats_dependency_bound_nor_loses_validity((n, edges, p, alloc) in scenario()) {
        let g = build_graph(n, &edges);
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, p);
        let alloc = Allocation::from_vec(alloc);
        let s = InsertionScheduler.map(&g, &m, &alloc);
        // every task starts no earlier than the chain of its ancestors allows
        for v in g.task_ids() {
            let min_start: f64 = {
                // longest-path arrival using the same times
                let times = m.times_for(alloc.as_slice());
                ptg::critpath::top_levels(&g, &times)[v.index()]
            };
            prop_assert!(s.placement(v).start + 1e-9 >= min_start);
        }
    }

    #[test]
    fn bounded_makespan_is_exact_or_correctly_rejecting((n, edges, p, alloc) in scenario()) {
        let g = build_graph(n, &edges);
        let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 1e9, p);
        let alloc = Allocation::from_vec(alloc);
        let exact = ListScheduler.makespan(&g, &m, &alloc);
        // Infinite cutoff: always exact.
        prop_assert_eq!(
            ListScheduler.makespan_bounded(&g, &m, &alloc, f64::INFINITY),
            Some(exact)
        );
        // Cutoff at the exact value: accepted.
        prop_assert_eq!(
            ListScheduler.makespan_bounded(&g, &m, &alloc, exact),
            Some(exact)
        );
        // Cutoff strictly below: must reject (makespan > cutoff).
        prop_assert_eq!(
            ListScheduler.makespan_bounded(&g, &m, &alloc, exact * 0.999_999),
            None
        );
    }

    #[test]
    fn serial_platform_makespan_is_total_work((n, edges, _p, _alloc) in scenario()) {
        let g = build_graph(n, &edges);
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 1);
        let alloc = Allocation::ones(n);
        let ms = ListScheduler.makespan(&g, &m, &alloc);
        let total: f64 = g.task_ids().map(|v| m.time(v, 1)).sum();
        prop_assert!((ms - total).abs() < 1e-9 * total.max(1.0));
    }
}
