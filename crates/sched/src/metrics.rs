//! Schedule quality metrics.

use crate::schedule::Schedule;
use exec_model::TimeMatrix;
use ptg::critpath::critical_path_length;
use ptg::Ptg;

/// Aggregate quality numbers for one schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleMetrics {
    /// The makespan (latest finish time), the paper's objective.
    pub makespan: f64,
    /// Fraction of the `P × makespan` area that is busy, in `[0, 1]`.
    pub utilization: f64,
    /// Makespan of the all-sequential single-processor execution divided by
    /// this schedule's makespan.
    pub speedup_vs_serial: f64,
    /// `makespan / critical-path length` under the schedule's own
    /// allocations — 1.0 means the mapping wastes nothing beyond the
    /// allocation's intrinsic critical path.
    pub cp_stretch: f64,
    /// Mean time tasks spend waiting after their data is ready
    /// (`start − max_pred finish`, 0 for sources).
    pub mean_wait: f64,
}

/// Computes [`ScheduleMetrics`].
///
/// `matrix` must be the same time matrix the schedule was mapped with.
pub fn compute_metrics(g: &Ptg, matrix: &TimeMatrix, schedule: &Schedule) -> ScheduleMetrics {
    let makespan = schedule.makespan();
    let busy = schedule.busy_area();
    let capacity = schedule.processors as f64 * makespan;
    let serial: f64 = g.task_ids().map(|v| matrix.time(v, 1)).sum();
    let times: Vec<f64> = schedule.placements.iter().map(|p| p.duration()).collect();
    let cp = critical_path_length(g, &times);
    let mut wait_sum = 0.0;
    for v in g.task_ids() {
        let data_ready = g
            .predecessors(v)
            .iter()
            .map(|&p| schedule.placement(p).finish)
            .fold(0.0f64, f64::max);
        wait_sum += (schedule.placement(v).start - data_ready).max(0.0);
    }
    ScheduleMetrics {
        makespan,
        utilization: if capacity > 0.0 { busy / capacity } else { 0.0 },
        speedup_vs_serial: if makespan > 0.0 {
            serial / makespan
        } else {
            0.0
        },
        cp_stretch: if cp > 0.0 { makespan / cp } else { 0.0 },
        mean_wait: wait_sum / g.task_count() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::Allocation;
    use crate::mapper::{ListScheduler, Mapper};
    use exec_model::Amdahl;
    use ptg::PtgBuilder;

    fn independent(n: usize) -> Ptg {
        let mut b = PtgBuilder::new();
        for i in 0..n {
            b.add_task(format!("t{i}"), 1e9, 0.0);
        }
        b.build().unwrap()
    }

    #[test]
    fn perfect_parallel_execution_has_full_utilization() {
        let g = independent(4);
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 4);
        let s = ListScheduler.map(&g, &m, &Allocation::ones(4));
        let metrics = compute_metrics(&g, &m, &s);
        assert!((metrics.makespan - 1.0).abs() < 1e-9);
        assert!((metrics.utilization - 1.0).abs() < 1e-9);
        assert!((metrics.speedup_vs_serial - 4.0).abs() < 1e-9);
        assert!((metrics.cp_stretch - 1.0).abs() < 1e-9);
        assert_eq!(metrics.mean_wait, 0.0);
    }

    #[test]
    fn overloaded_platform_halves_utilization_speedup() {
        let g = independent(4);
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 2);
        let s = ListScheduler.map(&g, &m, &Allocation::ones(4));
        let metrics = compute_metrics(&g, &m, &s);
        assert!((metrics.makespan - 2.0).abs() < 1e-9);
        assert!((metrics.utilization - 1.0).abs() < 1e-9);
        assert!((metrics.speedup_vs_serial - 2.0).abs() < 1e-9);
        // cp under 1-proc allocations is 1s, schedule takes 2s
        assert!((metrics.cp_stretch - 2.0).abs() < 1e-9);
    }

    #[test]
    fn waiting_time_appears_when_tasks_queue() {
        let g = independent(2);
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 1);
        let s = ListScheduler.map(&g, &m, &Allocation::ones(2));
        let metrics = compute_metrics(&g, &m, &s);
        // second task waits 1 s → mean over 2 tasks = 0.5 s
        assert!((metrics.mean_wait - 0.5).abs() < 1e-9);
    }

    #[test]
    fn chain_has_no_waiting_and_unit_stretch() {
        let mut b = PtgBuilder::new();
        let a = b.add_task("a", 1e9, 0.0);
        let c = b.add_task("c", 2e9, 0.0);
        b.add_edge(a, c).unwrap();
        let g = b.build().unwrap();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 2);
        let s = ListScheduler.map(&g, &m, &Allocation::ones(2));
        let metrics = compute_metrics(&g, &m, &s);
        assert!((metrics.cp_stretch - 1.0).abs() < 1e-9);
        assert_eq!(metrics.mean_wait, 0.0);
    }
}
