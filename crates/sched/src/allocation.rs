//! Per-task processor allocations — the EA's genotype.

use ptg::{Ptg, TaskId};
use serde::{Deserialize, Serialize};

/// A complete set of processor allocations for one PTG: `alloc[v]` is the
/// number of processors task `v` will use (`1 ≤ alloc[v] ≤ P`).
///
/// This is exactly the paper's *individual* encoding (Fig. 2): "for a task
/// `v_i` of PTG `G_j` the individual `I_j(i)` holds the number of processors
/// allocated to `v_i` at position `i`".
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Allocation {
    alloc: Vec<u32>,
}

impl Allocation {
    /// All-ones allocation (every task sequential) for a PTG of `n` tasks.
    pub fn ones(n: usize) -> Self {
        assert!(n > 0, "allocation for an empty PTG");
        Allocation { alloc: vec![1; n] }
    }

    /// Uniform allocation of `p` processors per task.
    pub fn uniform(n: usize, p: u32) -> Self {
        assert!(n > 0, "allocation for an empty PTG");
        assert!(p >= 1, "tasks need at least one processor");
        Allocation { alloc: vec![p; n] }
    }

    /// Wraps a raw vector; each entry must be ≥ 1.
    pub fn from_vec(alloc: Vec<u32>) -> Self {
        assert!(!alloc.is_empty(), "allocation for an empty PTG");
        assert!(
            alloc.iter().all(|&p| p >= 1),
            "every task needs at least one processor"
        );
        Allocation { alloc }
    }

    /// Number of tasks covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.alloc.len()
    }

    /// Always false (constructors reject empty vectors); included for
    /// clippy's `len_without_is_empty`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.alloc.is_empty()
    }

    /// The allocation of task `v`.
    #[inline]
    pub fn of(&self, v: TaskId) -> u32 {
        self.alloc[v.index()]
    }

    /// Sets the allocation of task `v` (must stay ≥ 1).
    #[inline]
    pub fn set(&mut self, v: TaskId, p: u32) {
        assert!(p >= 1, "every task needs at least one processor");
        self.alloc[v.index()] = p;
    }

    /// Raw slice view, indexed by [`TaskId::index`].
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.alloc
    }

    /// Consumes into the raw vector.
    pub fn into_vec(self) -> Vec<u32> {
        self.alloc
    }

    /// Clamps every entry into `[1, p_max]` — used after mutation and when
    /// transferring an allocation to a smaller platform.
    pub fn clamp(&mut self, p_max: u32) {
        assert!(p_max >= 1);
        for a in &mut self.alloc {
            *a = (*a).clamp(1, p_max);
        }
    }

    /// True if the allocation is compatible with graph `g` on `p_max`
    /// processors.
    pub fn is_valid_for(&self, g: &Ptg, p_max: u32) -> bool {
        self.alloc.len() == g.task_count() && self.alloc.iter().all(|&p| (1..=p_max).contains(&p))
    }

    /// Total *work area* under given per-task times: `Σ_v s(v) · t(v)`.
    /// Dividing by `P` yields the paper's average area `T_A`.
    pub fn work_area(&self, times: &[f64]) -> f64 {
        assert_eq!(times.len(), self.alloc.len());
        self.alloc
            .iter()
            .zip(times)
            .map(|(&p, &t)| p as f64 * t)
            .sum()
    }
}

impl std::ops::Index<TaskId> for Allocation {
    type Output = u32;
    fn index(&self, v: TaskId) -> &u32 {
        &self.alloc[v.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ones_and_uniform_constructors() {
        assert_eq!(Allocation::ones(3).as_slice(), &[1, 1, 1]);
        assert_eq!(Allocation::uniform(2, 5).as_slice(), &[5, 5]);
    }

    #[test]
    fn set_and_get_round_trip() {
        let mut a = Allocation::ones(4);
        a.set(TaskId(2), 7);
        assert_eq!(a.of(TaskId(2)), 7);
        assert_eq!(a[TaskId(2)], 7);
        assert_eq!(a.of(TaskId(0)), 1);
    }

    #[test]
    fn clamp_restricts_to_platform() {
        let mut a = Allocation::from_vec(vec![1, 50, 200]);
        a.clamp(120);
        assert_eq!(a.as_slice(), &[1, 50, 120]);
    }

    #[test]
    fn validity_checks_length_and_range() {
        let mut b = ptg::PtgBuilder::new();
        b.add_task("a", 1.0, 0.0);
        b.add_task("b", 1.0, 0.0);
        let g = b.build().unwrap();
        assert!(Allocation::from_vec(vec![1, 20]).is_valid_for(&g, 20));
        assert!(!Allocation::from_vec(vec![1, 21]).is_valid_for(&g, 20));
        assert!(!Allocation::from_vec(vec![1]).is_valid_for(&g, 20));
    }

    #[test]
    fn work_area_is_sum_of_products() {
        let a = Allocation::from_vec(vec![2, 3]);
        assert_eq!(a.work_area(&[1.5, 2.0]), 2.0 * 1.5 + 3.0 * 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_entry_rejected() {
        let _ = Allocation::from_vec(vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "empty PTG")]
    fn empty_rejected() {
        let _ = Allocation::from_vec(vec![]);
    }
}
