//! The mapping step: placing allocated tasks onto processors.
//!
//! [`ListScheduler`] is the paper's mapping function ("the ready nodes are
//! sorted by decreasing bottom level and each ready node v is mapped to the
//! first processor set that contains s(v) available processors"), originally
//! from Radulescu & van Gemund's CPA. It doubles as the EA's fitness
//! function, so it has a makespan-only fast path that skips building the
//! placement lists.
//!
//! [`InsertionScheduler`] is a backfilling variant that may start a task in
//! an earlier idle gap; the paper's future-work section motivates cheaper
//! mapping functions, and the ablation benches use this one to quantify what
//! insertion buys.

use crate::allocation::Allocation;
use crate::schedule::{Placement, Schedule};
use exec_model::TimeMatrix;
use ptg::critpath::bottom_levels;
use ptg::{Ptg, TaskId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A mapping algorithm: allocation → schedule.
pub trait Mapper {
    /// Produces a full schedule (placements with processor indices).
    fn map(&self, g: &Ptg, matrix: &TimeMatrix, alloc: &Allocation) -> Schedule;

    /// The schedule's makespan only. Implementations may use a faster path;
    /// the default maps and measures.
    fn makespan(&self, g: &Ptg, matrix: &TimeMatrix, alloc: &Allocation) -> f64 {
        self.map(g, matrix, alloc).makespan()
    }

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Priority-queue entry: larger bottom level first, then smaller task id.
#[derive(Debug, PartialEq)]
struct ReadyTask {
    bl: f64,
    task: TaskId,
}

impl Eq for ReadyTask {}

impl Ord for ReadyTask {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: order by bl ascending so larger bl pops
        // first, and by *reversed* id so the smaller id pops first on ties.
        self.bl
            .partial_cmp(&other.bl)
            .expect("bottom levels are finite")
            .then_with(|| other.task.cmp(&self.task))
    }
}

impl PartialOrd for ReadyTask {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The paper's list scheduler (non-insertion, bottom-level priority).
///
/// ```
/// use exec_model::{Amdahl, TimeMatrix};
/// use ptg::PtgBuilder;
/// use sched::{Allocation, ListScheduler, Mapper};
///
/// let mut b = PtgBuilder::new();
/// let a = b.add_task("produce", 4e9, 0.0);
/// let c = b.add_task("consume", 4e9, 0.0);
/// b.add_edge(a, c).unwrap();
/// let g = b.build().unwrap();
///
/// let matrix = TimeMatrix::compute(&g, &Amdahl, 1e9, 4);
/// let alloc = Allocation::from_vec(vec![4, 2]);
/// let schedule = ListScheduler.map(&g, &matrix, &alloc);
/// // 4 s of work on 4 procs, then 4 s on 2 procs: 1 + 2 = 3 s.
/// assert_eq!(schedule.makespan(), 3.0);
/// // The fast path agrees exactly.
/// assert_eq!(ListScheduler.makespan(&g, &matrix, &alloc), 3.0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ListScheduler;

impl ListScheduler {
    /// Shared setup: per-task times, bottom levels, ready queue seeded with
    /// the sources.
    fn prepare(
        g: &Ptg,
        matrix: &TimeMatrix,
        alloc: &Allocation,
    ) -> (Vec<f64>, BinaryHeap<ReadyTask>, Vec<usize>) {
        assert_eq!(alloc.len(), g.task_count(), "allocation/PTG size mismatch");
        assert!(
            alloc.as_slice().iter().all(|&p| p <= matrix.p_max()),
            "allocation exceeds platform size"
        );
        let times = matrix.times_for(alloc.as_slice());
        let bl = bottom_levels(g, &times);
        let in_deg: Vec<usize> = g.task_ids().map(|v| g.in_degree(v)).collect();
        let mut ready = BinaryHeap::with_capacity(g.task_count());
        for v in g.task_ids() {
            if in_deg[v.index()] == 0 {
                ready.push(ReadyTask {
                    bl: bl[v.index()],
                    task: v,
                });
            }
        }
        (times, ready, in_deg)
    }
}

impl Mapper for ListScheduler {
    fn map(&self, g: &Ptg, matrix: &TimeMatrix, alloc: &Allocation) -> Schedule {
        let p_total = matrix.p_max();
        let (times, mut ready, mut in_deg) = Self::prepare(g, matrix, alloc);
        let bl = bottom_levels(g, &times);
        let mut avail = vec![0.0f64; p_total as usize];
        let mut data_ready = vec![0.0f64; g.task_count()];
        let mut placements = Vec::with_capacity(g.task_count());
        // Reusable index buffer for selecting the earliest-free processors.
        let mut order: Vec<u32> = (0..p_total).collect();

        while let Some(ReadyTask { task: v, .. }) = ready.pop() {
            let s = alloc.of(v) as usize;
            // "First processor set with s(v) available processors": the s
            // earliest-free processors, ties broken by processor index.
            order.sort_unstable_by(|&a, &b| {
                avail[a as usize]
                    .partial_cmp(&avail[b as usize])
                    .expect("availability times are finite")
                    .then(a.cmp(&b))
            });
            let chosen = &order[..s];
            let procs_free = avail[chosen[s - 1] as usize];
            let start = data_ready[v.index()].max(procs_free);
            let finish = start + times[v.index()];
            let mut processors: Vec<u32> = chosen.to_vec();
            processors.sort_unstable();
            for &q in &processors {
                avail[q as usize] = finish;
            }
            placements.push(Placement {
                task: v,
                start,
                finish,
                processors,
            });
            for &w in g.successors(v) {
                data_ready[w.index()] = data_ready[w.index()].max(finish);
                in_deg[w.index()] -= 1;
                if in_deg[w.index()] == 0 {
                    ready.push(ReadyTask {
                        bl: bl[w.index()],
                        task: w,
                    });
                }
            }
        }
        Schedule::new(p_total, placements)
    }

    /// Makespan-only evaluation.
    ///
    /// Identical placement decisions as [`Mapper::map`], but processor
    /// availability is kept in a min-heap of free times instead of an
    /// indexed array: picking the `s` earliest-free processors is popping
    /// `s` entries, and starting a task pushes back `s` copies of its finish
    /// time. This drops the O(P log P) sort per task to O(s log P) and skips
    /// all placement bookkeeping — this is the EA's inner loop.
    fn makespan(&self, g: &Ptg, matrix: &TimeMatrix, alloc: &Allocation) -> f64 {
        let p_total = matrix.p_max();
        let (times, mut ready, mut in_deg) = Self::prepare(g, matrix, alloc);
        let bl = bottom_levels(g, &times);
        // Min-heap of processor free times via Reverse-ordered floats.
        let mut avail: BinaryHeap<std::cmp::Reverse<OrderedF64>> =
            (0..p_total).map(|_| std::cmp::Reverse(OrderedF64(0.0))).collect();
        let mut data_ready = vec![0.0f64; g.task_count()];
        let mut popped = Vec::with_capacity(p_total as usize);
        let mut makespan = 0.0f64;

        while let Some(ReadyTask { task: v, .. }) = ready.pop() {
            let s = alloc.of(v) as usize;
            popped.clear();
            for _ in 0..s {
                popped.push(avail.pop().expect("alloc ≤ P ensured by prepare").0 .0);
            }
            let procs_free = *popped.last().expect("s ≥ 1");
            let start = data_ready[v.index()].max(procs_free);
            let finish = start + times[v.index()];
            for _ in 0..s {
                avail.push(std::cmp::Reverse(OrderedF64(finish)));
            }
            makespan = makespan.max(finish);
            for &w in g.successors(v) {
                data_ready[w.index()] = data_ready[w.index()].max(finish);
                in_deg[w.index()] -= 1;
                if in_deg[w.index()] == 0 {
                    ready.push(ReadyTask {
                        bl: bl[w.index()],
                        task: w,
                    });
                }
            }
        }
        makespan
    }

    fn name(&self) -> &'static str {
        "list"
    }
}

impl ListScheduler {
    /// Makespan evaluation with early rejection — the paper's proposed
    /// future-work optimization ("reject solutions if the current schedule
    /// does not meet certain conditions while the algorithm is still in the
    /// mapping phase", §VI).
    ///
    /// Returns `None` as soon as the partial schedule *provably* exceeds
    /// `cutoff`: when a task starts at time `t`, the final makespan is at
    /// least `t + bl(v)` (its bottom level still has to execute), so the
    /// construction can stop without finishing the schedule. For a task
    /// mapped below the cutoff the bound is exact at the sink, hence
    /// `makespan_bounded(..., f64::INFINITY)` always returns
    /// `Some(makespan)` equal to [`Mapper::makespan`].
    pub fn makespan_bounded(
        &self,
        g: &Ptg,
        matrix: &TimeMatrix,
        alloc: &Allocation,
        cutoff: f64,
    ) -> Option<f64> {
        let p_total = matrix.p_max();
        let (times, mut ready, mut in_deg) = Self::prepare(g, matrix, alloc);
        let bl = bottom_levels(g, &times);
        let mut avail: BinaryHeap<std::cmp::Reverse<OrderedF64>> =
            (0..p_total).map(|_| std::cmp::Reverse(OrderedF64(0.0))).collect();
        let mut data_ready = vec![0.0f64; g.task_count()];
        let mut popped = Vec::with_capacity(p_total as usize);
        let mut makespan = 0.0f64;

        while let Some(ReadyTask { task: v, .. }) = ready.pop() {
            let s = alloc.of(v) as usize;
            popped.clear();
            for _ in 0..s {
                popped.push(avail.pop().expect("alloc ≤ P ensured by prepare").0 .0);
            }
            let start = data_ready[v.index()].max(*popped.last().expect("s ≥ 1"));
            // Rejection test: everything on v's bottom-level path still has
            // to run after `start`. The small relative slack keeps the test
            // sound under floating-point reassociation — `start + bl` can
            // exceed the true makespan by an ulp because the bottom level
            // sums task times in a different order than the schedule
            // accumulates them, and a schedule exactly at the cutoff must
            // not be rejected.
            if start + bl[v.index()] > cutoff * (1.0 + 1e-9) {
                return None;
            }
            let finish = start + times[v.index()];
            for _ in 0..s {
                avail.push(std::cmp::Reverse(OrderedF64(finish)));
            }
            makespan = makespan.max(finish);
            for &w in g.successors(v) {
                data_ready[w.index()] = data_ready[w.index()].max(finish);
                in_deg[w.index()] -= 1;
                if in_deg[w.index()] == 0 {
                    ready.push(ReadyTask {
                        bl: bl[w.index()],
                        task: w,
                    });
                }
            }
        }
        Some(makespan)
    }
}

/// Total-ordered wrapper for finite f64 heap keys.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}
impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("finite times")
    }
}

/// Insertion-based (backfilling) list scheduler.
///
/// Tasks are considered in the same bottom-level order, but each task may be
/// inserted into the earliest time window, possibly *before* previously
/// placed work, as long as `s(v)` processors are simultaneously idle for its
/// whole duration.
#[derive(Debug, Clone, Copy, Default)]
pub struct InsertionScheduler;

impl Mapper for InsertionScheduler {
    fn map(&self, g: &Ptg, matrix: &TimeMatrix, alloc: &Allocation) -> Schedule {
        let p_total = matrix.p_max() as usize;
        let (times, mut ready, mut in_deg) = ListScheduler::prepare(g, matrix, alloc);
        let bl = bottom_levels(g, &times);
        // Per-processor busy intervals, kept sorted by start time.
        let mut busy: Vec<Vec<(f64, f64)>> = vec![Vec::new(); p_total];
        let mut data_ready = vec![0.0f64; g.task_count()];
        let mut placements = Vec::with_capacity(g.task_count());

        while let Some(ReadyTask { task: v, .. }) = ready.pop() {
            let s = alloc.of(v) as usize;
            let d = times[v.index()];
            let r = data_ready[v.index()];
            // Candidate start times: the ready time and every interval end
            // after it. The earliest feasible candidate wins.
            let mut candidates: Vec<f64> = vec![r];
            for iv in busy.iter().flatten() {
                if iv.1 > r {
                    candidates.push(iv.1);
                }
            }
            candidates.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite times"));
            candidates.dedup();
            let mut placed: Option<(f64, Vec<u32>)> = None;
            for &t in &candidates {
                let free: Vec<u32> = (0..p_total)
                    .filter(|&q| is_free(&busy[q], t, t + d))
                    .map(|q| q as u32)
                    .collect();
                if free.len() >= s {
                    placed = Some((t, free[..s].to_vec()));
                    break;
                }
            }
            let (start, processors) =
                placed.expect("the time after all work finishes is always feasible");
            let finish = start + d;
            for &q in &processors {
                let list = &mut busy[q as usize];
                let pos = list
                    .binary_search_by(|iv| iv.0.partial_cmp(&start).expect("finite times"))
                    .unwrap_or_else(|e| e);
                list.insert(pos, (start, finish));
            }
            placements.push(Placement {
                task: v,
                start,
                finish,
                processors,
            });
            for &w in g.successors(v) {
                data_ready[w.index()] = data_ready[w.index()].max(finish);
                in_deg[w.index()] -= 1;
                if in_deg[w.index()] == 0 {
                    ready.push(ReadyTask {
                        bl: bl[w.index()],
                        task: w,
                    });
                }
            }
        }
        Schedule::new(p_total as u32, placements)
    }

    fn name(&self) -> &'static str {
        "insertion"
    }
}

/// True if processor `q` (busy intervals sorted by start) is idle during the
/// whole window `[start, finish)`.
fn is_free(busy: &[(f64, f64)], start: f64, finish: f64) -> bool {
    busy.iter().all(|&(s, f)| finish <= s || f <= start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exec_model::Amdahl;
    use ptg::PtgBuilder;

    /// Fork-join: src -> {a, b, c} -> sink, all 1 GFLOP fully parallel,
    /// on a 4-processor 1 GFLOPS platform.
    fn fork_join() -> Ptg {
        let mut b = PtgBuilder::new();
        let src = b.add_task("src", 1e9, 0.0);
        let mids: Vec<_> = (0..3).map(|i| b.add_task(format!("m{i}"), 1e9, 0.0)).collect();
        let sink = b.add_task("sink", 1e9, 0.0);
        for &m in &mids {
            b.add_edge(src, m).unwrap();
            b.add_edge(m, sink).unwrap();
        }
        b.build().unwrap()
    }

    fn matrix(g: &Ptg, p: u32) -> TimeMatrix {
        TimeMatrix::compute(g, &Amdahl, 1e9, p)
    }

    #[test]
    fn sequential_allocation_runs_middles_concurrently() {
        let g = fork_join();
        let m = matrix(&g, 4);
        let s = ListScheduler.map(&g, &m, &Allocation::ones(5));
        // src: 1s; three mids in parallel on 3 procs: 1s; sink: 1s → 3s.
        assert!((s.makespan() - 3.0).abs() < 1e-9, "got {}", s.makespan());
    }

    #[test]
    fn wide_allocation_serializes_middles() {
        let g = fork_join();
        let m = matrix(&g, 4);
        // Middles take all 4 procs each: 0.25 s each but serialized.
        let alloc = Allocation::from_vec(vec![4, 4, 4, 4, 4]);
        let s = ListScheduler.map(&g, &m, &alloc);
        // src 0.25 + 3 × 0.25 + sink 0.25 = 1.25 s
        assert!((s.makespan() - 1.25).abs() < 1e-9, "got {}", s.makespan());
    }

    #[test]
    fn fast_makespan_matches_full_map() {
        let g = fork_join();
        let m = matrix(&g, 4);
        for alloc in [
            Allocation::ones(5),
            Allocation::from_vec(vec![4, 2, 1, 3, 4]),
            Allocation::from_vec(vec![2, 2, 2, 2, 2]),
        ] {
            let full = ListScheduler.map(&g, &m, &alloc).makespan();
            let fast = ListScheduler.makespan(&g, &m, &alloc);
            assert!((full - fast).abs() < 1e-9, "alloc {alloc:?}: {full} vs {fast}");
        }
    }

    #[test]
    fn schedules_are_valid() {
        let g = fork_join();
        let m = matrix(&g, 4);
        let alloc = Allocation::from_vec(vec![3, 2, 2, 1, 4]);
        for mapper in [&ListScheduler as &dyn Mapper, &InsertionScheduler] {
            let s = mapper.map(&g, &m, &alloc);
            crate::validate::validate_schedule(&g, &m, &alloc, &s)
                .unwrap_or_else(|e| panic!("{}: {e}", mapper.name()));
        }
    }

    #[test]
    fn insertion_never_loses_to_list_on_samples() {
        let g = fork_join();
        let m = matrix(&g, 4);
        for alloc in [
            Allocation::ones(5),
            Allocation::from_vec(vec![4, 3, 1, 1, 2]),
            Allocation::from_vec(vec![1, 4, 4, 1, 1]),
        ] {
            let list = ListScheduler.map(&g, &m, &alloc).makespan();
            let ins = InsertionScheduler.map(&g, &m, &alloc).makespan();
            assert!(ins <= list + 1e-9, "insertion worse: {ins} vs {list}");
        }
    }

    #[test]
    fn insertion_backfills_into_gaps() {
        // Two independent chains force a gap for the list scheduler:
        //   a1(long, all procs) ; b1(short,1p) -> b2(short,1p)
        // With priorities, list runs a1 first on all procs; insertion can
        // squeeze b-chain before/alongside.
        let mut b = PtgBuilder::new();
        let a1 = b.add_task("a1", 8e9, 0.0); // 2s on 4 procs
        let b1 = b.add_task("b1", 1e9, 0.0);
        let b2 = b.add_task("b2", 1e9, 0.0);
        b.add_edge(b1, b2).unwrap();
        let g = b.build().unwrap();
        let m = matrix(&g, 4);
        let alloc = Allocation::from_vec(vec![4, 1, 1]);
        let list = ListScheduler.map(&g, &m, &alloc).makespan();
        let ins = InsertionScheduler.map(&g, &m, &alloc).makespan();
        assert!(ins <= list + 1e-9);
        let _ = a1;
    }

    #[test]
    fn priority_prefers_larger_bottom_level() {
        // Two ready tasks, one processor: the one heading the longer chain
        // must run first.
        let mut b = PtgBuilder::new();
        let short = b.add_task("short", 1e9, 0.0);
        let long_head = b.add_task("lh", 1e9, 0.0);
        let long_tail = b.add_task("lt", 5e9, 0.0);
        b.add_edge(long_head, long_tail).unwrap();
        let g = b.build().unwrap();
        let m = matrix(&g, 1);
        let s = ListScheduler.map(&g, &m, &Allocation::ones(3));
        assert!(s.placement(long_head).start < s.placement(short).start);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = fork_join();
        let m = matrix(&g, 4);
        let alloc = Allocation::from_vec(vec![2, 3, 1, 2, 4]);
        let s1 = ListScheduler.map(&g, &m, &alloc);
        let s2 = ListScheduler.map(&g, &m, &alloc);
        assert_eq!(s1, s2);
    }

    #[test]
    fn bounded_makespan_with_infinite_cutoff_matches_exact() {
        let g = fork_join();
        let m = matrix(&g, 4);
        for alloc in [
            Allocation::ones(5),
            Allocation::from_vec(vec![4, 2, 1, 3, 4]),
        ] {
            let exact = ListScheduler.makespan(&g, &m, &alloc);
            let bounded = ListScheduler
                .makespan_bounded(&g, &m, &alloc, f64::INFINITY)
                .expect("infinite cutoff never rejects");
            assert!((exact - bounded).abs() < 1e-12);
        }
    }

    #[test]
    fn bounded_makespan_rejects_above_cutoff_and_accepts_below() {
        let g = fork_join();
        let m = matrix(&g, 4);
        let alloc = Allocation::ones(5);
        let exact = ListScheduler.makespan(&g, &m, &alloc);
        assert_eq!(
            ListScheduler.makespan_bounded(&g, &m, &alloc, exact * 0.9),
            None,
            "cutoff below the real makespan must reject"
        );
        let accepted = ListScheduler.makespan_bounded(&g, &m, &alloc, exact * 1.1);
        assert_eq!(accepted, Some(exact));
        // cutoff exactly at the makespan: bound start+bl never exceeds it
        assert_eq!(
            ListScheduler.makespan_bounded(&g, &m, &alloc, exact),
            Some(exact)
        );
    }

    #[test]
    fn rejection_is_sound_never_rejects_schedules_within_cutoff() {
        // For a spread of allocations, whenever the exact makespan is within
        // the cutoff, the bounded version must return it.
        let g = fork_join();
        let m = matrix(&g, 4);
        for a0 in 1..=4u32 {
            for a2 in 1..=4u32 {
                let alloc = Allocation::from_vec(vec![a0, 2, a2, 1, 3]);
                let exact = ListScheduler.makespan(&g, &m, &alloc);
                for cutoff_factor in [1.0, 1.5, 3.0] {
                    let cutoff = exact * cutoff_factor;
                    let got = ListScheduler.makespan_bounded(&g, &m, &alloc, cutoff);
                    assert_eq!(got, Some(exact), "alloc {alloc:?} cutoff {cutoff}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "allocation exceeds platform")]
    fn over_allocation_panics() {
        let g = fork_join();
        let m = matrix(&g, 4);
        let _ = ListScheduler.map(&g, &m, &Allocation::from_vec(vec![5, 1, 1, 1, 1]));
    }
}
