//! The mapping step: placing allocated tasks onto processors.
//!
//! [`ListScheduler`] is the paper's mapping function ("the ready nodes are
//! sorted by decreasing bottom level and each ready node v is mapped to the
//! first processor set that contains s(v) available processors"), originally
//! from Radulescu & van Gemund's CPA. It doubles as the EA's fitness
//! function, so it has a makespan-only fast path that skips building the
//! placement lists and tracks processor availability as grouped runs (see
//! [`ListScheduler::makespan_bounded_with`] and `schedule_core_grouped`).
//!
//! [`InsertionScheduler`] is a backfilling variant that may start a task in
//! an earlier idle gap; the paper's future-work section motivates cheaper
//! mapping functions, and the ablation benches use this one to quantify what
//! insertion buys.

use crate::allocation::Allocation;
use crate::schedule::{Placement, Schedule};
use crate::soa_heap::{
    group_avail, group_count, group_entry, ready_entry, ready_task, MaxHeap128, MinHeap128,
};
use exec_model::TimeMatrix;
use obs::{NoopRecorder, Recorder};
use ptg::critpath::{bottom_levels, bottom_levels_into};
use ptg::{Ptg, TaskId};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

thread_local! {
    /// Per-thread scratch behind the convenience entry points ([`Mapper::map`],
    /// [`Mapper::makespan`], [`ListScheduler::makespan_bounded`],
    /// [`ListScheduler::makespan_bounded_reference`]): after a thread's first
    /// call these paths reuse steady-state buffers instead of allocating a
    /// fresh [`EvalScratch`] per evaluation. Long-lived workers should still
    /// hold their own scratch and call the `_with` variants directly.
    static SHARED_SCRATCH: std::cell::RefCell<EvalScratch> =
        std::cell::RefCell::new(EvalScratch::new());
}

/// A mapping algorithm: allocation → schedule.
pub trait Mapper {
    /// Produces a full schedule (placements with processor indices).
    fn map(&self, g: &Ptg, matrix: &TimeMatrix, alloc: &Allocation) -> Schedule;

    /// The schedule's makespan only. Implementations may use a faster path;
    /// the default maps and measures.
    fn makespan(&self, g: &Ptg, matrix: &TimeMatrix, alloc: &Allocation) -> f64 {
        self.map(g, matrix, alloc).makespan()
    }

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Priority-queue entry: larger bottom level first, then smaller task id.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ReadyTask {
    pub(crate) bl: f64,
    pub(crate) task: TaskId,
}

impl Eq for ReadyTask {}

impl Ord for ReadyTask {
    // `#[inline]` on the heap comparators matters: the grouped fitness core
    // is generic over a recorder, so `BinaryHeap`'s sift loops monomorphize
    // in the *calling* crate — without the hint every comparison would be a
    // cross-crate call on the EA's hottest path.
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: order by bl ascending so larger bl pops
        // first, and by *reversed* id so the smaller id pops first on ties.
        self.bl
            .partial_cmp(&other.bl)
            .expect("bottom levels are finite")
            .then_with(|| other.task.cmp(&self.task))
    }
}

impl PartialOrd for ReadyTask {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The paper's list scheduler (non-insertion, bottom-level priority).
///
/// ```
/// use exec_model::{Amdahl, TimeMatrix};
/// use ptg::PtgBuilder;
/// use sched::{Allocation, ListScheduler, Mapper};
///
/// let mut b = PtgBuilder::new();
/// let a = b.add_task("produce", 4e9, 0.0);
/// let c = b.add_task("consume", 4e9, 0.0);
/// b.add_edge(a, c).unwrap();
/// let g = b.build().unwrap();
///
/// let matrix = TimeMatrix::compute(&g, &Amdahl, 1e9, 4);
/// let alloc = Allocation::from_vec(vec![4, 2]);
/// let schedule = ListScheduler.map(&g, &matrix, &alloc);
/// // 4 s of work on 4 procs, then 4 s on 2 procs: 1 + 2 = 3 s.
/// assert_eq!(schedule.makespan(), 3.0);
/// // The fast path agrees exactly.
/// assert_eq!(ListScheduler.makespan(&g, &matrix, &alloc), 3.0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ListScheduler;

/// All per-evaluation buffers of the list scheduler, reusable across
/// evaluations.
///
/// The EA evaluates the mapping function thousands of times per run on
/// graphs of identical size; with a scratch carried between calls the whole
/// evaluation — time gather, bottom levels, ready queue, processor heap —
/// runs without touching the allocator (heaps and vectors are `clear()`ed,
/// which keeps their capacity). Create one per worker thread and pass it to
/// [`ListScheduler::makespan_bounded_with`].
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    /// Per-task execution time under the current allocation.
    pub(crate) times: Vec<f64>,
    /// Per-task bottom level under the current allocation.
    pub(crate) bl: Vec<f64>,
    /// Remaining unscheduled predecessors per task.
    pub(crate) in_deg: Vec<u32>,
    /// Latest finish time over each task's scheduled predecessors.
    pub(crate) data_ready: Vec<f64>,
    /// Ready tasks by decreasing bottom level, as packed
    /// `(bl key, ¬task id)` entries (see [`crate::soa_heap`]) — the grouped
    /// fitness core's queue.
    pub(crate) ready: MaxHeap128,
    /// Old-style ready queue for the per-processor reference core, kept on
    /// the comparator-driven `BinaryHeap` so the oracle shares no queue
    /// implementation with the SoA fast path.
    ready_ref: BinaryHeap<ReadyTask>,
    /// Min-heap of `(free time, processor)` — used by the full mapper,
    /// which must report concrete processor indices.
    avail: BinaryHeap<Reverse<(OrderedF64, u32)>>,
    /// The processors popped for the task being placed (full mapper only).
    popped: Vec<(f64, u32)>,
    /// Min-heap of processor *groups* for the makespan-only core: every
    /// processor popped for a task gets the same finish time, so the heap
    /// can carry `(free time, count)` runs instead of `count` individual
    /// entries, packed as `(avail key, seq, count)` words. Heap traffic
    /// drops from `O(Σ s(v) log P)` to `O(V log V)` — the dominant cost
    /// for wide allocations.
    pub(crate) groups: MinHeap128,
    /// Tasks whose execution time bitwise changed in a delta evaluation
    /// (see `crate::incremental`).
    pub(crate) dirty: Vec<TaskId>,
    /// Latest-finish column for the tier-1 surrogate's *upper* replay side
    /// (the lower side reuses `data_ready`; see [`crate::surrogate`]).
    pub(crate) sur_ready_hi: Vec<f64>,
    /// Bucketed availability runs `(free time, processor count)` for the
    /// surrogate's lower-bound replay side.
    pub(crate) runs_lo: Vec<(f64, u32)>,
    /// Same, upper-bound side.
    pub(crate) runs_hi: Vec<(f64, u32)>,
}

impl EvalScratch {
    /// An empty scratch; buffers grow to steady-state size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-sized for `tasks` tasks on `procs` processors, so even
    /// the first evaluation allocates nothing beyond this call.
    pub fn with_capacity(tasks: usize, procs: u32) -> Self {
        EvalScratch {
            times: Vec::with_capacity(tasks),
            bl: Vec::with_capacity(tasks),
            in_deg: Vec::with_capacity(tasks),
            data_ready: Vec::with_capacity(tasks),
            ready: MaxHeap128::with_capacity(tasks),
            ready_ref: BinaryHeap::with_capacity(tasks),
            avail: BinaryHeap::with_capacity(procs as usize),
            popped: Vec::with_capacity(procs as usize),
            groups: MinHeap128::with_capacity(tasks + 1),
            dirty: Vec::new(),
            sur_ready_hi: Vec::with_capacity(tasks),
            runs_lo: Vec::with_capacity(32),
            runs_hi: Vec::with_capacity(32),
        }
    }
}

/// Outcome of one bounded evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundedEval {
    /// The schedule completed within the cutoff.
    Complete {
        /// The schedule's makespan.
        makespan: f64,
        /// `max_v (start(v) + bl(v))` over the complete schedule — the
        /// exact quantity the rejection test compares against the cutoff.
        /// Caching it alongside the makespan lets a memo layer reproduce
        /// the engine's accept/reject decision for *any* cutoff
        /// bit-for-bit without re-evaluating (see `emts`'s fitness cache).
        reject_key: f64,
    },
    /// Construction stopped early: some task's `start + bl` exceeded the
    /// cutoff.
    Rejected,
}

impl ListScheduler {
    /// Shared setup for the *allocating* mappers: per-task times, bottom
    /// levels, in-degrees and the ready queue seeded with the sources.
    /// (The list scheduler's own paths use [`EvalScratch`] instead.)
    fn prepare(
        g: &Ptg,
        matrix: &TimeMatrix,
        alloc: &Allocation,
    ) -> (Vec<f64>, Vec<f64>, BinaryHeap<ReadyTask>, Vec<usize>) {
        assert_eq!(alloc.len(), g.task_count(), "allocation/PTG size mismatch");
        assert!(
            alloc.as_slice().iter().all(|&p| p <= matrix.p_max()),
            "allocation exceeds platform size"
        );
        let times = matrix.times_for(alloc.as_slice());
        let bl = bottom_levels(g, &times);
        let in_deg: Vec<usize> = g.task_ids().map(|v| g.in_degree(v)).collect();
        let mut ready = BinaryHeap::with_capacity(g.task_count());
        for v in g.task_ids() {
            if in_deg[v.index()] == 0 {
                ready.push(ReadyTask {
                    bl: bl[v.index()],
                    task: v,
                });
            }
        }
        (times, bl, ready, in_deg)
    }

    /// Resets `scratch`'s task-side buffers for an evaluation of `alloc` on
    /// `g`; no allocation once the buffers have reached steady-state
    /// capacity. In-degrees are one memcpy from the graph's CSR view. The
    /// queues are seeded by the placement cores themselves (each core owns
    /// its queue representation).
    // lint:hot-path
    pub(crate) fn prepare_into(
        g: &Ptg,
        matrix: &TimeMatrix,
        alloc: &Allocation,
        scratch: &mut EvalScratch,
    ) {
        assert_eq!(alloc.len(), g.task_count(), "allocation/PTG size mismatch");
        assert!(
            alloc.as_slice().iter().all(|&p| p <= matrix.p_max()),
            "allocation exceeds platform size"
        );
        matrix.fill_times(alloc.as_slice(), &mut scratch.times);
        bottom_levels_into(g, &scratch.times, &mut scratch.bl);
        scratch.in_deg.clear();
        scratch.in_deg.extend_from_slice(g.csr().in_degrees());
        scratch.data_ready.clear();
        scratch.data_ready.resize(g.task_count(), 0.0);
    }

    /// The per-processor placement routine behind [`Mapper::map`] (and the
    /// reference oracle for the grouped core below).
    ///
    /// Ready tasks pop by decreasing bottom level (ties toward the smaller
    /// task id); each takes the `s(v)` earliest-free processors from the
    /// min-heap — identical tie-breaking by processor index as a full sort
    /// of the availability vector, at O(s log P) instead of O(P log P) per
    /// task. `on_place` observes every placement `(task, start, finish,
    /// popped processors)`; the full mapper records placements there while
    /// the makespan-only reference passes a no-op.
    ///
    /// This core deliberately stays on the pre-refactor data structures —
    /// comparator-driven `BinaryHeap`s and the graph's pointer adjacency —
    /// so the bit-identity property tests pit two independent
    /// implementations against each other.
    #[inline]
    fn schedule_core<F>(
        g: &Ptg,
        alloc: &Allocation,
        p_max: u32,
        cutoff: f64,
        scratch: &mut EvalScratch,
        mut on_place: F,
    ) -> BoundedEval
    where
        F: FnMut(TaskId, f64, f64, &[(f64, u32)]),
    {
        // The rejection test keeps a small relative slack: `start + bl` can
        // exceed the true makespan by an ulp because the bottom level sums
        // task times in a different order than the schedule accumulates
        // them, and a schedule exactly at the cutoff must not be rejected.
        let threshold = cutoff * (1.0 + 1e-9);
        let mut makespan = 0.0f64;
        let mut reject_key = 0.0f64;
        scratch.ready_ref.clear();
        for v in g.task_ids() {
            if scratch.in_deg[v.index()] == 0 {
                scratch.ready_ref.push(ReadyTask {
                    bl: scratch.bl[v.index()],
                    task: v,
                });
            }
        }
        scratch.avail.clear();
        for q in 0..p_max {
            scratch.avail.push(Reverse((OrderedF64(0.0), q)));
        }

        while let Some(ReadyTask { task: v, .. }) = scratch.ready_ref.pop() {
            let s = alloc.of(v) as usize;
            scratch.popped.clear();
            for _ in 0..s {
                let Reverse((OrderedF64(free), q)) =
                    scratch.avail.pop().expect("alloc ≤ P ensured by prepare");
                scratch.popped.push((free, q));
            }
            let procs_free = scratch.popped.last().expect("s ≥ 1").0;
            let start = scratch.data_ready[v.index()].max(procs_free);
            // Rejection test: everything on v's bottom-level path still has
            // to run after `start`, so the final makespan is at least
            // `start + bl(v)`.
            let lower_bound = start + scratch.bl[v.index()];
            if lower_bound > threshold {
                return BoundedEval::Rejected;
            }
            reject_key = reject_key.max(lower_bound);
            let finish = start + scratch.times[v.index()];
            for i in 0..s {
                let q = scratch.popped[i].1;
                scratch.avail.push(Reverse((OrderedF64(finish), q)));
            }
            makespan = makespan.max(finish);
            on_place(v, start, finish, &scratch.popped);
            for &w in g.successors(v) {
                scratch.data_ready[w.index()] = scratch.data_ready[w.index()].max(finish);
                scratch.in_deg[w.index()] -= 1;
                if scratch.in_deg[w.index()] == 0 {
                    scratch.ready_ref.push(ReadyTask {
                        bl: scratch.bl[w.index()],
                        task: w,
                    });
                }
            }
        }
        BoundedEval::Complete {
            makespan,
            reject_key,
        }
    }

    /// The makespan-only placement core — the EA's inner loop.
    ///
    /// Equivalent to [`Self::schedule_core`] but tracks processor
    /// availability as *groups*: a task's `s(v)` processors all free up at
    /// the same finish time, so they re-enter the heap as a single
    /// `(finish, s(v))` run, and selection pops whole runs until `s(v)`
    /// processors are covered (splitting at most the last run). The start
    /// time only depends on the s(v)-th smallest availability value, which
    /// is the same multiset either way, so makespans and rejection keys are
    /// **bit-identical** to the per-processor core — proven by the property
    /// tests in `emts/tests/prop_fitness.rs`.
    ///
    /// Each placement pushes at most two runs, so total heap traffic is
    /// O(V log V) regardless of allocation widths — on wide platforms
    /// (P = 120 and mean width P/2 this is ~30× fewer heap operations than
    /// the per-processor core).
    /// When recording (`R::ENABLED`), heap traffic is accumulated in local
    /// counters and flushed to `rec` **once per evaluation** — the counters
    /// and the flush monomorphize away entirely under
    /// [`obs::NoopRecorder`], keeping the disabled hot path identical to
    /// the uninstrumented code (asserted by the bench's no-op overhead
    /// check). Counter names: `sched.tasks_placed` (ready-queue pops),
    /// `sched.group_pops` / `sched.group_pushes` (processor-group heap
    /// traffic), `sched.rejections` (evaluations stopped by the cutoff).
    ///
    /// The loop state is pure struct-of-arrays: task ids are raw `u32`
    /// indices into the scratch's parallel `Vec<f64>`/`Vec<u32>` columns,
    /// adjacency comes from the graph's CSR arenas, and both heaps are
    /// hand-rolled flat arrays of packed `u128` keys whose integer order
    /// equals the old comparator order (see [`crate::soa_heap`] for the
    /// layouts and the argument why pop order — and therefore every result
    /// bit — is unchanged).
    // lint:hot-path
    pub(crate) fn schedule_core_grouped<R: Recorder>(
        g: &Ptg,
        alloc: &Allocation,
        p_max: u32,
        cutoff: f64,
        scratch: &mut EvalScratch,
        rec: &R,
    ) -> BoundedEval {
        // Same slack rationale as `schedule_core`.
        let threshold = cutoff * (1.0 + 1e-9);
        let mut makespan = 0.0f64;
        let mut reject_key = 0.0f64;
        let mut tasks_placed = 0u64;
        let mut group_pops = 0u64;
        let mut group_pushes = 0u64;
        // The whole loop runs on flat state: raw `u32` ids into parallel
        // slices, CSR adjacency, packed-`u128` heaps. Splitting the scratch
        // borrow up front keeps every access a direct slice index.
        let csr = g.csr();
        let widths = alloc.as_slice();
        let EvalScratch {
            times,
            bl,
            in_deg,
            data_ready,
            ready,
            groups,
            ..
        } = scratch;
        let times = times.as_slice();
        let bl = bl.as_slice();
        let in_deg = in_deg.as_mut_slice();
        let data_ready = data_ready.as_mut_slice();
        ready.clear();
        for &v in csr.sources() {
            ready.push(ready_entry(bl[v as usize], v));
        }
        groups.clear();
        groups.push(group_entry(0.0, 0, p_max));
        let mut next_seq = 1u32;

        while let Some(entry) = ready.pop() {
            let v = ready_task(entry) as usize;
            let s = widths[v];
            let mut need = s;
            let mut run = 0u128;
            // Sentinel: a real entry is never 0 (the availability key of any
            // non-negative time has the sign-flip bit set).
            let mut remainder = 0u128;
            while need > 0 {
                // lint:allow(src-panic-reach) -- invariant expect: prepare_into caps every allocation at P, so the group heap cannot run dry
                run = groups.pop().expect("alloc ≤ P ensured by prepare");
                if R::ENABLED {
                    group_pops += 1;
                    // Sampled heap-pop probe: every `POP_SAMPLE`-th pop
                    // lands on the event timeline (flight recorder) or
                    // bumps a counter (stats). Power-of-two mask, and the
                    // whole branch folds away under the no-op recorder.
                    // 4096 keeps the flight-recorder overhead on a full
                    // n=100 evaluation (a few thousand pops) near one
                    // sampled event — the ≤5% tracing budget leaves no
                    // room for an event every 512 pops.
                    const POP_SAMPLE: u64 = 4096;
                    if group_pops & (POP_SAMPLE - 1) == 0 {
                        rec.event("sched.pop.sample", group_pops);
                    }
                }
                let count = group_count(run);
                if count > need {
                    // The count lives in the low 32 bits: subtracting edits
                    // it in place without touching the (time, seq) key.
                    remainder = run - need as u128;
                    need = 0;
                } else {
                    need -= count;
                }
            }
            // Runs pop in nondecreasing availability order, so the last one
            // visited carries the s(v)-th smallest free time.
            let procs_free = group_avail(run);
            let start = data_ready[v].max(procs_free);
            let lower_bound = start + bl[v];
            if lower_bound > threshold {
                if R::ENABLED {
                    rec.add("sched.tasks_placed", tasks_placed);
                    rec.add("sched.group_pops", group_pops);
                    rec.add("sched.group_pushes", group_pushes);
                    rec.add("sched.rejections", 1);
                }
                return BoundedEval::Rejected;
            }
            reject_key = reject_key.max(lower_bound);
            let finish = start + times[v];
            if remainder != 0 {
                groups.push(remainder);
                if R::ENABLED {
                    group_pushes += 1;
                }
            }
            groups.push(group_entry(finish, next_seq, s));
            next_seq += 1;
            makespan = makespan.max(finish);
            if R::ENABLED {
                group_pushes += 1;
                tasks_placed += 1;
            }
            for &w in csr.successors(v as u32) {
                let wi = w as usize;
                data_ready[wi] = data_ready[wi].max(finish);
                in_deg[wi] -= 1;
                if in_deg[wi] == 0 {
                    ready.push(ready_entry(bl[wi], w));
                }
            }
        }
        if R::ENABLED {
            rec.add("sched.tasks_placed", tasks_placed);
            rec.add("sched.group_pops", group_pops);
            rec.add("sched.group_pushes", group_pushes);
        }
        BoundedEval::Complete {
            makespan,
            reject_key,
        }
    }
}

impl Mapper for ListScheduler {
    fn map(&self, g: &Ptg, matrix: &TimeMatrix, alloc: &Allocation) -> Schedule {
        let p_total = matrix.p_max();
        SHARED_SCRATCH.with_borrow_mut(|scratch| {
            Self::prepare_into(g, matrix, alloc, scratch);
            let mut placements = Vec::with_capacity(g.task_count());
            let outcome = Self::schedule_core(
                g,
                alloc,
                p_total,
                f64::INFINITY,
                scratch,
                |task, start, finish, popped| {
                    let mut processors: Vec<u32> = popped.iter().map(|&(_, q)| q).collect();
                    processors.sort_unstable();
                    placements.push(Placement {
                        task,
                        start,
                        finish,
                        processors,
                    });
                },
            );
            debug_assert!(matches!(outcome, BoundedEval::Complete { .. }));
            Schedule::new(p_total, placements)
        })
    }

    /// Makespan-only evaluation: the same placement routine with placement
    /// recording compiled out — this is the EA's inner loop.
    // lint:hot-path
    fn makespan(&self, g: &Ptg, matrix: &TimeMatrix, alloc: &Allocation) -> f64 {
        SHARED_SCRATCH
            .with_borrow_mut(|scratch| {
                self.makespan_bounded_with(g, matrix, alloc, f64::INFINITY, scratch)
            })
            .expect("infinite cutoff never rejects")
    }

    fn name(&self) -> &'static str {
        "list"
    }
}

impl ListScheduler {
    /// Makespan evaluation with early rejection — the paper's proposed
    /// future-work optimization ("reject solutions if the current schedule
    /// does not meet certain conditions while the algorithm is still in the
    /// mapping phase", §VI).
    ///
    /// Returns `None` as soon as the partial schedule *provably* exceeds
    /// `cutoff`: when a task starts at time `t`, the final makespan is at
    /// least `t + bl(v)` (its bottom level still has to execute), so the
    /// construction can stop without finishing the schedule. For a task
    /// mapped below the cutoff the bound is exact at the sink, hence
    /// `makespan_bounded(..., f64::INFINITY)` always returns
    /// `Some(makespan)` equal to [`Mapper::makespan`].
    // lint:hot-path
    pub fn makespan_bounded(
        &self,
        g: &Ptg,
        matrix: &TimeMatrix,
        alloc: &Allocation,
        cutoff: f64,
    ) -> Option<f64> {
        SHARED_SCRATCH.with_borrow_mut(|scratch| {
            self.makespan_bounded_with(g, matrix, alloc, cutoff, scratch)
        })
    }

    /// [`Self::makespan_bounded`] with caller-provided buffers: after the
    /// first call on a given problem size, evaluation performs **zero heap
    /// allocations**. This is the entry point the EA's evaluation engine
    /// uses, one scratch per worker thread.
    // lint:hot-path
    pub fn makespan_bounded_with(
        &self,
        g: &Ptg,
        matrix: &TimeMatrix,
        alloc: &Allocation,
        cutoff: f64,
        scratch: &mut EvalScratch,
    ) -> Option<f64> {
        match self.evaluate_bounded_with(g, matrix, alloc, cutoff, scratch) {
            BoundedEval::Complete { makespan, .. } => Some(makespan),
            BoundedEval::Rejected => None,
        }
    }

    /// Like [`Self::makespan_bounded_with`], but a completed evaluation
    /// also reports its rejection key (see [`BoundedEval`]) so callers can
    /// memoize accept/reject decisions exactly.
    // lint:hot-path
    pub fn evaluate_bounded_with(
        &self,
        g: &Ptg,
        matrix: &TimeMatrix,
        alloc: &Allocation,
        cutoff: f64,
        scratch: &mut EvalScratch,
    ) -> BoundedEval {
        self.evaluate_bounded_obs(g, matrix, alloc, cutoff, scratch, &NoopRecorder)
    }

    /// [`Self::evaluate_bounded_with`] with telemetry: heap-operation
    /// counters and rejection counts flow into `rec` (see
    /// `schedule_core_grouped` for the counter names). With
    /// [`obs::NoopRecorder`] this *is* `evaluate_bounded_with` — every
    /// probe compiles away.
    // lint:hot-path
    pub fn evaluate_bounded_obs<R: Recorder>(
        &self,
        g: &Ptg,
        matrix: &TimeMatrix,
        alloc: &Allocation,
        cutoff: f64,
        scratch: &mut EvalScratch,
        rec: &R,
    ) -> BoundedEval {
        Self::prepare_into(g, matrix, alloc, scratch);
        Self::schedule_core_grouped(g, alloc, matrix.p_max(), cutoff, scratch, rec)
    }

    /// The straightforward per-processor evaluation, retained as the
    /// correctness oracle for the grouped SoA fitness core: comparator-driven
    /// `BinaryHeap`s, pointer adjacency, one heap entry per processor —
    /// the pre-refactor implementation, algorithm for algorithm. Produces
    /// bit-identical results to [`Self::makespan_bounded`].
    // lint:hot-path
    pub fn makespan_bounded_reference(
        &self,
        g: &Ptg,
        matrix: &TimeMatrix,
        alloc: &Allocation,
        cutoff: f64,
    ) -> Option<f64> {
        SHARED_SCRATCH.with_borrow_mut(|scratch| {
            Self::prepare_into(g, matrix, alloc, scratch);
            match Self::schedule_core(g, alloc, matrix.p_max(), cutoff, scratch, |_, _, _, _| {}) {
                BoundedEval::Complete { makespan, .. } => Some(makespan),
                BoundedEval::Rejected => None,
            }
        })
    }
}

/// Total-ordered wrapper for finite f64 heap keys.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrderedF64(pub(crate) f64);

impl Eq for OrderedF64 {}
impl PartialOrd for OrderedF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    // Same rationale as `ReadyTask::cmp`: keep heap comparisons inlinable
    // from other crates' monomorphizations of the fitness core.
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("finite times")
    }
}

/// Insertion-based (backfilling) list scheduler.
///
/// Tasks are considered in the same bottom-level order, but each task may be
/// inserted into the earliest time window, possibly *before* previously
/// placed work, as long as `s(v)` processors are simultaneously idle for its
/// whole duration.
#[derive(Debug, Clone, Copy, Default)]
pub struct InsertionScheduler;

impl Mapper for InsertionScheduler {
    fn map(&self, g: &Ptg, matrix: &TimeMatrix, alloc: &Allocation) -> Schedule {
        let p_total = matrix.p_max() as usize;
        let (times, bl, mut ready, mut in_deg) = ListScheduler::prepare(g, matrix, alloc);
        // Per-processor busy intervals, kept sorted by start time.
        let mut busy: Vec<Vec<(f64, f64)>> = vec![Vec::new(); p_total];
        let mut data_ready = vec![0.0f64; g.task_count()];
        let mut placements = Vec::with_capacity(g.task_count());

        while let Some(ReadyTask { task: v, .. }) = ready.pop() {
            let s = alloc.of(v) as usize;
            let d = times[v.index()];
            let r = data_ready[v.index()];
            // Candidate start times: the ready time and every interval end
            // after it. The earliest feasible candidate wins.
            let mut candidates: Vec<f64> = vec![r];
            for iv in busy.iter().flatten() {
                if iv.1 > r {
                    candidates.push(iv.1);
                }
            }
            candidates.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite times"));
            candidates.dedup();
            let mut placed: Option<(f64, Vec<u32>)> = None;
            for &t in &candidates {
                let free: Vec<u32> = (0..p_total)
                    .filter(|&q| is_free(&busy[q], t, t + d))
                    .map(|q| q as u32)
                    .collect();
                if free.len() >= s {
                    placed = Some((t, free[..s].to_vec()));
                    break;
                }
            }
            let (start, processors) =
                placed.expect("the time after all work finishes is always feasible");
            let finish = start + d;
            for &q in &processors {
                let list = &mut busy[q as usize];
                let pos = list
                    .binary_search_by(|iv| iv.0.partial_cmp(&start).expect("finite times"))
                    .unwrap_or_else(|e| e);
                list.insert(pos, (start, finish));
            }
            placements.push(Placement {
                task: v,
                start,
                finish,
                processors,
            });
            for &w in g.successors(v) {
                data_ready[w.index()] = data_ready[w.index()].max(finish);
                in_deg[w.index()] -= 1;
                if in_deg[w.index()] == 0 {
                    ready.push(ReadyTask {
                        bl: bl[w.index()],
                        task: w,
                    });
                }
            }
        }
        Schedule::new(p_total as u32, placements)
    }

    fn name(&self) -> &'static str {
        "insertion"
    }
}

/// True if processor `q` (busy intervals sorted by start) is idle during the
/// whole window `[start, finish)`.
fn is_free(busy: &[(f64, f64)], start: f64, finish: f64) -> bool {
    busy.iter().all(|&(s, f)| finish <= s || f <= start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exec_model::Amdahl;
    use ptg::PtgBuilder;

    /// Fork-join: src -> {a, b, c} -> sink, all 1 GFLOP fully parallel,
    /// on a 4-processor 1 GFLOPS platform.
    fn fork_join() -> Ptg {
        let mut b = PtgBuilder::new();
        let src = b.add_task("src", 1e9, 0.0);
        let mids: Vec<_> = (0..3)
            .map(|i| b.add_task(format!("m{i}"), 1e9, 0.0))
            .collect();
        let sink = b.add_task("sink", 1e9, 0.0);
        for &m in &mids {
            b.add_edge(src, m).unwrap();
            b.add_edge(m, sink).unwrap();
        }
        b.build().unwrap()
    }

    fn matrix(g: &Ptg, p: u32) -> TimeMatrix {
        TimeMatrix::compute(g, &Amdahl, 1e9, p)
    }

    #[test]
    fn sequential_allocation_runs_middles_concurrently() {
        let g = fork_join();
        let m = matrix(&g, 4);
        let s = ListScheduler.map(&g, &m, &Allocation::ones(5));
        // src: 1s; three mids in parallel on 3 procs: 1s; sink: 1s → 3s.
        assert!((s.makespan() - 3.0).abs() < 1e-9, "got {}", s.makespan());
    }

    #[test]
    fn wide_allocation_serializes_middles() {
        let g = fork_join();
        let m = matrix(&g, 4);
        // Middles take all 4 procs each: 0.25 s each but serialized.
        let alloc = Allocation::from_vec(vec![4, 4, 4, 4, 4]);
        let s = ListScheduler.map(&g, &m, &alloc);
        // src 0.25 + 3 × 0.25 + sink 0.25 = 1.25 s
        assert!((s.makespan() - 1.25).abs() < 1e-9, "got {}", s.makespan());
    }

    #[test]
    fn fast_makespan_matches_full_map() {
        let g = fork_join();
        let m = matrix(&g, 4);
        for alloc in [
            Allocation::ones(5),
            Allocation::from_vec(vec![4, 2, 1, 3, 4]),
            Allocation::from_vec(vec![2, 2, 2, 2, 2]),
        ] {
            let full = ListScheduler.map(&g, &m, &alloc).makespan();
            let fast = ListScheduler.makespan(&g, &m, &alloc);
            assert!(
                (full - fast).abs() < 1e-9,
                "alloc {alloc:?}: {full} vs {fast}"
            );
        }
    }

    #[test]
    fn schedules_are_valid() {
        let g = fork_join();
        let m = matrix(&g, 4);
        let alloc = Allocation::from_vec(vec![3, 2, 2, 1, 4]);
        for mapper in [&ListScheduler as &dyn Mapper, &InsertionScheduler] {
            let s = mapper.map(&g, &m, &alloc);
            crate::validate::validate_schedule(&g, &m, &alloc, &s)
                .unwrap_or_else(|e| panic!("{}: {e}", mapper.name()));
        }
    }

    #[test]
    fn insertion_never_loses_to_list_on_samples() {
        let g = fork_join();
        let m = matrix(&g, 4);
        for alloc in [
            Allocation::ones(5),
            Allocation::from_vec(vec![4, 3, 1, 1, 2]),
            Allocation::from_vec(vec![1, 4, 4, 1, 1]),
        ] {
            let list = ListScheduler.map(&g, &m, &alloc).makespan();
            let ins = InsertionScheduler.map(&g, &m, &alloc).makespan();
            assert!(ins <= list + 1e-9, "insertion worse: {ins} vs {list}");
        }
    }

    #[test]
    fn insertion_backfills_into_gaps() {
        // Two independent chains force a gap for the list scheduler:
        //   a1(long, all procs) ; b1(short,1p) -> b2(short,1p)
        // With priorities, list runs a1 first on all procs; insertion can
        // squeeze b-chain before/alongside.
        let mut b = PtgBuilder::new();
        let a1 = b.add_task("a1", 8e9, 0.0); // 2s on 4 procs
        let b1 = b.add_task("b1", 1e9, 0.0);
        let b2 = b.add_task("b2", 1e9, 0.0);
        b.add_edge(b1, b2).unwrap();
        let g = b.build().unwrap();
        let m = matrix(&g, 4);
        let alloc = Allocation::from_vec(vec![4, 1, 1]);
        let list = ListScheduler.map(&g, &m, &alloc).makespan();
        let ins = InsertionScheduler.map(&g, &m, &alloc).makespan();
        assert!(ins <= list + 1e-9);
        let _ = a1;
    }

    #[test]
    fn priority_prefers_larger_bottom_level() {
        // Two ready tasks, one processor: the one heading the longer chain
        // must run first.
        let mut b = PtgBuilder::new();
        let short = b.add_task("short", 1e9, 0.0);
        let long_head = b.add_task("lh", 1e9, 0.0);
        let long_tail = b.add_task("lt", 5e9, 0.0);
        b.add_edge(long_head, long_tail).unwrap();
        let g = b.build().unwrap();
        let m = matrix(&g, 1);
        let s = ListScheduler.map(&g, &m, &Allocation::ones(3));
        assert!(s.placement(long_head).start < s.placement(short).start);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = fork_join();
        let m = matrix(&g, 4);
        let alloc = Allocation::from_vec(vec![2, 3, 1, 2, 4]);
        let s1 = ListScheduler.map(&g, &m, &alloc);
        let s2 = ListScheduler.map(&g, &m, &alloc);
        assert_eq!(s1, s2);
    }

    #[test]
    fn bounded_makespan_with_infinite_cutoff_matches_exact() {
        let g = fork_join();
        let m = matrix(&g, 4);
        for alloc in [
            Allocation::ones(5),
            Allocation::from_vec(vec![4, 2, 1, 3, 4]),
        ] {
            let exact = ListScheduler.makespan(&g, &m, &alloc);
            let bounded = ListScheduler
                .makespan_bounded(&g, &m, &alloc, f64::INFINITY)
                .expect("infinite cutoff never rejects");
            assert!((exact - bounded).abs() < 1e-12);
        }
    }

    #[test]
    fn bounded_makespan_rejects_above_cutoff_and_accepts_below() {
        let g = fork_join();
        let m = matrix(&g, 4);
        let alloc = Allocation::ones(5);
        let exact = ListScheduler.makespan(&g, &m, &alloc);
        assert_eq!(
            ListScheduler.makespan_bounded(&g, &m, &alloc, exact * 0.9),
            None,
            "cutoff below the real makespan must reject"
        );
        let accepted = ListScheduler.makespan_bounded(&g, &m, &alloc, exact * 1.1);
        assert_eq!(accepted, Some(exact));
        // cutoff exactly at the makespan: bound start+bl never exceeds it
        assert_eq!(
            ListScheduler.makespan_bounded(&g, &m, &alloc, exact),
            Some(exact)
        );
    }

    #[test]
    fn rejection_is_sound_never_rejects_schedules_within_cutoff() {
        // For a spread of allocations, whenever the exact makespan is within
        // the cutoff, the bounded version must return it.
        let g = fork_join();
        let m = matrix(&g, 4);
        for a0 in 1..=4u32 {
            for a2 in 1..=4u32 {
                let alloc = Allocation::from_vec(vec![a0, 2, a2, 1, 3]);
                let exact = ListScheduler.makespan(&g, &m, &alloc);
                for cutoff_factor in [1.0, 1.5, 3.0] {
                    let cutoff = exact * cutoff_factor;
                    let got = ListScheduler.makespan_bounded(&g, &m, &alloc, cutoff);
                    assert_eq!(got, Some(exact), "alloc {alloc:?} cutoff {cutoff}");
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_evaluation() {
        let g = fork_join();
        let m = matrix(&g, 4);
        let mut scratch = EvalScratch::new();
        for alloc in [
            Allocation::ones(5),
            Allocation::from_vec(vec![4, 2, 1, 3, 4]),
            Allocation::from_vec(vec![2, 2, 2, 2, 2]),
            Allocation::from_vec(vec![1, 4, 4, 1, 1]),
        ] {
            let fresh = ListScheduler.makespan(&g, &m, &alloc);
            let reused = ListScheduler
                .makespan_bounded_with(&g, &m, &alloc, f64::INFINITY, &mut scratch)
                .expect("infinite cutoff never rejects");
            assert_eq!(fresh.to_bits(), reused.to_bits(), "alloc {alloc:?}");
        }
    }

    #[test]
    fn scratch_survives_changing_problem_sizes() {
        // A stale scratch from a bigger problem must not leak into a smaller
        // one (and vice versa).
        let big = fork_join();
        let big_m = matrix(&big, 4);
        let mut b = PtgBuilder::new();
        let x = b.add_task("x", 1e9, 0.0);
        let y = b.add_task("y", 2e9, 0.0);
        b.add_edge(x, y).unwrap();
        let small = b.build().unwrap();
        let small_m = matrix(&small, 2);

        let mut scratch = EvalScratch::new();
        let alloc_big = Allocation::from_vec(vec![4, 2, 1, 3, 4]);
        let alloc_small = Allocation::from_vec(vec![2, 1]);
        for _ in 0..2 {
            let r_big = ListScheduler
                .makespan_bounded_with(&big, &big_m, &alloc_big, f64::INFINITY, &mut scratch)
                .unwrap();
            assert_eq!(r_big, ListScheduler.makespan(&big, &big_m, &alloc_big));
            let r_small = ListScheduler
                .makespan_bounded_with(&small, &small_m, &alloc_small, f64::INFINITY, &mut scratch)
                .unwrap();
            assert_eq!(
                r_small,
                ListScheduler.makespan(&small, &small_m, &alloc_small)
            );
        }
    }

    #[test]
    fn reject_key_reproduces_cutoff_decisions() {
        // For a completed evaluation, `reject_key > cutoff * (1 + 1e-9)`
        // must agree with the engine's own accept/reject for any cutoff.
        let g = fork_join();
        let m = matrix(&g, 4);
        let mut scratch = EvalScratch::new();
        for alloc in [
            Allocation::ones(5),
            Allocation::from_vec(vec![4, 2, 1, 3, 4]),
            Allocation::from_vec(vec![1, 4, 4, 1, 1]),
        ] {
            let BoundedEval::Complete {
                makespan,
                reject_key,
            } = ListScheduler.evaluate_bounded_with(&g, &m, &alloc, f64::INFINITY, &mut scratch)
            else {
                panic!("infinite cutoff never rejects");
            };
            for factor in [0.3, 0.8, 0.95, 1.0, 1.05, 2.0] {
                let cutoff = makespan * factor;
                let engine = ListScheduler.makespan_bounded(&g, &m, &alloc, cutoff);
                let memo = if reject_key > cutoff * (1.0 + 1e-9) {
                    None
                } else {
                    Some(makespan)
                };
                assert_eq!(engine, memo, "alloc {alloc:?} cutoff {cutoff}");
            }
        }
    }

    #[test]
    fn grouped_core_is_bit_identical_to_per_processor_reference() {
        // The fitness path tracks processor availability as (time, count)
        // runs; the full mapper keeps individual processors. Same multiset
        // of free times → bit-identical start/finish times.
        let g = fork_join();
        let m = matrix(&g, 4);
        for alloc in [
            Allocation::ones(5),
            Allocation::from_vec(vec![4, 2, 1, 3, 4]),
            Allocation::from_vec(vec![2, 3, 2, 1, 2]),
            Allocation::from_vec(vec![1, 4, 4, 1, 1]),
        ] {
            let reference = ListScheduler
                .makespan_bounded_reference(&g, &m, &alloc, f64::INFINITY)
                .expect("infinite cutoff never rejects");
            let grouped = ListScheduler.makespan(&g, &m, &alloc);
            assert_eq!(reference.to_bits(), grouped.to_bits(), "alloc {alloc:?}");
            let mapped = ListScheduler.map(&g, &m, &alloc).makespan();
            assert_eq!(reference.to_bits(), mapped.to_bits(), "alloc {alloc:?}");
            for factor in [0.5, 0.9, 1.0, 1.1] {
                let cutoff = reference * factor;
                assert_eq!(
                    ListScheduler.makespan_bounded_reference(&g, &m, &alloc, cutoff),
                    ListScheduler.makespan_bounded(&g, &m, &alloc, cutoff),
                    "alloc {alloc:?} cutoff {cutoff}"
                );
            }
        }
    }

    #[test]
    fn recorded_evaluation_counts_heap_ops_and_rejections() {
        use obs::StatsRecorder;
        let g = fork_join();
        let m = matrix(&g, 4);
        let alloc = Allocation::from_vec(vec![4, 2, 1, 3, 4]);
        let mut scratch = EvalScratch::new();
        let rec = StatsRecorder::new();
        let plain =
            ListScheduler.evaluate_bounded_with(&g, &m, &alloc, f64::INFINITY, &mut scratch);
        let recorded =
            ListScheduler.evaluate_bounded_obs(&g, &m, &alloc, f64::INFINITY, &mut scratch, &rec);
        assert_eq!(plain, recorded, "telemetry must not change results");
        assert_eq!(rec.counter("sched.tasks_placed"), g.task_count() as u64);
        assert!(rec.counter("sched.group_pops") >= g.task_count() as u64);
        assert!(rec.counter("sched.group_pushes") >= g.task_count() as u64);
        assert_eq!(rec.counter("sched.rejections"), 0);

        // A cutoff below the real makespan must be counted as a rejection.
        let BoundedEval::Complete { makespan, .. } = recorded else {
            panic!("infinite cutoff never rejects");
        };
        let outcome =
            ListScheduler.evaluate_bounded_obs(&g, &m, &alloc, makespan * 0.5, &mut scratch, &rec);
        assert_eq!(outcome, BoundedEval::Rejected);
        assert_eq!(rec.counter("sched.rejections"), 1);
    }

    #[test]
    #[should_panic(expected = "allocation exceeds platform")]
    fn over_allocation_panics() {
        let g = fork_join();
        let m = matrix(&g, 4);
        let _ = ListScheduler.map(&g, &m, &Allocation::from_vec(vec![5, 1, 1, 1, 1]));
    }
}
