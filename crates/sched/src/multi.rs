//! Multi-cluster scheduling (extension).
//!
//! Extends the two-step framework to [`platform::grid::Grid`] platforms:
//! a task is *assigned* to one cluster and *allocated* some of its
//! processors; the mapper keeps one availability pool per cluster. This is
//! the setting HCPA was designed for — the single-cluster algorithms of
//! this workspace are the degenerate case of a one-cluster grid.

use crate::schedule::Placement;
use exec_model::{ExecutionTimeModel, TimeMatrix};
use platform::grid::Grid;
use ptg::critpath::bottom_levels;
use ptg::{Ptg, TaskId};
use serde::{Deserialize, Serialize};

/// Pre-computed time matrices, one per cluster of a grid.
#[derive(Debug, Clone)]
pub struct GridTimeMatrix {
    per_cluster: Vec<TimeMatrix>,
}

impl GridTimeMatrix {
    /// Evaluates `model` for every task at every width on every cluster.
    pub fn compute<M: ExecutionTimeModel + ?Sized>(g: &Ptg, model: &M, grid: &Grid) -> Self {
        GridTimeMatrix {
            per_cluster: grid
                .clusters
                .iter()
                .map(|c| TimeMatrix::compute(g, model, c.speed_flops(), c.processors))
                .collect(),
        }
    }

    /// The time matrix of cluster `k`.
    pub fn cluster(&self, k: usize) -> &TimeMatrix {
        &self.per_cluster[k]
    }

    /// Number of clusters covered.
    pub fn cluster_count(&self) -> usize {
        self.per_cluster.len()
    }
}

/// Per-task grid allocation: which cluster, how many of its processors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridAllocation {
    /// `(cluster index, processor count)` per task.
    pub per_task: Vec<(u32, u32)>,
}

impl GridAllocation {
    /// Validates against a grid: cluster indices in range, widths within
    /// the chosen cluster.
    pub fn is_valid_for(&self, g: &Ptg, grid: &Grid) -> bool {
        self.per_task.len() == g.task_count()
            && self.per_task.iter().all(|&(k, p)| {
                (k as usize) < grid.cluster_count()
                    && p >= 1
                    && p <= grid.clusters[k as usize].processors
            })
    }
}

/// One task's placement on a grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridPlacement {
    /// Cluster executing the task.
    pub cluster: u32,
    /// The within-cluster placement (processor indices are local to the
    /// cluster).
    pub placement: Placement,
}

/// A complete multi-cluster schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSchedule {
    /// One entry per task, indexed by [`TaskId::index`].
    pub placements: Vec<GridPlacement>,
}

impl GridSchedule {
    /// The schedule's makespan.
    pub fn makespan(&self) -> f64 {
        self.placements
            .iter()
            .map(|p| p.placement.finish)
            .fold(0.0, f64::max)
    }

    /// The placement of task `v`.
    pub fn placement(&self, v: TaskId) -> &GridPlacement {
        &self.placements[v.index()]
    }
}

/// List scheduling over a grid: ready tasks by decreasing bottom level;
/// each task starts on its assigned cluster's earliest-free processors.
///
/// Bottom levels use each task's time on its *assigned* cluster and width,
/// mirroring the single-cluster mapper exactly.
pub fn map_on_grid(
    g: &Ptg,
    matrices: &GridTimeMatrix,
    alloc: &GridAllocation,
    grid: &Grid,
) -> GridSchedule {
    assert!(alloc.is_valid_for(g, grid), "invalid grid allocation");
    let times: Vec<f64> = alloc
        .per_task
        .iter()
        .enumerate()
        .map(|(i, &(k, p))| matrices.cluster(k as usize).time(TaskId::from_index(i), p))
        .collect();
    let bl = bottom_levels(g, &times);
    let mut in_deg: Vec<usize> = g.task_ids().map(|v| g.in_degree(v)).collect();
    let mut ready: Vec<TaskId> = g.task_ids().filter(|&v| in_deg[v.index()] == 0).collect();
    let mut avail: Vec<Vec<f64>> = grid
        .clusters
        .iter()
        .map(|c| vec![0.0; c.processors as usize])
        .collect();
    let mut data_ready = vec![0.0f64; g.task_count()];
    let mut placements: Vec<Option<GridPlacement>> = vec![None; g.task_count()];

    while !ready.is_empty() {
        // Highest bottom level first; ties by smaller id.
        let (idx, _) = ready
            .iter()
            .enumerate()
            .max_by(|a, b| {
                bl[a.1.index()]
                    .partial_cmp(&bl[b.1.index()])
                    .expect("finite bottom levels")
                    .then(b.1.cmp(a.1))
            })
            .expect("ready set non-empty");
        let v = ready.swap_remove(idx);
        let (k, width) = alloc.per_task[v.index()];
        let pool = &mut avail[k as usize];
        let mut order: Vec<u32> = (0..pool.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            pool[a as usize]
                .partial_cmp(&pool[b as usize])
                .expect("finite availability")
                .then(a.cmp(&b))
        });
        let chosen = &order[..width as usize];
        let start = data_ready[v.index()].max(pool[chosen[width as usize - 1] as usize]);
        let finish = start + times[v.index()];
        let mut processors: Vec<u32> = chosen.to_vec();
        processors.sort_unstable();
        for &q in &processors {
            pool[q as usize] = finish;
        }
        placements[v.index()] = Some(GridPlacement {
            cluster: k,
            placement: Placement {
                task: v,
                start,
                finish,
                processors,
            },
        });
        for &w in g.successors(v) {
            data_ready[w.index()] = data_ready[w.index()].max(finish);
            in_deg[w.index()] -= 1;
            if in_deg[w.index()] == 0 {
                ready.push(w);
            }
        }
    }
    GridSchedule {
        placements: placements
            .into_iter()
            .map(|p| p.expect("all tasks scheduled"))
            .collect(),
    }
}

/// Validates a grid schedule: dependencies respected; within every
/// cluster, no processor runs two overlapping tasks.
pub fn validate_grid_schedule(g: &Ptg, grid: &Grid, schedule: &GridSchedule) -> Result<(), String> {
    if schedule.placements.len() != g.task_count() {
        return Err(format!(
            "schedule covers {} tasks, PTG has {}",
            schedule.placements.len(),
            g.task_count()
        ));
    }
    for (a, b) in g.edges() {
        let fa = schedule.placement(a).placement.finish;
        let sb = schedule.placement(b).placement.start;
        if sb + 1e-9 * fa.max(1.0) < fa {
            return Err(format!("{b} starts before predecessor {a} finishes"));
        }
    }
    for (k, cluster) in grid.clusters.iter().enumerate() {
        let mut per_proc: Vec<Vec<(f64, f64)>> = vec![Vec::new(); cluster.processors as usize];
        for gp in &schedule.placements {
            if gp.cluster as usize != k {
                continue;
            }
            for &q in &gp.placement.processors {
                per_proc[q as usize].push((gp.placement.start, gp.placement.finish));
            }
        }
        for (q, intervals) in per_proc.iter_mut().enumerate() {
            intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
            for w in intervals.windows(2) {
                if w[1].0 + 1e-9 * w[0].1.max(1.0) < w[0].1 {
                    return Err(format!("overlap on cluster {k} processor {q}"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use exec_model::Amdahl;
    use platform::grid::grid5000_pair;
    use platform::Cluster;
    use ptg::PtgBuilder;

    fn fork(workers: usize) -> Ptg {
        let mut b = PtgBuilder::new();
        let src = b.add_task("src", 1e9, 0.0);
        for i in 0..workers {
            let w = b.add_task(format!("w{i}"), 8e9, 0.0);
            b.add_edge(src, w).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn grid_mapping_produces_valid_schedules() {
        let g = fork(4);
        let grid = grid5000_pair();
        let m = GridTimeMatrix::compute(&g, &Amdahl, &grid);
        // src on Chti; two workers per cluster
        let alloc = GridAllocation {
            per_task: vec![(0, 4), (0, 8), (0, 8), (1, 16), (1, 16)],
        };
        let s = map_on_grid(&g, &m, &alloc, &grid);
        validate_grid_schedule(&g, &grid, &s).unwrap();
        assert!(s.makespan() > 0.0);
    }

    #[test]
    fn one_cluster_grid_matches_the_flat_mapper() {
        use crate::{Allocation, ListScheduler, Mapper};
        let g = fork(3);
        let cluster = Cluster::new("only", 8, 2.0);
        let grid = Grid::new("solo", vec![cluster.clone()]);
        let gm = GridTimeMatrix::compute(&g, &Amdahl, &grid);
        let flat_m = TimeMatrix::compute(&g, &Amdahl, cluster.speed_flops(), cluster.processors);
        let widths = [2u32, 4, 1, 3];
        let grid_alloc = GridAllocation {
            per_task: widths.iter().map(|&p| (0, p)).collect(),
        };
        let flat_alloc = Allocation::from_vec(widths.to_vec());
        let grid_ms = map_on_grid(&g, &gm, &grid_alloc, &grid).makespan();
        let flat_ms = ListScheduler.makespan(&g, &flat_m, &flat_alloc);
        assert!((grid_ms - flat_ms).abs() < 1e-9, "{grid_ms} vs {flat_ms}");
    }

    #[test]
    fn clusters_work_concurrently() {
        // Two independent heavy tasks on different clusters overlap in time.
        let mut b = PtgBuilder::new();
        b.add_task("a", 8e9, 0.0);
        b.add_task("b", 8e9, 0.0);
        let g = b.build().unwrap();
        let grid = grid5000_pair();
        let m = GridTimeMatrix::compute(&g, &Amdahl, &grid);
        let alloc = GridAllocation {
            per_task: vec![(0, 20), (1, 120)],
        };
        let s = map_on_grid(&g, &m, &alloc, &grid);
        let a = &s.placement(TaskId(0)).placement;
        let c = &s.placement(TaskId(1)).placement;
        assert_eq!(a.start, 0.0);
        assert_eq!(c.start, 0.0, "different clusters need not serialize");
    }

    #[test]
    fn invalid_cluster_index_is_rejected() {
        let g = fork(1);
        let grid = grid5000_pair();
        let alloc = GridAllocation {
            per_task: vec![(5, 1), (0, 1)],
        };
        assert!(!alloc.is_valid_for(&g, &grid));
    }

    #[test]
    fn validator_catches_dependency_violation() {
        let mut b = PtgBuilder::new();
        let a = b.add_task("a", 1e9, 0.0);
        let c = b.add_task("c", 1e9, 0.0);
        b.add_edge(a, c).unwrap();
        let g = b.build().unwrap();
        let grid = grid5000_pair();
        let bad = GridSchedule {
            placements: vec![
                GridPlacement {
                    cluster: 0,
                    placement: Placement {
                        task: a,
                        start: 0.0,
                        finish: 1.0,
                        processors: vec![0],
                    },
                },
                GridPlacement {
                    cluster: 1,
                    placement: Placement {
                        task: c,
                        start: 0.5,
                        finish: 1.5,
                        processors: vec![0],
                    },
                },
            ],
        };
        assert!(validate_grid_schedule(&g, &grid, &bad).is_err());
    }
}
