//! Gantt-chart rendering (text and SVG) — regenerates the paper's Figure 6.

use crate::schedule::Schedule;
use ptg::Ptg;
use std::fmt;

/// Writes an ASCII Gantt chart to any [`fmt::Write`] sink, propagating
/// write errors instead of panicking. See [`ascii_gantt`].
pub fn write_ascii_gantt<W: fmt::Write>(
    out: &mut W,
    schedule: &Schedule,
    width: usize,
) -> fmt::Result {
    assert!(width >= 4, "chart width too small");
    let makespan = schedule.makespan();
    if makespan <= 0.0 {
        return writeln!(out, "(empty schedule)");
    }
    let dt = makespan / width as f64;
    // cell[proc][col] = Some(task)
    let mut cells: Vec<Vec<Option<u32>>> = vec![vec![None; width]; schedule.processors as usize];
    for p in &schedule.placements {
        // Sample the *midpoint* of each column so short tasks still show.
        let c0 = ((p.start / dt).floor() as usize).min(width - 1);
        let c1 = ((p.finish / dt).ceil() as usize).clamp(c0 + 1, width);
        for &q in &p.processors {
            for cell in &mut cells[q as usize][c0..c1] {
                *cell = Some(p.task.0);
            }
        }
    }
    writeln!(
        out,
        "time: 0 .. {makespan:.3} s  ({width} cols, {dt:.3} s/col)"
    )?;
    for (q, row) in cells.iter().enumerate() {
        write!(out, "P{q:>3} |")?;
        for cell in row {
            match cell {
                Some(t) => write!(out, "{:02}", t % 100)?,
                None => out.write_str(" .")?,
            }
        }
        out.write_char('\n')?;
    }
    Ok(())
}

/// Renders an ASCII Gantt chart: one row per processor, time binned into
/// `width` columns. Each cell shows the last two digits of the task id
/// running there (`.` = idle).
pub fn ascii_gantt(schedule: &Schedule, width: usize) -> String {
    let mut out = String::new();
    // Writing to a String cannot fail.
    let _ = write_ascii_gantt(&mut out, schedule, width);
    out
}

/// Options for SVG rendering.
#[derive(Debug, Clone)]
pub struct SvgOptions {
    /// Chart width in pixels (time axis).
    pub width_px: u32,
    /// Height of one processor row in pixels.
    pub row_px: u32,
    /// Show task names inside boxes that are wide enough.
    pub labels: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width_px: 900,
            row_px: 12,
            labels: true,
        }
    }
}

/// Writes the schedule as a standalone SVG document to any [`fmt::Write`]
/// sink, propagating write errors instead of panicking. See [`svg_gantt`].
pub fn write_svg_gantt<W: fmt::Write>(
    out: &mut W,
    g: &Ptg,
    schedule: &Schedule,
    opts: &SvgOptions,
) -> fmt::Result {
    let makespan = schedule.makespan().max(1e-12);
    let w = opts.width_px as f64;
    let rows = schedule.processors;
    let h = (rows * opts.row_px) as f64 + 30.0;
    writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {} {}">"#,
        opts.width_px, h as u32, opts.width_px, h as u32
    )?;
    writeln!(out, r#"<rect width="100%" height="100%" fill="white"/>"#)?;
    for p in &schedule.placements {
        let x = p.start / makespan * w;
        let bw = ((p.finish - p.start) / makespan * w).max(0.5);
        let color = task_color(p.task.0);
        // Contiguous processor runs render as one tall rectangle.
        for run in contiguous_runs(&p.processors) {
            let y = (run.0 * opts.row_px) as f64;
            let bh = ((run.1 - run.0 + 1) * opts.row_px) as f64;
            writeln!(
                out,
                r#"<rect x="{x:.2}" y="{y:.2}" width="{bw:.2}" height="{bh:.2}" fill="{color}" stroke="black" stroke-width="0.4"/>"#
            )?;
            if opts.labels && bw > 28.0 && bh >= 10.0 {
                writeln!(
                    out,
                    r#"<text x="{:.2}" y="{:.2}" font-size="8" font-family="monospace">{}</text>"#,
                    x + 2.0,
                    y + bh / 2.0 + 3.0,
                    xml_escape(&g.task(p.task).name)
                )?;
            }
        }
    }
    // time axis
    let axis_y = (rows * opts.row_px) as f64 + 12.0;
    writeln!(
        out,
        r#"<text x="0" y="{axis_y:.0}" font-size="10" font-family="monospace">0 s</text>"#
    )?;
    writeln!(
        out,
        r#"<text x="{:.0}" y="{axis_y:.0}" font-size="10" font-family="monospace" text-anchor="end">{makespan:.2} s</text>"#,
        w
    )?;
    writeln!(out, "</svg>")?;
    Ok(())
}

/// Renders the schedule as a standalone SVG document, one horizontal band
/// per processor, one rectangle per (task, processor-span) with a color
/// derived from the task id.
pub fn svg_gantt(g: &Ptg, schedule: &Schedule, opts: &SvgOptions) -> String {
    let mut out = String::new();
    // Writing to a String cannot fail.
    let _ = write_svg_gantt(&mut out, g, schedule, opts);
    out
}

/// Deterministic pastel color per task id.
fn task_color(id: u32) -> String {
    // Golden-ratio hue stepping gives well-separated hues.
    let hue = (id as f64 * 137.507_764) % 360.0;
    format!("hsl({hue:.0},65%,70%)")
}

/// Splits a sorted processor list into inclusive contiguous runs.
fn contiguous_runs(procs: &[u32]) -> Vec<(u32, u32)> {
    let mut runs = Vec::new();
    let mut iter = procs.iter().copied();
    if let Some(first) = iter.next() {
        let (mut lo, mut hi) = (first, first);
        for q in iter {
            if q == hi + 1 {
                hi = q;
            } else {
                runs.push((lo, hi));
                lo = q;
                hi = q;
            }
        }
        runs.push((lo, hi));
    }
    runs
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::Allocation;
    use crate::mapper::{ListScheduler, Mapper};
    use exec_model::{Amdahl, TimeMatrix};
    use ptg::PtgBuilder;

    fn sample() -> (Ptg, Schedule) {
        let mut b = PtgBuilder::new();
        let a = b.add_task("alpha", 2e9, 0.0);
        let c = b.add_task("beta", 1e9, 0.0);
        b.add_edge(a, c).unwrap();
        let g = b.build().unwrap();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 4);
        let s = ListScheduler.map(&g, &m, &Allocation::from_vec(vec![2, 4]));
        (g, s)
    }

    #[test]
    fn ascii_chart_has_one_row_per_processor() {
        let (_, s) = sample();
        let chart = ascii_gantt(&s, 20);
        let rows = chart.lines().filter(|l| l.starts_with('P')).count();
        assert_eq!(rows, 4);
        assert!(chart.contains("time: 0"));
    }

    #[test]
    fn ascii_chart_shows_busy_and_idle_cells() {
        let (_, s) = sample();
        let chart = ascii_gantt(&s, 20);
        assert!(chart.contains("00"), "task 0 visible");
        assert!(chart.contains("01"), "task 1 visible");
        assert!(chart.contains(" ."), "idle cells visible (procs 2,3 early)");
    }

    #[test]
    fn svg_contains_rect_per_task_run() {
        let (g, s) = sample();
        let svg = svg_gantt(&g, &s, &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // task 0 spans procs 0-1 (one run), task 1 spans 0-3 (one run) → ≥ 2 rects + bg
        assert!(svg.matches("<rect").count() >= 3);
        assert!(svg.contains("alpha"));
    }

    #[test]
    fn contiguous_runs_split_correctly() {
        assert_eq!(contiguous_runs(&[0, 1, 2]), vec![(0, 2)]);
        assert_eq!(contiguous_runs(&[0, 2, 3, 7]), vec![(0, 0), (2, 3), (7, 7)]);
        assert!(contiguous_runs(&[]).is_empty());
    }

    #[test]
    fn colors_are_deterministic_and_distinct() {
        assert_eq!(task_color(3), task_color(3));
        assert_ne!(task_color(3), task_color(4));
    }

    #[test]
    fn xml_escaping() {
        assert_eq!(xml_escape("a<b>&c"), "a&lt;b&gt;&amp;c");
    }
}
