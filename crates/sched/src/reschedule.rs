//! Rescheduling the unfinished remainder of a schedule after a fault.
//!
//! When a processor fails mid-execution the original placements are no
//! longer executable: pending tasks may reference the dead processor, and
//! wide tasks may no longer fit on the surviving machines. The
//! [`Rescheduler`] re-runs the paper's mapping step — ready tasks by
//! decreasing bottom level, each on the earliest-free processor set — over
//! exactly the *unfinished remainder* of the graph, on the *surviving*
//! processors, around the tasks that are still running. This is graceful
//! degradation: the plan shrinks to the machines that are left instead of
//! aborting the run.
//!
//! Invariants of the produced plan (asserted in tests):
//!
//! * every unfinished, non-running task receives exactly one placement,
//! * placements use only surviving processors, pairwise disjoint in
//!   time per processor, and never overlap a running task's processors
//!   before that task finishes,
//! * no task starts before `now`, before a predecessor's (re)planned
//!   finish, or on more processors than survive,
//! * allocations are clamped to the survivor count; durations are re-read
//!   from the time matrix at the clamped width.

use crate::allocation::Allocation;
use crate::schedule::Placement;
use exec_model::TimeMatrix;
use ptg::critpath::bottom_levels;
use ptg::{Ptg, TaskId};
use std::fmt;

/// Why a reschedule request could not produce a plan.
///
/// Bad *state shapes* (vector length mismatches) remain panics — they are
/// caller bugs — but an empty platform is a legitimate runtime outcome
/// under fault injection and churn, so it is a typed error the simulator
/// can surface as a one-line diagnostic instead of a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RescheduleError {
    /// Every processor has failed: there is nothing left to plan onto.
    NoSurvivors,
}

impl fmt::Display for RescheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RescheduleError::NoSurvivors => {
                write!(f, "no surviving processors: the whole platform is down")
            }
        }
    }
}

impl std::error::Error for RescheduleError {}

/// A task that is still executing while the rescheduler plans around it.
#[derive(Debug, Clone)]
pub struct RunningTask {
    /// The executing task.
    pub task: TaskId,
    /// Its (estimated) finish time; successors become data-ready then.
    pub finish: f64,
    /// The surviving processors it occupies until `finish`.
    pub processors: Vec<u32>,
}

/// Execution state at the moment of rescheduling.
#[derive(Debug, Clone)]
pub struct ResumeState {
    /// Current simulation time; nothing may be planned before it.
    pub now: f64,
    /// Liveness per processor index (`alive[q]` — dead processors are
    /// never used again).
    pub alive: Vec<bool>,
    /// Per-task finish time for tasks that already completed.
    pub finished: Vec<Option<f64>>,
    /// Tasks currently executing on surviving processors.
    pub running: Vec<RunningTask>,
    /// Per-processor earliest-availability floors for work *outside* the
    /// graph being planned (other jobs' in-flight or already-admitted
    /// placements). Empty means "no foreign work"; otherwise one entry per
    /// processor, and planning on processor `q` starts no earlier than
    /// `busy_until[q]`. This is what lets a backlog of independent jobs be
    /// admitted one after another onto the same machines.
    pub busy_until: Vec<f64>,
}

impl ResumeState {
    /// A state with nothing finished, nothing running, and every
    /// processor alive and free at `now`.
    pub fn fresh(tasks: usize, processors: usize, now: f64) -> Self {
        ResumeState {
            now,
            alive: vec![true; processors],
            finished: vec![None; tasks],
            running: Vec::new(),
            busy_until: Vec::new(),
        }
    }

    /// Number of surviving processors.
    pub fn survivors(&self) -> u32 {
        self.alive.iter().filter(|&&a| a).count() as u32
    }
}

/// Re-runs bottom-level list scheduling over the unfinished remainder.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rescheduler;

impl Rescheduler {
    /// Plans every unfinished, non-running task of `g` onto the surviving
    /// processors of `state`. Widths are `min(alloc(v), survivors)`;
    /// durations come from `matrix` at that width. Returns the new
    /// placements in planning (priority) order, or
    /// [`RescheduleError::NoSurvivors`] when every processor is down.
    ///
    /// Node *joins* need no special entry point: a processor that flips
    /// `alive[q]` from `false` to `true` between calls simply re-enters the
    /// availability pool (free from `max(now, busy_until[q])`), and widths
    /// clamp to the *current* survivor count, so capacity growth is picked
    /// up on the next replan.
    ///
    /// # Panics
    /// Panics if `state`'s vectors disagree with `g` in size — a caller
    /// bug, not bad input.
    pub fn reschedule(
        &self,
        g: &Ptg,
        matrix: &TimeMatrix,
        alloc: &Allocation,
        state: &ResumeState,
    ) -> Result<Vec<Placement>, RescheduleError> {
        let n = g.task_count();
        assert_eq!(state.finished.len(), n, "finished/PTG size mismatch");
        assert_eq!(alloc.len(), n, "allocation/PTG size mismatch");
        if !state.busy_until.is_empty() {
            assert_eq!(
                state.busy_until.len(),
                state.alive.len(),
                "busy_until/alive size mismatch"
            );
        }
        let survivors = state.survivors();
        if survivors == 0 {
            return Err(RescheduleError::NoSurvivors);
        }

        // A task is "settled" when the planner can treat its finish time as
        // known: finished, or running with a planned finish.
        let mut settled_finish: Vec<Option<f64>> = state.finished.clone();
        for r in &state.running {
            assert!(
                settled_finish[r.task.index()].is_none(),
                "{} both finished and running",
                r.task
            );
            settled_finish[r.task.index()] = Some(r.finish);
        }

        // Priority: bottom levels over the remainder, with settled tasks
        // contributing zero time (their work is already paid for).
        let mut times = vec![0.0f64; n];
        let mut width = vec![0u32; n];
        for v in g.task_ids() {
            if settled_finish[v.index()].is_none() {
                let w = alloc.of(v).min(survivors);
                width[v.index()] = w;
                times[v.index()] = matrix.time(v, w);
            }
        }
        let bl = bottom_levels(g, &times);

        // Processor availability: `now` for idle survivors (raised to any
        // foreign-work floor), the running task's finish for occupied
        // ones; dead processors never appear.
        let mut avail: Vec<(f64, u32)> = state
            .alive
            .iter()
            .enumerate()
            .filter(|&(_, &alive)| alive)
            .map(|(q, _)| {
                let floor = state.busy_until.get(q).copied().unwrap_or(state.now);
                (state.now.max(floor), q as u32)
            })
            .collect();
        for r in &state.running {
            for &q in &r.processors {
                let slot = avail
                    .iter_mut()
                    .find(|(_, p)| *p == q)
                    .expect("running tasks occupy surviving processors");
                slot.0 = slot.0.max(r.finish);
            }
        }

        // Data readiness and in-degrees over the remainder only. The CSR
        // arenas visit predecessors in builder order, exactly as the
        // pointer adjacency did — the `f64::max` folds stay bit-identical.
        let csr = g.csr();
        let mut data_ready = vec![state.now; n];
        let mut in_deg = vec![0usize; n];
        for v in g.task_ids() {
            if settled_finish[v.index()].is_some() {
                continue;
            }
            for &p in csr.predecessors(v.0) {
                match settled_finish[p as usize] {
                    Some(f) => data_ready[v.index()] = data_ready[v.index()].max(f),
                    None => in_deg[v.index()] += 1,
                }
            }
        }

        // Plain list scheduling: ready tasks by decreasing bottom level
        // (ties toward the smaller id), each on the earliest-free
        // `width(v)` survivors (ties toward the smaller index).
        let mut ready: Vec<TaskId> = g
            .task_ids()
            .filter(|v| settled_finish[v.index()].is_none() && in_deg[v.index()] == 0)
            .collect();
        let mut placements = Vec::new();
        while let Some(pos) = ready
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                bl[a.index()]
                    .partial_cmp(&bl[b.index()])
                    .expect("bottom levels are finite")
                    .then_with(|| b.cmp(a))
            })
            .map(|(i, _)| i)
        {
            let v = ready.swap_remove(pos);
            let s = width[v.index()] as usize;
            // Earliest-free survivors: sort by (availability, index) and
            // take the first s.
            avail.sort_unstable_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("availability is finite")
                    .then_with(|| a.1.cmp(&b.1))
            });
            let procs_free = avail[s - 1].0;
            let start = data_ready[v.index()].max(procs_free);
            let finish = start + times[v.index()];
            let mut processors: Vec<u32> = avail[..s].iter().map(|&(_, q)| q).collect();
            processors.sort_unstable();
            for slot in &mut avail[..s] {
                slot.0 = finish;
            }
            placements.push(Placement {
                task: v,
                start,
                finish,
                processors,
            });
            for &w in csr.successors(v.0) {
                let wi = w as usize;
                data_ready[wi] = data_ready[wi].max(finish);
                in_deg[wi] -= 1;
                if in_deg[wi] == 0 {
                    ready.push(TaskId(w));
                }
            }
        }
        Ok(placements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{ListScheduler, Mapper};
    use exec_model::Amdahl;
    use ptg::PtgBuilder;

    fn diamond() -> Ptg {
        let mut b = PtgBuilder::new();
        for i in 0..4 {
            b.add_task(format!("t{i}"), 2e9, 0.0);
        }
        b.add_edge(TaskId(0), TaskId(1)).unwrap();
        b.add_edge(TaskId(0), TaskId(2)).unwrap();
        b.add_edge(TaskId(1), TaskId(3)).unwrap();
        b.add_edge(TaskId(2), TaskId(3)).unwrap();
        b.build().unwrap()
    }

    fn fresh_state(n: usize, p: usize) -> ResumeState {
        ResumeState::fresh(n, p, 0.0)
    }

    #[test]
    fn full_replan_from_scratch_matches_the_list_scheduler() {
        let g = diamond();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 4);
        let alloc = Allocation::from_vec(vec![2, 1, 2, 4]);
        let reference = ListScheduler.map(&g, &m, &alloc);
        let mut placements = Rescheduler
            .reschedule(&g, &m, &alloc, &fresh_state(4, 4))
            .unwrap();
        placements.sort_by_key(|p| p.task);
        for (got, want) in placements.iter().zip(&reference.placements) {
            assert_eq!(got.task, want.task);
            assert_eq!(got.start, want.start, "{}", got.task);
            assert_eq!(got.finish, want.finish, "{}", got.task);
        }
    }

    #[test]
    fn dead_processors_are_never_used_and_widths_clamp() {
        let g = diamond();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 4);
        let alloc = Allocation::from_vec(vec![4, 4, 4, 4]);
        let mut state = fresh_state(4, 4);
        state.alive = vec![true, false, true, false]; // 2 survivors
        let placements = Rescheduler.reschedule(&g, &m, &alloc, &state).unwrap();
        assert_eq!(placements.len(), 4);
        for pl in &placements {
            assert!(pl.processors.iter().all(|&q| q == 0 || q == 2), "{pl:?}");
            assert!(pl.width() <= 2, "{pl:?}");
        }
    }

    #[test]
    fn running_tasks_block_their_processors_and_feed_successors() {
        let g = diamond();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 4);
        let alloc = Allocation::from_vec(vec![1, 1, 1, 1]);
        let mut state = fresh_state(4, 4);
        state.now = 3.0;
        state.finished[0] = Some(2.0);
        // Task 1 is running on processor 0 until t = 5.
        state.running.push(RunningTask {
            task: TaskId(1),
            finish: 5.0,
            processors: vec![0],
        });
        let placements = Rescheduler.reschedule(&g, &m, &alloc, &state).unwrap();
        // Only tasks 2 and 3 get new placements.
        let mut tasks: Vec<TaskId> = placements.iter().map(|p| p.task).collect();
        tasks.sort();
        assert_eq!(tasks, vec![TaskId(2), TaskId(3)]);
        let p2 = placements.iter().find(|p| p.task == TaskId(2)).unwrap();
        let p3 = placements.iter().find(|p| p.task == TaskId(3)).unwrap();
        assert!(p2.start >= 3.0, "nothing starts before now");
        // Task 3 waits for both the running task 1 (finish 5) and task 2.
        assert!(p3.start >= 5.0);
        assert!(p3.start >= p2.finish);
    }

    #[test]
    fn replanned_schedule_respects_precedence_and_capacity() {
        let g = diamond();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 4);
        let alloc = Allocation::from_vec(vec![2, 3, 2, 4]);
        let mut state = fresh_state(4, 4);
        state.alive[3] = false;
        let placements = Rescheduler.reschedule(&g, &m, &alloc, &state).unwrap();
        // Precedence between replanned tasks.
        let by_task = |t: u32| placements.iter().find(|p| p.task == TaskId(t)).unwrap();
        assert!(by_task(1).start >= by_task(0).finish);
        assert!(by_task(3).start >= by_task(1).finish);
        assert!(by_task(3).start >= by_task(2).finish);
        // No processor runs two tasks at once.
        for (i, a) in placements.iter().enumerate() {
            for b in &placements[i + 1..] {
                assert!(
                    !(a.overlaps_in_time(b) && a.shares_processor(b)),
                    "{a:?} overlaps {b:?}"
                );
            }
        }
    }

    #[test]
    fn all_dead_platform_is_a_typed_error() {
        let g = diamond();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 4);
        let alloc = Allocation::ones(4);
        let mut state = fresh_state(4, 4);
        state.alive = vec![false; 4];
        let err = Rescheduler
            .reschedule(&g, &m, &alloc, &state)
            .expect_err("an empty platform must be rejected");
        assert_eq!(err, RescheduleError::NoSurvivors);
        assert!(err.to_string().contains("no surviving processors"));
    }

    #[test]
    fn node_join_expands_capacity_on_the_next_replan() {
        let g = diamond();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 4);
        let alloc = Allocation::from_vec(vec![4, 4, 4, 4]);
        // First plan on a degraded 2-processor platform...
        let mut state = fresh_state(4, 4);
        state.alive = vec![true, true, false, false];
        let degraded = Rescheduler.reschedule(&g, &m, &alloc, &state).unwrap();
        assert!(degraded.iter().all(|p| p.width() <= 2));
        let degraded_makespan = degraded.iter().map(|p| p.finish).fold(0.0, f64::max);
        // ...then two nodes join: same call, wider plan, no worse finish.
        state.alive = vec![true, true, true, true];
        let joined = Rescheduler.reschedule(&g, &m, &alloc, &state).unwrap();
        assert!(joined.iter().any(|p| p.width() == 4), "joins unused");
        let joined_makespan = joined.iter().map(|p| p.finish).fold(0.0, f64::max);
        assert!(joined_makespan <= degraded_makespan);
        assert!(joined
            .iter()
            .any(|p| p.processors.contains(&2) || p.processors.contains(&3)));
    }

    #[test]
    fn busy_until_floors_defer_admission_per_processor() {
        let g = diamond();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 4);
        let alloc = Allocation::ones(4);
        let mut state = fresh_state(4, 4);
        // Foreign jobs occupy processors 0 and 1 until t = 10; 2 and 3
        // are free immediately.
        state.busy_until = vec![10.0, 10.0, 0.0, 0.0];
        let placements = Rescheduler.reschedule(&g, &m, &alloc, &state).unwrap();
        for pl in &placements {
            for &q in &pl.processors {
                if q < 2 {
                    assert!(pl.start >= 10.0, "admitted before the floor: {pl:?}");
                }
            }
        }
        // The free processors are used first: the entry task lands on 2/3.
        let entry = placements.iter().find(|p| p.task == TaskId(0)).unwrap();
        assert_eq!(entry.start, 0.0);
        assert!(entry.processors.iter().all(|&q| q >= 2), "{entry:?}");
    }
}
