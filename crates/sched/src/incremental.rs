//! Incremental (delta) fitness evaluation for the list scheduler.
//!
//! A (µ+λ)-ES offspring differs from its parent in a handful of genes, yet a
//! fresh evaluation recomputes every bottom level and replays every placement
//! event. This module removes that redundancy in three exact steps:
//!
//! 1. **Delta bottom levels** — the parent's [`EvalRecord`] keeps its
//!    times/bottom-level vectors; only the changed tasks and their ancestors
//!    are repaired via [`ptg::critpath::BlRepairer`], with bitwise change
//!    detection cutting each propagation branch.
//! 2. **Lower-bound prescreen** — before any scheduling, the offspring's
//!    critical-path and area bounds (the same quantities as
//!    [`crate::bounds`]) are tested against the cutoff. Both are true lower
//!    bounds on `reject_key = max_v (start + bl)`, so a prescreen rejection
//!    is exactly a rejection the full evaluation would also have produced —
//!    just without simulating anything.
//! 3. **Prefix checkpoints** — the record carries snapshots of the
//!    scheduler's complete simulation state (processor-group heap, ready
//!    set, data-ready vector, in-degrees) taken every
//!    [`CHECKPOINT_INTERVAL`] placement events, plus per-task ready
//!    windows (entry/pop events) and start times. Until the first event
//!    whose *outcome* can differ — a time-dirty task's own placement, or a
//!    pop decision flipped by a repaired priority — the offspring's event
//!    sequence is *bit-identical* to the parent's, so evaluation restores
//!    the newest checkpoint at or before that point and only simulates the
//!    suffix.
//!
//! Every path returns the same `f64` bits as a fresh
//! [`ListScheduler::evaluate_bounded_with`] — proven by the property tests
//! in `emts/tests/prop_fitness.rs` and the unit tests below.
//!
//! # Why the prefix is exact
//!
//! Ready-queue *entry* is structural in this scheduler (a task becomes ready
//! when its last predecessor is *placed*, not when it finishes), so the pop
//! sequence is a function of the DAG and the bottom levels alone — execution
//! times only shape start/finish values. The offspring's event sequence can
//! therefore diverge from the parent's no earlier than `stop`, the minimum
//! of
//!
//! * the recorded **pop event of each time-dirty task** (its duration first
//!   matters at its own placement), and
//! * for each pair of tasks whose recorded ready windows
//!   `[entered, popped]` overlap and whose relative priority order *flips*
//!   under the repaired bottom levels, the **first event both are in the
//!   queue** (`max` of their entry events).
//!
//! Induction: while every pop so far matched the parent, the ready queue
//! holds exactly the parent's task set, so the first divergent pop — if any
//! — is decided by a flipped pair that coexists *in the parent's windows*;
//! `stop` is at or before that event. A changed bottom level can only flip
//! its order against tasks whose level lies in the closed interval swept by
//! the change, so flip candidates come from a binary search over the
//! recorded level-sorted order (changed-changed pairs, where both endpoints
//! moved, are checked pairwise). Restoring any snapshot taken at or before
//! `stop` and resuming with the offspring's times/bottom levels is thus
//! indistinguishable from evaluating the offspring from scratch — with one
//! repair: re-prioritized tasks may now be *placed inside* the reused
//! prefix, and `reject_key` accumulates `start + bl`, so the prefix maximum
//! is rebuilt from the recorded start times and the offspring's levels
//! (starts are unchanged; `f64::max` is exact, so the rebuilt value is
//! bit-identical to a fresh accumulation). Heap *layout* does not need to
//! be preserved: every heap key is unique (`seq` for groups, the task id
//! tiebreak for ready tasks), so pop order is a function of content only.

use crate::allocation::Allocation;
use crate::bounds::{area_bound, critical_path_bound};
use crate::mapper::{BoundedEval, EvalScratch, ListScheduler, ReadyTask};
use crate::soa_heap::{group_avail, group_count, group_entry, ready_entry, ready_task};
use exec_model::TimeMatrix;
use obs::Recorder;
use ptg::critpath::BlRepairer;
use ptg::{Ptg, TaskId};

/// Placement events between consecutive prefix snapshots.
///
/// Smaller intervals waste memory and snapshot time on the recording pass;
/// larger ones throw away reusable prefix on the delta pass. Eight events
/// (~1/12 of the paper's 100-task graphs) keeps the expected replay loss
/// below half an interval while a record stays ~a dozen snapshots.
pub const CHECKPOINT_INTERVAL: u32 = 8;

/// One snapshot of the grouped scheduling loop between two events.
#[derive(Debug, Clone)]
struct Checkpoint {
    /// Number of placements completed when the snapshot was taken.
    events: u32,
    /// Running `max finish` at the snapshot.
    makespan: f64,
    /// Next insertion counter for the group heap.
    next_seq: u32,
    /// Contents of the processor-group heap as raw packed
    /// `(avail key, seq, count)` words (order irrelevant: keys are unique,
    /// so a rebuilt heap pops identically — see [`crate::soa_heap`]).
    groups: Vec<u128>,
    /// Tasks in the ready queue. Priorities are re-derived from the
    /// *offspring's* bottom levels on restore.
    ready: Vec<TaskId>,
    /// Latest finish over scheduled predecessors, per task.
    data_ready: Vec<f64>,
    /// Unscheduled-predecessor counts, per task.
    in_deg: Vec<u32>,
}

/// Everything a parent evaluation must remember so offspring can be
/// evaluated incrementally against it.
///
/// Built by [`ListScheduler::evaluate_recorded`]; consumed (any number of
/// times) by [`ListScheduler::evaluate_delta`]. A record is only produced
/// for *completed* schedules — the EA records survivors, whose makespan is
/// finite by construction.
#[derive(Debug, Clone)]
pub struct EvalRecord {
    /// Per-task execution times of the recorded allocation.
    times: Vec<f64>,
    /// Per-task bottom levels of the recorded allocation.
    bl: Vec<f64>,
    /// Per task: placements completed when it entered the ready queue.
    entered: Vec<u32>,
    /// Per task: the placement event that popped it (`entered ≤ popped`).
    popped: Vec<u32>,
    /// Per task: its recorded start time (used to rebuild the prefix
    /// `reject_key` under repaired bottom levels).
    starts: Vec<f64>,
    /// Task ids sorted by recorded bottom level ascending (ties by id) —
    /// the index behind the order-flip candidate search.
    bl_order: Vec<TaskId>,
    /// Prefix snapshots, ascending in `events`.
    checkpoints: Vec<Checkpoint>,
    makespan: f64,
    reject_key: f64,
}

impl EvalRecord {
    /// The recorded schedule's makespan.
    #[inline]
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// The recorded schedule's `max_v (start + bl)` — reproduces the
    /// engine's accept/reject decision for any cutoff (see
    /// [`BoundedEval`]).
    #[inline]
    pub fn reject_key(&self) -> f64 {
        self.reject_key
    }

    /// The accept/reject decision the recorded schedule gets under
    /// `cutoff`, bit-identical to re-running the bounded evaluation.
    #[inline]
    pub fn decide(&self, cutoff: f64) -> Option<f64> {
        (self.reject_key <= cutoff * (1.0 + 1e-9)).then_some(self.makespan)
    }

    /// Approximate heap footprint in bytes (for capacity planning/tests).
    pub fn footprint(&self) -> usize {
        let per_cp = |c: &Checkpoint| {
            c.groups.len() * std::mem::size_of::<u128>()
                + c.ready.len() * std::mem::size_of::<TaskId>()
                + c.data_ready.len() * 8
                + c.in_deg.len() * std::mem::size_of::<u32>()
        };
        self.times.len() * 8
            + self.bl.len() * 8
            + self.starts.len() * 8
            + self.entered.len() * 4
            + self.popped.len() * 4
            + self.bl_order.len() * std::mem::size_of::<TaskId>()
            + self.checkpoints.iter().map(per_cp).sum::<usize>()
    }
}

/// Outcome of one delta evaluation, with its reuse statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaEval {
    /// The evaluation result — bit-identical to a fresh bounded evaluation
    /// of the offspring at the same cutoff.
    pub outcome: BoundedEval,
    /// True when the rejection came from the cp/area lower-bound prescreen,
    /// i.e. before any scheduling work.
    pub lb_pruned: bool,
    /// Placement events replayed from the parent's prefix (restored, not
    /// simulated).
    pub events_reused: u32,
    /// Events a full evaluation would simulate (= the task count).
    pub events_total: u32,
}

impl ListScheduler {
    /// Full evaluation that additionally captures an [`EvalRecord`]:
    /// per-task times/bottom levels, ready-entry events and prefix
    /// snapshots every [`CHECKPOINT_INTERVAL`] placements.
    ///
    /// Runs at infinite cutoff (records exist for known-complete
    /// survivors), so it always completes; the returned record's makespan
    /// is bit-identical to [`crate::Mapper::makespan`]. Scheduler heap
    /// counters flow into `rec` exactly as in the plain grouped core.
    pub fn evaluate_recorded<R: Recorder>(
        &self,
        g: &Ptg,
        matrix: &TimeMatrix,
        alloc: &Allocation,
        scratch: &mut EvalScratch,
        rec: &R,
    ) -> EvalRecord {
        Self::prepare_into(g, matrix, alloc, scratch);
        let v = g.task_count();
        let mut entered = vec![0u32; v];
        let mut popped = vec![0u32; v];
        let mut starts = vec![0.0f64; v];
        let mut checkpoints =
            Vec::with_capacity(v.div_ceil(CHECKPOINT_INTERVAL as usize).saturating_sub(1));
        let mut makespan = 0.0f64;
        let mut reject_key = 0.0f64;
        let mut events = 0u32;
        let mut tasks_placed = 0u64;
        let mut group_pops = 0u64;
        let mut group_pushes = 0u64;
        let csr = g.csr();
        let widths = alloc.as_slice();
        scratch.ready.clear();
        for &t in csr.sources() {
            scratch.ready.push(ready_entry(scratch.bl[t as usize], t));
        }
        scratch.groups.clear();
        scratch.groups.push(group_entry(0.0, 0, matrix.p_max()));
        let mut next_seq = 1u32;

        // The loop body mirrors `schedule_core_grouped` at infinite cutoff
        // (the rejection branch is statically false there) — any drift
        // breaks the bit-identity property tests.
        while let Some(entry) = scratch.ready.pop() {
            let t = ready_task(entry) as usize;
            popped[t] = events;
            let s = widths[t];
            let mut need = s;
            let mut run = 0u128;
            let mut remainder = 0u128;
            while need > 0 {
                run = scratch.groups.pop().expect("alloc ≤ P ensured by prepare");
                if R::ENABLED {
                    group_pops += 1;
                }
                let count = group_count(run);
                if count > need {
                    remainder = run - need as u128;
                    need = 0;
                } else {
                    need -= count;
                }
            }
            let procs_free = group_avail(run);
            let start = scratch.data_ready[t].max(procs_free);
            starts[t] = start;
            let lower_bound = start + scratch.bl[t];
            reject_key = reject_key.max(lower_bound);
            let finish = start + scratch.times[t];
            if remainder != 0 {
                scratch.groups.push(remainder);
                if R::ENABLED {
                    group_pushes += 1;
                }
            }
            scratch.groups.push(group_entry(finish, next_seq, s));
            next_seq += 1;
            makespan = makespan.max(finish);
            if R::ENABLED {
                group_pushes += 1;
                tasks_placed += 1;
            }
            events += 1;
            for &w in csr.successors(t as u32) {
                let wi = w as usize;
                scratch.data_ready[wi] = scratch.data_ready[wi].max(finish);
                scratch.in_deg[wi] -= 1;
                if scratch.in_deg[wi] == 0 {
                    entered[wi] = events;
                    scratch.ready.push(ready_entry(scratch.bl[wi], w));
                }
            }
            if events.is_multiple_of(CHECKPOINT_INTERVAL) && (events as usize) < v {
                checkpoints.push(Checkpoint {
                    events,
                    makespan,
                    next_seq,
                    groups: scratch.groups.iter().copied().collect(),
                    ready: scratch
                        .ready
                        .iter()
                        .map(|&e| TaskId(ready_task(e)))
                        .collect(),
                    data_ready: scratch.data_ready.clone(),
                    in_deg: scratch.in_deg.clone(),
                });
            }
        }
        if R::ENABLED {
            rec.add("sched.tasks_placed", tasks_placed);
            rec.add("sched.group_pops", group_pops);
            rec.add("sched.group_pushes", group_pushes);
        }
        let mut bl_order: Vec<TaskId> = g.task_ids().collect();
        bl_order.sort_unstable_by(|a, b| {
            scratch.bl[a.index()]
                .partial_cmp(&scratch.bl[b.index()])
                .expect("bottom levels are finite")
                .then_with(|| a.cmp(b))
        });
        EvalRecord {
            times: scratch.times.clone(),
            bl: scratch.bl.clone(),
            entered,
            popped,
            starts,
            bl_order,
            checkpoints,
            makespan,
            reject_key,
        }
    }

    /// Evaluates `child` incrementally against its parent's `record`.
    ///
    /// `changed` must list every gene where `child` differs from the
    /// recorded allocation (a superset is fine; duplicates allowed) — the
    /// EA gets it for free from the mutation operator. The result is
    /// **bit-identical** to
    /// [`Self::evaluate_bounded_with`]`(g, matrix, child, cutoff, ..)`.
    ///
    /// Cost: two `O(V)` memcpys, bottom-level repair over the changed
    /// tasks' ancestry, an `O(V)` bound scan, and list scheduling of the
    /// suffix after the last reusable checkpoint.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_delta<R: Recorder>(
        &self,
        g: &Ptg,
        matrix: &TimeMatrix,
        record: &EvalRecord,
        child: &Allocation,
        changed: &[TaskId],
        cutoff: f64,
        scratch: &mut EvalScratch,
        repairer: &mut BlRepairer,
        rec: &R,
    ) -> DeltaEval {
        let v = g.task_count();
        assert_eq!(child.len(), v, "allocation/PTG size mismatch");
        assert_eq!(record.times.len(), v, "record/PTG size mismatch");
        let p_max = matrix.p_max();
        // Same slack rationale as `schedule_core_grouped`.
        let threshold = cutoff * (1.0 + 1e-9);
        let events_total = v as u32;

        // 1. Patch times at the changed genes; collect the bitwise-dirty
        //    subset (a clamped mutation or an equal-time width change leaves
        //    the schedule untouched).
        scratch.times.clear();
        scratch.times.extend_from_slice(&record.times);
        scratch.dirty.clear();
        for &t in changed {
            assert!(child.of(t) <= p_max, "allocation exceeds platform size");
            let nt = matrix.time(t, child.of(t));
            if nt.to_bits() != scratch.times[t.index()].to_bits() {
                scratch.times[t.index()] = nt;
                scratch.dirty.push(t);
            }
        }

        // 2. Repair bottom levels through the dirty tasks' ancestors.
        scratch.bl.clear();
        scratch.bl.extend_from_slice(&record.bl);
        let bl_changed = repairer.repair(g, &scratch.times, &mut scratch.bl, &scratch.dirty);

        // 3. Lower-bound prescreen: cp = max bl and the area bound are both
        //    ≤ reject_key of any completed schedule, so exceeding the
        //    threshold here proves the full evaluation would reject too.
        let cp = critical_path_bound(&scratch.bl);
        if cp > threshold || area_bound(child, &scratch.times, p_max) > threshold {
            if R::ENABLED {
                rec.event("sched.delta.lb_prune", 0);
            }
            return DeltaEval {
                outcome: BoundedEval::Rejected,
                lb_pruned: true,
                events_reused: 0,
                events_total,
            };
        }

        // 4. First event whose outcome can differ from the parent's: a
        //    time-dirty task's own placement, or the first event where a
        //    repaired bottom level can flip a pop decision (see the module
        //    docs for the soundness argument).
        let mut safe = u32::MAX;
        for &t in &scratch.dirty {
            safe = safe.min(record.popped[t.index()]);
        }
        // A mutation that re-levels much of the graph makes the pairwise
        // screen quadratic and its answer near-useless; fall back to the
        // conservative entry-based horizon instead.
        const FLIP_SCREEN_CAP: usize = 64;
        if bl_changed.len() > FLIP_SCREEN_CAP {
            for &t in bl_changed {
                safe = safe.min(record.entered[t.index()]);
            }
        } else {
            for &t in bl_changed {
                // Against unchanged tasks, a flip needs the other level
                // inside the closed interval swept by this change.
                let old = record.bl[t.index()];
                let new = scratch.bl[t.index()];
                let (lo, hi) = if old <= new { (old, new) } else { (new, old) };
                let from = record
                    .bl_order
                    .partition_point(|&u| record.bl[u.index()] < lo);
                for &u in &record.bl_order[from..] {
                    if record.bl[u.index()] > hi {
                        break;
                    }
                    if u != t {
                        check_flip(record, &scratch.bl, t, u, &mut safe);
                    }
                }
            }
            // Changed-changed pairs: both endpoints moved, so the interval
            // search over the parent's ordering can miss them.
            for (i, &a) in bl_changed.iter().enumerate() {
                for &b in &bl_changed[i + 1..] {
                    check_flip(record, &scratch.bl, a, b, &mut safe);
                }
            }
        }
        if safe == u32::MAX {
            if R::ENABLED {
                // Horizon event, full-reuse case: nothing invalidated.
                rec.event("sched.delta.horizon", pack_horizon(safe, events_total));
            }
            // Bitwise nothing changed: replay the parent's outcome.
            let outcome = match record.decide(cutoff) {
                Some(makespan) => BoundedEval::Complete {
                    makespan,
                    reject_key: record.reject_key,
                },
                None => BoundedEval::Rejected,
            };
            return DeltaEval {
                outcome,
                lb_pruned: false,
                events_reused: events_total,
                events_total,
            };
        }

        // 5. Restore the newest snapshot at or before `safe` (or reseed the
        //    initial state when none qualifies). Ready priorities are
        //    rebuilt from the offspring's bottom levels.
        let cp_idx = record.checkpoints.partition_point(|c| c.events <= safe);
        let (restored_events, makespan0, next_seq0) = if cp_idx == 0 {
            let csr = g.csr();
            scratch.in_deg.clear();
            scratch.in_deg.extend_from_slice(csr.in_degrees());
            scratch.data_ready.clear();
            scratch.data_ready.resize(v, 0.0);
            scratch.ready.clear();
            for &t in csr.sources() {
                scratch.ready.push(ready_entry(scratch.bl[t as usize], t));
            }
            scratch.groups.clear();
            scratch.groups.push(group_entry(0.0, 0, p_max));
            (0u32, 0.0f64, 1u32)
        } else {
            let c = &record.checkpoints[cp_idx - 1];
            scratch.in_deg.clear();
            scratch.in_deg.extend_from_slice(&c.in_deg);
            scratch.data_ready.clear();
            scratch.data_ready.extend_from_slice(&c.data_ready);
            scratch.ready.clear();
            for &t in &c.ready {
                scratch.ready.push(ready_entry(scratch.bl[t.index()], t.0));
            }
            scratch.groups.clear();
            for &run in &c.groups {
                scratch.groups.push(run);
            }
            (c.events, c.makespan, c.next_seq)
        };
        if R::ENABLED {
            // Delta-horizon decision: where the replay may diverge (`safe`,
            // high half) vs the checkpointed prefix actually restored
            // (`restored_events`, low half).
            rec.event("sched.delta.horizon", pack_horizon(safe, restored_events));
        }
        // The prefix `reject_key` must use the *offspring's* bottom levels:
        // re-prioritized tasks may have been placed inside the replayed
        // prefix. Start times there are unchanged (no time-dirty task pops
        // before `safe`), and `f64::max` is exact, so this fold is
        // bit-identical to a fresh accumulation over the same placements.
        let mut reject_key0 = 0.0f64;
        if restored_events > 0 {
            for t in g.task_ids() {
                if record.popped[t.index()] < restored_events {
                    reject_key0 = reject_key0.max(record.starts[t.index()] + scratch.bl[t.index()]);
                }
            }
        }
        if reject_key0 > threshold {
            // Some prefix event already exceeded the child's cutoff — the
            // fresh evaluation would have stopped inside the prefix.
            return DeltaEval {
                outcome: BoundedEval::Rejected,
                lb_pruned: false,
                events_reused: restored_events,
                events_total,
            };
        }

        // 6. Simulate the suffix.
        let outcome = resume_grouped(
            g,
            child,
            threshold,
            scratch,
            makespan0,
            reject_key0,
            next_seq0,
            rec,
        );
        DeltaEval {
            outcome,
            lb_pruned: false,
            events_reused: restored_events,
            events_total,
        }
    }
}

/// Packs a delta-horizon decision into one event payload: the first event
/// index at which the replay may diverge from the parent (`safe`, high 32
/// bits — `u32::MAX` means nothing was invalidated) and the checkpointed
/// prefix length actually reused (low 32 bits).
#[inline]
fn pack_horizon(safe: u32, reused: u32) -> u64 {
    ((safe as u64) << 32) | reused as u64
}

/// Clamps `safe` to the first event at which tasks `a` and `b` coexist in
/// the ready queue, if their priority order under the repaired bottom
/// levels differs from the recorded one. Pairs whose recorded ready
/// windows are disjoint are never compared by the scheduler and impose no
/// constraint.
#[inline]
fn check_flip(record: &EvalRecord, new_bl: &[f64], a: TaskId, b: TaskId, safe: &mut u32) {
    let (ea, pa) = (record.entered[a.index()], record.popped[a.index()]);
    let (eb, pb) = (record.entered[b.index()], record.popped[b.index()]);
    if ea > pb || eb > pa {
        return;
    }
    let old = ReadyTask {
        bl: record.bl[a.index()],
        task: a,
    }
    .cmp(&ReadyTask {
        bl: record.bl[b.index()],
        task: b,
    });
    let new = ReadyTask {
        bl: new_bl[a.index()],
        task: a,
    }
    .cmp(&ReadyTask {
        bl: new_bl[b.index()],
        task: b,
    });
    if old != new {
        *safe = (*safe).min(ea.max(eb));
    }
}

/// The grouped scheduling loop resumed from a restored mid-evaluation
/// state — `schedule_core_grouped` with seeded accumulators and a
/// precomputed threshold. Same struct-of-arrays loop state as the full
/// core: raw `u32` ids, CSR adjacency, packed-`u128` heaps.
// lint:hot-path
#[allow(clippy::too_many_arguments)]
fn resume_grouped<R: Recorder>(
    g: &Ptg,
    alloc: &Allocation,
    threshold: f64,
    scratch: &mut EvalScratch,
    mut makespan: f64,
    mut reject_key: f64,
    mut next_seq: u32,
    rec: &R,
) -> BoundedEval {
    let mut tasks_placed = 0u64;
    let mut group_pops = 0u64;
    let mut group_pushes = 0u64;
    let csr = g.csr();
    let widths = alloc.as_slice();
    let EvalScratch {
        times,
        bl,
        in_deg,
        data_ready,
        ready,
        groups,
        ..
    } = scratch;
    let times = times.as_slice();
    let bl = bl.as_slice();
    let in_deg = in_deg.as_mut_slice();
    let data_ready = data_ready.as_mut_slice();
    while let Some(entry) = ready.pop() {
        let t = ready_task(entry) as usize;
        let s = widths[t];
        let mut need = s;
        let mut run = 0u128;
        let mut remainder = 0u128;
        while need > 0 {
            run = groups.pop().expect("alloc ≤ P ensured by prepare");
            if R::ENABLED {
                group_pops += 1;
            }
            let count = group_count(run);
            if count > need {
                remainder = run - need as u128;
                need = 0;
            } else {
                need -= count;
            }
        }
        let procs_free = group_avail(run);
        let start = data_ready[t].max(procs_free);
        let lower_bound = start + bl[t];
        if lower_bound > threshold {
            if R::ENABLED {
                rec.add("sched.tasks_placed", tasks_placed);
                rec.add("sched.group_pops", group_pops);
                rec.add("sched.group_pushes", group_pushes);
                rec.add("sched.rejections", 1);
            }
            return BoundedEval::Rejected;
        }
        reject_key = reject_key.max(lower_bound);
        let finish = start + times[t];
        if remainder != 0 {
            groups.push(remainder);
            if R::ENABLED {
                group_pushes += 1;
            }
        }
        groups.push(group_entry(finish, next_seq, s));
        next_seq += 1;
        makespan = makespan.max(finish);
        if R::ENABLED {
            group_pushes += 1;
            tasks_placed += 1;
        }
        for &w in csr.successors(t as u32) {
            let wi = w as usize;
            data_ready[wi] = data_ready[wi].max(finish);
            in_deg[wi] -= 1;
            if in_deg[wi] == 0 {
                ready.push(ready_entry(bl[wi], w));
            }
        }
    }
    if R::ENABLED {
        rec.add("sched.tasks_placed", tasks_placed);
        rec.add("sched.group_pops", group_pops);
        rec.add("sched.group_pushes", group_pushes);
    }
    BoundedEval::Complete {
        makespan,
        reject_key,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mapper;
    use exec_model::Amdahl;
    use obs::NoopRecorder;
    use ptg::PtgBuilder;

    /// Layered pseudo-random DAG + platform, no external RNG dependency.
    fn random_setup(seed: u64, n: usize, p: u32) -> (Ptg, TimeMatrix) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = PtgBuilder::new();
        for i in 0..n {
            let flop = 1e9 + (next() % 1000) as f64 * 1e7;
            let alpha = (next() % 30) as f64 / 100.0;
            b.add_task(format!("t{i}"), flop, alpha);
        }
        for v in 1..n {
            for _ in 0..=(next() % 3) {
                let pr = (next() % v as u64) as u32;
                let _ = b.add_edge(TaskId(pr), TaskId(v as u32));
            }
        }
        let g = b.build().unwrap();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, p);
        (g, m)
    }

    fn random_alloc(seed: u64, n: usize, p: u32) -> Allocation {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        Allocation::from_vec((0..n).map(|_| 1 + (next() % p as u64) as u32).collect())
    }

    /// Mutate `k` genes of `alloc`, returning (child, changed).
    fn mutate(alloc: &Allocation, seed: u64, k: usize, p: u32) -> (Allocation, Vec<TaskId>) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut child = alloc.clone();
        let mut changed = Vec::new();
        for _ in 0..k {
            let idx = TaskId((next() % alloc.len() as u64) as u32);
            let delta = (next() % 9) as i64 - 4;
            let cur = child.of(idx) as i64;
            child.set(idx, (cur + delta).clamp(1, p as i64) as u32);
            changed.push(idx);
        }
        (child, changed)
    }

    #[test]
    fn recorded_makespan_matches_fresh_evaluation() {
        for seed in 1..6u64 {
            let (g, m) = random_setup(seed, 40, 16);
            let alloc = random_alloc(seed.wrapping_mul(7), 40, 16);
            let mut scratch = EvalScratch::new();
            let record =
                ListScheduler.evaluate_recorded(&g, &m, &alloc, &mut scratch, &NoopRecorder);
            let fresh = ListScheduler.makespan(&g, &m, &alloc);
            assert_eq!(record.makespan().to_bits(), fresh.to_bits(), "seed {seed}");
            // And the stored reject_key reproduces cutoff decisions.
            for factor in [0.5, 0.99, 1.0, 1.5] {
                let cutoff = fresh * factor;
                assert_eq!(
                    record.decide(cutoff),
                    ListScheduler.makespan_bounded(&g, &m, &alloc, cutoff),
                    "seed {seed} factor {factor}"
                );
            }
        }
    }

    #[test]
    fn delta_evaluation_is_bit_identical_to_fresh() {
        for seed in 1..8u64 {
            let (g, m) = random_setup(seed, 50, 24);
            let parent = random_alloc(seed.wrapping_mul(11), 50, 24);
            let mut scratch = EvalScratch::new();
            let mut repairer = BlRepairer::new(&g);
            let record =
                ListScheduler.evaluate_recorded(&g, &m, &parent, &mut scratch, &NoopRecorder);
            for k in [1usize, 2, 5, 20] {
                let (child, changed) = mutate(&parent, seed.wrapping_mul(31 + k as u64), k, 24);
                for cutoff_factor in [f64::INFINITY, 1.5, 1.0, 0.8] {
                    let cutoff = record.makespan() * cutoff_factor;
                    let delta = ListScheduler.evaluate_delta(
                        &g,
                        &m,
                        &record,
                        &child,
                        &changed,
                        cutoff,
                        &mut scratch,
                        &mut repairer,
                        &NoopRecorder,
                    );
                    let fresh =
                        ListScheduler.evaluate_bounded_with(&g, &m, &child, cutoff, &mut scratch);
                    match (delta.outcome, fresh) {
                        (
                            BoundedEval::Complete {
                                makespan: a,
                                reject_key: ka,
                            },
                            BoundedEval::Complete {
                                makespan: b,
                                reject_key: kb,
                            },
                        ) => {
                            assert_eq!(a.to_bits(), b.to_bits(), "seed {seed} k {k}");
                            assert_eq!(ka.to_bits(), kb.to_bits(), "seed {seed} k {k}");
                        }
                        (BoundedEval::Rejected, BoundedEval::Rejected) => {}
                        (d, f) => {
                            panic!("seed {seed} k {k} cutoff {cutoff}: delta {d:?} vs fresh {f:?}")
                        }
                    }
                    assert_eq!(delta.events_total as usize, g.task_count());
                }
            }
        }
    }

    #[test]
    fn unchanged_child_replays_the_parent_entirely() {
        let (g, m) = random_setup(3, 40, 16);
        let parent = random_alloc(5, 40, 16);
        let mut scratch = EvalScratch::new();
        let mut repairer = BlRepairer::new(&g);
        let record = ListScheduler.evaluate_recorded(&g, &m, &parent, &mut scratch, &NoopRecorder);
        // An empty change set — and a "change" that rewrites the same width.
        for changed in [vec![], vec![TaskId(0), TaskId(7)]] {
            let delta = ListScheduler.evaluate_delta(
                &g,
                &m,
                &record,
                &parent,
                &changed,
                f64::INFINITY,
                &mut scratch,
                &mut repairer,
                &NoopRecorder,
            );
            assert_eq!(delta.events_reused, g.task_count() as u32);
            assert!(!delta.lb_pruned);
            match delta.outcome {
                BoundedEval::Complete { makespan, .. } => {
                    assert_eq!(makespan.to_bits(), record.makespan().to_bits())
                }
                BoundedEval::Rejected => panic!("infinite cutoff never rejects"),
            }
        }
    }

    #[test]
    fn lb_prune_fires_only_when_fresh_evaluation_rejects() {
        let mut pruned = 0usize;
        for seed in 1..10u64 {
            let (g, m) = random_setup(seed, 40, 8);
            let parent = random_alloc(seed, 40, 8);
            let mut scratch = EvalScratch::new();
            let mut repairer = BlRepairer::new(&g);
            let record =
                ListScheduler.evaluate_recorded(&g, &m, &parent, &mut scratch, &NoopRecorder);
            // Stretch many genes, then screen at a cutoff below the child's
            // critical path: the cp bound must trip for some seeds (these
            // dense random graphs keep the makespan within ~2× of cp).
            let (child, changed) = mutate(&parent, seed.wrapping_mul(97), 25, 8);
            let cutoff = record.makespan() * 0.5;
            let delta = ListScheduler.evaluate_delta(
                &g,
                &m,
                &record,
                &child,
                &changed,
                cutoff,
                &mut scratch,
                &mut repairer,
                &NoopRecorder,
            );
            if delta.lb_pruned {
                pruned += 1;
                assert_eq!(delta.outcome, BoundedEval::Rejected);
                assert_eq!(delta.events_reused, 0);
                // The prescreen may only fire when the true makespan indeed
                // exceeds the cutoff.
                let true_ms = ListScheduler.makespan(&g, &m, &child);
                assert!(
                    true_ms > cutoff,
                    "pruned but true makespan {true_ms} ≤ cutoff {cutoff}"
                );
            }
        }
        assert!(pruned > 0, "prescreen never fired across 9 seeds");
    }

    #[test]
    fn prefix_reuse_actually_happens_for_late_changes() {
        // A heavy backbone chain c0→…→c63 plus one tiny side task hanging
        // off c62. Mutating the side task changes its own bottom level only:
        // at c62 the chain tail dominates the max, so the repair is masked
        // there and never reaches earlier chain tasks. The side task enters
        // the ready queue at event 63, so nearly the whole prefix replays.
        let mut b = PtgBuilder::new();
        let n = 64usize;
        for i in 0..n {
            b.add_task(format!("c{i}"), 2e9, 0.1);
        }
        b.add_task("side", 1e7, 0.1);
        for i in 1..n {
            b.add_edge(TaskId(i as u32 - 1), TaskId(i as u32)).unwrap();
        }
        let side = TaskId(n as u32);
        b.add_edge(TaskId(n as u32 - 2), side).unwrap();
        let g = b.build().unwrap();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 8);
        let parent = Allocation::uniform(n + 1, 2);
        let mut scratch = EvalScratch::new();
        let mut repairer = BlRepairer::new(&g);
        let record = ListScheduler.evaluate_recorded(&g, &m, &parent, &mut scratch, &NoopRecorder);
        let mut child = parent.clone();
        child.set(side, 4);
        let delta = ListScheduler.evaluate_delta(
            &g,
            &m,
            &record,
            &child,
            &[side],
            f64::INFINITY,
            &mut scratch,
            &mut repairer,
            &NoopRecorder,
        );
        assert!(
            delta.events_reused >= 48,
            "reused only {} of {} events",
            delta.events_reused,
            n + 1
        );
        let fresh = ListScheduler.makespan(&g, &m, &child);
        match delta.outcome {
            BoundedEval::Complete { makespan, .. } => {
                assert_eq!(makespan.to_bits(), fresh.to_bits())
            }
            BoundedEval::Rejected => panic!("infinite cutoff never rejects"),
        }
    }

    #[test]
    fn record_footprint_is_bounded() {
        let (g, m) = random_setup(2, 100, 32);
        let alloc = random_alloc(9, 100, 32);
        let mut scratch = EvalScratch::new();
        let record = ListScheduler.evaluate_recorded(&g, &m, &alloc, &mut scratch, &NoopRecorder);
        // ~V/8 checkpoints of O(V) state each: stays well under 100 KiB for
        // the paper's 100-task graphs.
        assert!(record.footprint() < 100 * 1024, "{}", record.footprint());
    }
}
