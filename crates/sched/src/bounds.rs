//! Makespan lower bounds.
//!
//! Two classic bounds govern every PTG schedule and drive the CPA family's
//! stopping criterion:
//!
//! * the **critical-path bound** `T_CP` — no schedule can finish before the
//!   longest dependency chain (under the *given* allocations),
//! * the **area bound** `T_A = (1/P) Σ_v s(v)·t(v, s(v))` — the machine
//!   cannot absorb more than `P` processor-seconds per second.
//!
//! A third, allocation-independent bound uses each task's *best possible*
//!   time: no choice of allocations can beat the critical path evaluated at
//!   per-task optimal processor counts.
//!
//! The harness reports `makespan / max(bounds)` as the *optimality gap
//! factor*: how far a schedule provably is from the best conceivable one.

use crate::allocation::Allocation;
use exec_model::TimeMatrix;
use ptg::critpath::critical_path_length;
use ptg::Ptg;

/// The bounds for one allocation on one platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LowerBounds {
    /// Critical-path length under the given allocation.
    pub critical_path: f64,
    /// Work area divided by the processor count.
    pub area: f64,
    /// Critical path with every task at its individually fastest width
    /// (independent of the allocation argument).
    pub ideal_critical_path: f64,
}

impl LowerBounds {
    /// The tightest of the bounds that depend on the allocation.
    pub fn allocation_bound(&self) -> f64 {
        self.critical_path.max(self.area)
    }

    /// The tightest bound valid for *any* allocation (what an oracle
    /// scheduler could conceivably reach).
    pub fn universal_bound(&self) -> f64 {
        self.ideal_critical_path
    }
}

/// The area bound from already-gathered per-task times: the non-allocating
/// core of [`lower_bounds`]. The delta path's rejection prescreen and the
/// tier-1 surrogate (see [`crate::surrogate`]) share this expression
/// verbatim so all callers compare bit-identical quantities against a
/// cutoff.
#[inline]
pub fn area_bound(alloc: &Allocation, times: &[f64], p_max: u32) -> f64 {
    alloc.work_area(times) / p_max as f64
}

/// The critical-path bound from already-computed bottom levels: the largest
/// bottom level is exactly the longest remaining dependency chain from a
/// source. Shares the fold with the delta prescreen for bit-identity.
#[inline]
pub fn critical_path_bound(bl: &[f64]) -> f64 {
    bl.iter().fold(0.0f64, |a, &b| a.max(b))
}

/// Computes all lower bounds for `alloc` on the platform captured by
/// `matrix`.
pub fn lower_bounds(g: &Ptg, matrix: &TimeMatrix, alloc: &Allocation) -> LowerBounds {
    let times = matrix.times_for(alloc.as_slice());
    let critical_path = critical_path_length(g, &times);
    let area = area_bound(alloc, &times, matrix.p_max());
    let best_times: Vec<f64> = g
        .task_ids()
        .map(|v| matrix.time(v, matrix.best_p(v)))
        .collect();
    let ideal_critical_path = critical_path_length(g, &best_times);
    LowerBounds {
        critical_path,
        area,
        ideal_critical_path,
    }
}

/// `makespan / allocation_bound` — 1.0 means the mapping is provably
/// optimal *for this allocation*.
pub fn gap_factor(g: &Ptg, matrix: &TimeMatrix, alloc: &Allocation, makespan: f64) -> f64 {
    let bounds = lower_bounds(g, matrix, alloc);
    makespan / bounds.allocation_bound()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{ListScheduler, Mapper};
    use exec_model::{Amdahl, SyntheticModel};
    use ptg::PtgBuilder;

    fn chain() -> Ptg {
        let mut b = PtgBuilder::new();
        let a = b.add_task("a", 4e9, 0.0);
        let c = b.add_task("c", 4e9, 0.0);
        b.add_edge(a, c).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn chain_bounds_are_exact_for_the_list_scheduler() {
        let g = chain();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 4);
        let alloc = Allocation::from_vec(vec![4, 4]);
        let ms = ListScheduler.makespan(&g, &m, &alloc);
        let b = lower_bounds(&g, &m, &alloc);
        // A chain is scheduled exactly at its critical path.
        assert!((ms - b.critical_path).abs() < 1e-12);
        assert!((gap_factor(&g, &m, &alloc, ms) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn area_bound_dominates_on_wide_graphs() {
        let mut b = PtgBuilder::new();
        for i in 0..8 {
            b.add_task(format!("t{i}"), 4e9, 0.0);
        }
        let g = b.build().unwrap();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 2);
        let alloc = Allocation::ones(8);
        let bounds = lower_bounds(&g, &m, &alloc);
        // 8 tasks × 4 s / 2 procs = 16 s area vs 4 s critical path.
        assert!((bounds.area - 16.0).abs() < 1e-9);
        assert!(bounds.area > bounds.critical_path);
        let ms = ListScheduler.makespan(&g, &m, &alloc);
        assert!(ms + 1e-9 >= bounds.allocation_bound());
    }

    #[test]
    fn ideal_bound_is_allocation_independent_and_lower() {
        let g = chain();
        let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 1e9, 16);
        let narrow = lower_bounds(&g, &m, &Allocation::ones(2));
        let wide = lower_bounds(&g, &m, &Allocation::from_vec(vec![16, 16]));
        assert_eq!(narrow.ideal_critical_path, wide.ideal_critical_path);
        assert!(narrow.ideal_critical_path <= narrow.critical_path + 1e-12);
        assert!(wide.ideal_critical_path <= wide.critical_path + 1e-12);
    }

    #[test]
    fn mapper_never_beats_any_bound() {
        let g = chain();
        let m = TimeMatrix::compute(&g, &SyntheticModel::default(), 1e9, 8);
        for alloc in [
            Allocation::ones(2),
            Allocation::from_vec(vec![3, 5]),
            Allocation::from_vec(vec![8, 8]),
        ] {
            let ms = ListScheduler.makespan(&g, &m, &alloc);
            let bounds = lower_bounds(&g, &m, &alloc);
            assert!(ms + 1e-9 >= bounds.allocation_bound());
            assert!(ms + 1e-9 >= bounds.universal_bound());
        }
    }
}
