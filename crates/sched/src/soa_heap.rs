//! Flat, branch-light binary heaps over packed `u128` keys — the storage
//! behind the list scheduler's ready queue and availability-run heap.
//!
//! `std::collections::BinaryHeap` is generic over `Ord`, so every sift step
//! calls a comparator that chains `f64::partial_cmp` → `Option` → tiebreak.
//! The fitness core instead packs each queue element into a single `u128`
//! whose *integer* order equals the comparator order, so the sift loops
//! compile to plain unsigned compares over a flat `Vec<u128>`:
//!
//! * finite `f64` keys map through [`f64_key`], the classic monotone
//!   bits-trick (flip the sign bit for positives, all bits for negatives):
//!   `a < b ⇔ f64_key(a) < f64_key(b)`, and [`key_f64`] inverts it
//!   bit-exactly;
//! * tiebreak fields occupy the low bits, complemented where the tie must
//!   resolve toward the *smaller* value in a max-heap.
//!
//! Layouts (high → low):
//!
//! ```text
//! ready entry  = [ f64_key(bottom level) : 64 ][ zeros : 32 ][ !task id : 32 ]
//! group entry  = [ f64_key(avail time)   : 64 ][ seq : 32 ][ proc count : 32 ]
//! ```
//!
//! The ready queue is a max-heap (largest bottom level first; equal levels
//! resolve to the smaller task id via the complement), matching
//! `ReadyTask`'s comparator. The group heap is a min-heap (earliest
//! availability first; `seq` is the per-evaluation insertion counter that
//! made `ProcGroup` keys unique, so the count field never decides an
//! ordering). Because every key is unique, pop order is a function of heap
//! *content* only — swapping the heap implementation cannot change any
//! scheduling result (see `crate::incremental`'s prefix-exactness argument).
//!
//! A split run is `entry - need`: the count sits in the low 32 bits and a
//! split always leaves `need < count`, so plain `u128` subtraction edits the
//! count without borrowing into `seq`.

/// Sign bit of an `f64`'s bit pattern.
const SIGN: u64 = 1 << 63;

/// Maps a finite `f64` to a `u64` with the same total order.
// lint:hot-path
#[inline]
pub(crate) fn f64_key(x: f64) -> u64 {
    let b = x.to_bits();
    // Negative values flip every bit, non-negative only the sign bit.
    b ^ (((b as i64 >> 63) as u64) | SIGN)
}

/// Exact inverse of [`f64_key`].
// lint:hot-path
#[inline]
pub(crate) fn key_f64(k: u64) -> f64 {
    let b = if k & SIGN != 0 { k ^ SIGN } else { !k };
    f64::from_bits(b)
}

/// Packs a ready task: pops by decreasing bottom level, ties toward the
/// smaller task id.
// lint:hot-path
#[inline]
pub(crate) fn ready_entry(bl: f64, task: u32) -> u128 {
    ((f64_key(bl) as u128) << 64) | (!task) as u128
}

/// The task id of a packed ready entry.
// lint:hot-path
#[inline]
pub(crate) fn ready_task(entry: u128) -> u32 {
    !(entry as u32)
}

/// Packs an availability run: pops by increasing free time, ties by
/// insertion order (`seq` is unique per evaluation).
// lint:hot-path
#[inline]
pub(crate) fn group_entry(avail: f64, seq: u32, count: u32) -> u128 {
    debug_assert!(avail >= 0.0, "availability times are non-negative");
    ((f64_key(avail) as u128) << 64) | ((seq as u128) << 32) | count as u128
}

/// The free time of a packed availability run.
// lint:hot-path
#[inline]
pub(crate) fn group_avail(entry: u128) -> f64 {
    key_f64((entry >> 64) as u64)
}

/// The processor count of a packed availability run.
// lint:hot-path
#[inline]
pub(crate) fn group_count(entry: u128) -> u32 {
    entry as u32
}

/// A binary heap of packed `u128` entries with hand-rolled, index-based
/// sifts. `MIN = true` pops the smallest entry first, `MIN = false` the
/// largest.
///
/// Both sift loops move a *hole* instead of swapping (one write per level)
/// and select the preferred child with an arithmetic index bump rather than
/// an `if`/`else` over two code paths — together with the `u128` compare
/// this keeps the loop body tiny and branch-predictable.
#[derive(Debug, Clone, Default)]
pub(crate) struct Heap128<const MIN: bool> {
    data: Vec<u128>,
}

/// Min-heap of packed entries (availability runs).
pub(crate) type MinHeap128 = Heap128<true>;
/// Max-heap of packed entries (ready tasks).
pub(crate) type MaxHeap128 = Heap128<false>;

impl<const MIN: bool> Heap128<MIN> {
    /// True when `a` belongs closer to the top than `b`.
    #[inline(always)]
    fn before(a: u128, b: u128) -> bool {
        if MIN {
            a < b
        } else {
            a > b
        }
    }

    pub(crate) fn with_capacity(n: usize) -> Self {
        Heap128 {
            data: Vec::with_capacity(n),
        }
    }

    /// Entry count — exercised by the equivalence tests only.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.data.len()
    }

    /// Emptiness — exercised by the equivalence tests only.
    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub(crate) fn clear(&mut self) {
        self.data.clear();
    }

    /// Unordered view of the live entries (for checkpoint snapshots — keys
    /// are unique, so a heap rebuilt from any permutation pops identically).
    #[inline]
    pub(crate) fn iter(&self) -> std::slice::Iter<'_, u128> {
        self.data.iter()
    }

    /// Inserts `entry`, sifting the hole up while the parent loses to it.
    // lint:hot-path
    #[inline]
    pub(crate) fn push(&mut self, entry: u128) {
        let mut i = self.data.len();
        self.data.push(entry);
        let data = &mut self.data[..];
        while i > 0 {
            let parent = (i - 1) >> 1;
            if !Self::before(entry, data[parent]) {
                break;
            }
            data[i] = data[parent];
            i = parent;
        }
        data[i] = entry;
    }

    /// Removes and returns the top entry, sifting the displaced tail entry
    /// down through its preferred children.
    // lint:hot-path
    #[inline]
    pub(crate) fn pop(&mut self) -> Option<u128> {
        let top = *self.data.first()?;
        let tail = self.data.pop().expect("first() returned Some");
        let n = self.data.len();
        if n > 0 {
            let data = &mut self.data[..];
            let mut i = 0;
            loop {
                let left = 2 * i + 1;
                if left >= n {
                    break;
                }
                let right = left + 1;
                // Pick the child that sorts first; the bounds check on
                // `right` folds into the index bump.
                let child = left + ((right < n && Self::before(data[right], data[left])) as usize);
                if !Self::before(data[child], tail) {
                    break;
                }
                data[i] = data[child];
                i = child;
            }
            data[i] = tail;
        }
        Some(top)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xorshift64 — deterministic test entropy without an RNG dependency.
    fn rng(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed | 1;
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        }
    }

    #[test]
    fn f64_key_is_monotone_and_invertible() {
        let samples = [
            0.0,
            1.0,
            1.5,
            2.0,
            1e-300,
            1e300,
            0.1,
            123.456,
            -1.0,
            -1e300,
            -1e-300,
            f64::MIN_POSITIVE,
        ];
        for &a in &samples {
            assert_eq!(key_f64(f64_key(a)).to_bits(), a.to_bits(), "{a}");
            for &b in &samples {
                assert_eq!(f64_key(a) < f64_key(b), a < b, "{a} vs {b}");
                assert_eq!(f64_key(a) == f64_key(b), a.to_bits() == b.to_bits());
            }
        }
        // The one place the total order refines IEEE comparison: the two
        // zeros get distinct keys (-0.0 sorts first). Scheduler keys are
        // sums/maxima of non-negative times, so -0.0 never occurs — but the
        // mapping must still round-trip it.
        assert!(f64_key(-0.0) < f64_key(0.0));
        assert_eq!(key_f64(f64_key(-0.0)).to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn ready_entry_orders_like_the_ready_task_comparator() {
        // Larger bottom level first; equal levels resolve to the smaller id.
        let hi = ready_entry(5.0, 7);
        let lo = ready_entry(3.0, 2);
        assert!(hi > lo);
        let tie_small = ready_entry(5.0, 3);
        let tie_big = ready_entry(5.0, 9);
        assert!(tie_small > tie_big, "smaller id must pop first on ties");
        assert_eq!(ready_task(ready_entry(5.0, 3)), 3);
        assert_eq!(ready_task(ready_entry(0.0, u32::MAX - 1)), u32::MAX - 1);
    }

    #[test]
    fn group_entry_round_trips_and_orders_by_time_then_seq() {
        let e = group_entry(12.5, 42, 7);
        assert_eq!(group_avail(e), 12.5);
        assert_eq!(group_count(e), 7);
        assert!(group_entry(1.0, 9, 1) < group_entry(2.0, 0, 64));
        assert!(group_entry(2.0, 1, 64) < group_entry(2.0, 2, 1));
        // Splitting a run edits the count in place.
        let split = e - 3;
        assert_eq!(group_avail(split), 12.5);
        assert_eq!(group_count(split), 4);
    }

    #[test]
    fn min_heap_pops_sorted_ascending() {
        let mut next = rng(0xfeed);
        let mut h = MinHeap128::default();
        let mut want: Vec<u128> = (0..500)
            .map(|_| ((next() as u128) << 64) | next() as u128)
            .collect();
        for &e in &want {
            h.push(e);
        }
        want.sort_unstable();
        let got: Vec<u128> = std::iter::from_fn(|| h.pop()).collect();
        assert_eq!(got, want);
        assert!(h.is_empty());
    }

    #[test]
    fn max_heap_pops_sorted_descending() {
        let mut next = rng(0xbead);
        let mut h = MaxHeap128::with_capacity(64);
        let mut want: Vec<u128> = (0..500)
            .map(|_| ((next() as u128) << 64) | next() as u128)
            .collect();
        for &e in &want {
            h.push(e);
        }
        want.sort_unstable_by(|a, b| b.cmp(a));
        let got: Vec<u128> = std::iter::from_fn(|| h.pop()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn interleaved_push_pop_matches_std_binary_heap() {
        use std::collections::BinaryHeap;
        let mut next = rng(0xabcdef);
        let mut ours = MaxHeap128::default();
        let mut std_heap: BinaryHeap<u128> = BinaryHeap::new();
        for _ in 0..2000 {
            if next().is_multiple_of(3) {
                assert_eq!(ours.pop(), std_heap.pop());
            } else {
                let e = ((next() as u128) << 64) | next() as u128;
                ours.push(e);
                std_heap.push(e);
            }
            assert_eq!(ours.len(), std_heap.len());
        }
        while let Some(e) = std_heap.pop() {
            assert_eq!(ours.pop(), Some(e));
        }
        assert_eq!(ours.pop(), None);
    }

    #[test]
    fn clear_and_reuse_keeps_working() {
        let mut h = MinHeap128::default();
        h.push(5);
        h.push(1);
        h.clear();
        assert!(h.is_empty());
        h.push(9);
        h.push(4);
        assert_eq!(h.pop(), Some(4));
        assert_eq!(h.pop(), Some(9));
    }

    #[test]
    fn iter_exposes_all_live_entries() {
        let mut h = MinHeap128::default();
        for e in [3u128, 1, 2] {
            h.push(e);
        }
        let mut seen: Vec<u128> = h.iter().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2, 3]);
    }
}
