//! Two-step scheduling framework for parallel task graphs.
//!
//! The paper (and every CPA-family algorithm it compares against) splits
//! scheduling into an **allocation** step — decide how many processors each
//! moldable task gets — and a **mapping** step — place the allocated tasks
//! onto concrete processors over time. This crate supplies everything both
//! steps share:
//!
//! * [`Allocation`] — a validated vector of per-task processor counts,
//! * [`mapper::ListScheduler`] — the paper's mapping function: ready tasks
//!   sorted by decreasing bottom level, each mapped to the first processor
//!   set with `s(v)` free processors (this is also the EA's fitness
//!   function),
//! * [`mapper::InsertionScheduler`] — a backfilling variant used by the
//!   ablation benches,
//! * [`Schedule`] / [`validate`] — the resulting schedule and its invariant
//!   checks (dependencies respected, no processor oversubscription),
//! * [`metrics`] — makespan, utilization, critical-path efficiency,
//! * [`bounds`] — the critical-path and area lower bounds behind the CPA
//!   family's stopping rule and the harness's optimality-gap reports,
//! * [`gantt`] — text and SVG Gantt charts (used to regenerate the paper's
//!   Figure 6).

pub mod allocation;
pub mod bounds;
pub mod gantt;
pub mod incremental;
pub mod mapper;
pub mod metrics;
pub mod multi;
pub mod reschedule;
pub mod schedule;
mod soa_heap;
pub mod surrogate;
pub mod validate;

pub use allocation::Allocation;
pub use incremental::{DeltaEval, EvalRecord, CHECKPOINT_INTERVAL};
pub use mapper::{BoundedEval, EvalScratch, InsertionScheduler, ListScheduler, Mapper};
pub use reschedule::{RescheduleError, Rescheduler, ResumeState, RunningTask};
pub use schedule::{Placement, Schedule};
pub use surrogate::{surrogate_score_obs, Surrogate, SurrogateScore, TwoTierEval};
pub use validate::{all_violations, for_each_violation, validate_schedule, ScheduleViolation};
