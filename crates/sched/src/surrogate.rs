//! Tier-1 surrogate fitness: a provably conservative score interval per
//! offspring, ~an order of magnitude cheaper than exact evaluation.
//!
//! The (µ+λ) engine only ever keeps the top µ of µ+λ individuals, so most
//! exact evaluations are spent proving that an offspring *loses*. This
//! module produces, per allocation, an interval `[lo, hi]` bracketing the
//! exact bounded evaluation's `reject_key`/makespan, from three
//! progressively tighter (and costlier) rungs:
//!
//! 1. the **area bound** (no bottom levels needed),
//! 2. the **critical-path bound** — exactly the quantity the exact core
//!    tests at its first pop,
//! 3. a **bucketed replay** of the grouped SoA scheduling loop: processor
//!    availability is tracked as at most `buckets` runs of `(free time,
//!    count)` instead of a per-group heap, and the event loop stops after
//!    `horizon` placements.
//!
//! # Why screening preserves bit-identity
//!
//! Ready-queue pop order in this scheduler is *structural*: a task becomes
//! ready when its last predecessor is placed, and the pop key is `(bottom
//! level, id)` — no start or finish time participates (see
//! [`crate::incremental`]'s module docs). The replay therefore pops in the
//! **same order** as the exact core. Its lower availability multiset
//! pointwise lower-bounds the true one — popping the `s` earliest
//! processors from a dominated sorted multiset yields an earlier `s`-th
//! free time, and re-inserting an earlier finish preserves dominance, as
//! does collapsing a full run list onto the *earlier* time of an adjacent
//! pair. By induction every replayed `start' ≤ start`, so `start' + bl >
//! threshold` proves the exact core would reject this offspring at the
//! same cutoff (its own `start + bl` at the same pop is at least as
//! large, and rejection at any pop yields [`BoundedEval::Rejected`]).
//! `SurrogateScore::screens` is exactly that test — same `(1 + 1e-9)`
//! threshold slack as the exact core and the delta prescreen, same bound
//! expressions as [`crate::bounds`], so all tiers compare bit-identical
//! quantities.
//!
//! The upper side runs in the same pass with the collapse flipped to keep
//! the *later* time of a merged pair, giving `hi ≥` the exact makespan
//! when the replay finishes (an exhausted horizon or an early screen
//! leaves `hi = ∞`). `hi` never affects correctness — the engine uses it
//! only to classify *ambiguous* offspring (interval straddles the cutoff)
//! for observability, and every unscreened offspring goes to tier 2
//! regardless.

use crate::allocation::Allocation;
use crate::bounds::{area_bound, critical_path_bound};
use crate::mapper::{BoundedEval, EvalScratch, ListScheduler};
use crate::soa_heap::{ready_entry, ready_task};
use exec_model::TimeMatrix;
use obs::Recorder;
use ptg::critpath::bottom_levels_into;
use ptg::Ptg;

/// Tuning knobs for the tier-1 replay. The defaults keep the replay
/// linear-time with tiny constants on the paper's 100-task graphs while
/// never binding the horizon there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Surrogate {
    /// Maximum availability runs tracked per side; a full list collapses
    /// its closest adjacent pair toward the sound side. Must be ≥ 1.
    pub buckets: usize,
    /// Maximum placements replayed before giving up on tightening the
    /// interval (the bounds gathered so far remain valid; `hi` becomes
    /// infinite).
    pub horizon: usize,
}

impl Default for Surrogate {
    fn default() -> Self {
        Surrogate {
            buckets: 8,
            horizon: 4096,
        }
    }
}

impl Surrogate {
    /// Hot-path screening configuration: rung bounds only, no replay.
    ///
    /// Measurement on the paper's Grelon/100-task workloads showed the
    /// replay prices itself out of the fused hot path: it pops tasks in
    /// the exact core's order at a comparable per-event cost, and its
    /// lower-bounded start times cross any cutoff no earlier than the
    /// exact core's own reject test does — so every replay event spent on
    /// an eventually-unscreened offspring is pure overhead, while a
    /// screened one would have been rejected by tier 2 for the same
    /// price. The area/critical-path rungs are the part that is genuinely
    /// ~10× cheaper than an exact evaluation, so the fused engine runs
    /// just those and leaves the full-interval replay (the [`Default`]
    /// configuration) to analysis contexts that want `hi` and interval
    /// widths.
    pub fn screening() -> Self {
        Surrogate {
            buckets: 8,
            horizon: 0,
        }
    }
}

/// A conservative score interval for one allocation at one cutoff.
///
/// `lo` lower-bounds the exact bounded evaluation's `reject_key` (hence
/// also the makespan of a completed schedule); `hi` upper-bounds the exact
/// makespan, or is `∞` when the replay could not finish.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurrogateScore {
    /// Proven lower bound on the exact `reject_key`.
    pub lo: f64,
    /// Upper bound on the exact makespan (`∞` when unknown).
    pub hi: f64,
}

impl SurrogateScore {
    /// True when the interval proves the exact bounded evaluation would
    /// return [`BoundedEval::Rejected`] at `cutoff` — the offspring cannot
    /// survive selection and tier 2 may be skipped without changing any
    /// decision. Same threshold slack as the exact core.
    #[inline]
    pub fn screens(&self, cutoff: f64) -> bool {
        self.lo > cutoff * (1.0 + 1e-9)
    }

    /// True when the interval straddles the cutoff: survival is genuinely
    /// unknown and only the tier-2 exact evaluation can decide it.
    #[inline]
    pub fn ambiguous(&self, cutoff: f64) -> bool {
        !self.screens(cutoff) && self.hi > cutoff * (1.0 + 1e-9)
    }

    /// Interval width (`∞` when the replay did not finish).
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Outcome of a fused two-tier evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TwoTierEval {
    /// Tier 1 proved the exact evaluation would reject at this cutoff, so
    /// tier 2 never ran.
    Screened(SurrogateScore),
    /// Tier 1 could not rule survival out; tier 2 ran the exact grouped
    /// core. The exact outcome decides — the score is observability only.
    Exact(SurrogateScore, BoundedEval),
}

/// Which way a full run list collapses an adjacent pair: `Down` keeps the
/// earlier free time (sound for the lower side), `Up` the later (upper
/// side).
#[derive(Clone, Copy, PartialEq)]
enum MergeSide {
    Down,
    Up,
}

/// Pops the `s` earliest processors off the time-sorted run list and
/// returns the free time of the latest one taken — the same quantity the
/// exact core reads from its final group pop.
#[inline]
fn take_runs(runs: &mut Vec<(f64, u32)>, s: u32) -> f64 {
    let mut need = s;
    let mut used = 0usize;
    let mut t = 0.0f64;
    for r in runs.iter_mut() {
        t = r.0;
        if r.1 > need {
            r.1 -= need;
            need = 0;
            break;
        }
        need -= r.1;
        used += 1;
        if need == 0 {
            break;
        }
    }
    debug_assert_eq!(need, 0, "allocation exceeds tracked processors");
    runs.drain(..used);
    t
}

/// Inserts `count` processors freeing at `time` into the sorted run list,
/// coalescing equal times; when the list exceeds `cap`, the adjacent pair
/// with the smallest time gap collapses toward `side`.
#[inline]
fn insert_run(runs: &mut Vec<(f64, u32)>, time: f64, count: u32, cap: usize, side: MergeSide) {
    let pos = runs.partition_point(|r| r.0 < time);
    if pos < runs.len() && runs[pos].0 == time {
        runs[pos].1 += count;
    } else {
        runs.insert(pos, (time, count));
    }
    if runs.len() > cap {
        let mut best = 0usize;
        let mut best_gap = f64::INFINITY;
        for i in 0..runs.len() - 1 {
            let gap = runs[i + 1].0 - runs[i].0;
            if gap < best_gap {
                best_gap = gap;
                best = i;
            }
        }
        let (t_later, c_later) = runs.remove(best + 1);
        let kept = &mut runs[best];
        kept.1 += c_later;
        if side == MergeSide::Up {
            kept.0 = t_later;
        }
    }
}

/// Computes the tier-1 interval for `alloc` at `cutoff`.
///
/// Leaves `scratch.times`/`scratch.bl` holding the allocation's values so
/// a fused tier 2 can reuse them — **unless** the area rung screened (bl
/// is then stale), which is fine because a screened offspring never
/// reaches tier 2. `scratch.in_deg`/`scratch.data_ready` are consumed as
/// the replay's dependency columns and must be re-seeded before an exact
/// run (see [`ListScheduler::evaluate_two_tier_obs`]).
// lint:hot-path
pub fn surrogate_score_obs<R: Recorder>(
    g: &Ptg,
    matrix: &TimeMatrix,
    alloc: &Allocation,
    cutoff: f64,
    cfg: &Surrogate,
    scratch: &mut EvalScratch,
    rec: &R,
) -> SurrogateScore {
    let n = g.task_count();
    assert_eq!(alloc.len(), n, "allocation/PTG size mismatch");
    let p_max = matrix.p_max();
    assert!(
        alloc.as_slice().iter().all(|&p| p <= p_max),
        "allocation exceeds platform size"
    );
    // Same slack rationale as `schedule_core_grouped`.
    let threshold = cutoff * (1.0 + 1e-9);

    // Rung 1: per-task times and the area bound — no bottom levels yet.
    matrix.fill_times(alloc.as_slice(), &mut scratch.times);
    let area = area_bound(alloc, &scratch.times, p_max);
    if area > threshold {
        if R::ENABLED {
            rec.add("sched.surrogate.area_screens", 1);
        }
        return SurrogateScore {
            lo: area,
            hi: f64::INFINITY,
        };
    }

    // Rung 2: bottom levels and the critical-path bound — the exact same
    // quantity the exact core tests at its first pop.
    bottom_levels_into(g, &scratch.times, &mut scratch.bl);
    let cp = critical_path_bound(&scratch.bl);
    let mut lo = cp.max(area);
    if cp > threshold {
        if R::ENABLED {
            rec.add("sched.surrogate.cp_screens", 1);
        }
        return SurrogateScore {
            lo,
            hi: f64::INFINITY,
        };
    }

    // Rung 3: bucketed replay, both interval sides in one pass (valid
    // because pop order is time-independent — see the module docs).
    let cap = cfg.buckets.max(1);
    let csr = g.csr();
    let widths = alloc.as_slice();
    let EvalScratch {
        times,
        bl,
        in_deg,
        data_ready,
        ready,
        sur_ready_hi,
        runs_lo,
        runs_hi,
        ..
    } = scratch;
    let times = times.as_slice();
    let bl = bl.as_slice();
    in_deg.clear();
    in_deg.extend_from_slice(csr.in_degrees());
    data_ready.clear();
    data_ready.resize(n, 0.0);
    sur_ready_hi.clear();
    sur_ready_hi.resize(n, 0.0);
    runs_lo.clear();
    runs_lo.push((0.0, p_max));
    runs_hi.clear();
    runs_hi.push((0.0, p_max));
    ready.clear();
    for &v in csr.sources() {
        ready.push(ready_entry(bl[v as usize], v));
    }
    let mut hi = 0.0f64;
    let mut placed = 0usize;
    let mut horizon_hit = false;
    while let Some(entry) = ready.pop() {
        if placed >= cfg.horizon {
            horizon_hit = true;
            break;
        }
        placed += 1;
        let v = ready_task(entry) as usize;
        let s = widths[v];
        let free_lo = take_runs(runs_lo, s);
        let free_hi = take_runs(runs_hi, s);
        let start_lo = data_ready[v].max(free_lo);
        let lb = start_lo + bl[v];
        if lb > lo {
            lo = lb;
        }
        if lb > threshold {
            // The exact core's `start + bl` at this same pop is ≥ `lb`, so
            // it rejects here (or earlier).
            if R::ENABLED {
                rec.add("sched.surrogate.replay_screens", 1);
                rec.add("sched.surrogate.replay_screen_events", placed as u64);
            }
            return SurrogateScore {
                lo,
                hi: f64::INFINITY,
            };
        }
        let finish_lo = start_lo + times[v];
        let finish_hi = sur_ready_hi[v].max(free_hi) + times[v];
        if finish_hi > hi {
            hi = finish_hi;
        }
        insert_run(runs_lo, finish_lo, s, cap, MergeSide::Down);
        insert_run(runs_hi, finish_hi, s, cap, MergeSide::Up);
        for &w in csr.successors(v as u32) {
            let wi = w as usize;
            data_ready[wi] = data_ready[wi].max(finish_lo);
            sur_ready_hi[wi] = sur_ready_hi[wi].max(finish_hi);
            in_deg[wi] -= 1;
            if in_deg[wi] == 0 {
                ready.push(ready_entry(bl[wi], w));
            }
        }
    }
    if R::ENABLED {
        rec.add("sched.surrogate.replays", 1);
        rec.add("sched.surrogate.replay_events", placed as u64);
    }
    let hi = if horizon_hit {
        f64::INFINITY
    } else {
        hi.max(lo)
    };
    SurrogateScore { lo, hi }
}

impl ListScheduler {
    /// Fused two-tier evaluation: tier-1 surrogate first, the exact
    /// grouped core only when the interval cannot rule survival out.
    ///
    /// Exactly one of the two outcomes:
    /// * [`TwoTierEval::Screened`] — the exact evaluation at this cutoff
    ///   is *proven* to be [`BoundedEval::Rejected`], without running it;
    /// * [`TwoTierEval::Exact`] — the carried [`BoundedEval`] is
    ///   bit-identical to [`Self::evaluate_bounded_obs`] at the same
    ///   cutoff.
    // lint:hot-path
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_two_tier_obs<R: Recorder>(
        &self,
        g: &Ptg,
        matrix: &TimeMatrix,
        alloc: &Allocation,
        cutoff: f64,
        cfg: &Surrogate,
        scratch: &mut EvalScratch,
        rec: &R,
    ) -> TwoTierEval {
        let score = surrogate_score_obs(g, matrix, alloc, cutoff, cfg, scratch, rec);
        if score.screens(cutoff) {
            if R::ENABLED {
                rec.event("sched.tier.screened", score.lo.to_bits());
            }
            return TwoTierEval::Screened(score);
        }
        // Tier 2 reuses tier 1's times and bottom levels; only the
        // dependency columns the replay consumed need re-seeding.
        let csr = g.csr();
        scratch.in_deg.clear();
        scratch.in_deg.extend_from_slice(csr.in_degrees());
        scratch.data_ready.clear();
        scratch.data_ready.resize(g.task_count(), 0.0);
        let eval = Self::schedule_core_grouped(g, alloc, matrix.p_max(), cutoff, scratch, rec);
        TwoTierEval::Exact(score, eval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mapper;
    use exec_model::{Amdahl, SyntheticModel};
    use obs::NoopRecorder;
    use ptg::{PtgBuilder, TaskId};

    fn xorshift(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed | 1;
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        }
    }

    fn random_setup(seed: u64, n: usize, p: u32, amdahl: bool) -> (Ptg, TimeMatrix) {
        let mut next = xorshift(seed);
        let mut b = PtgBuilder::new();
        for i in 0..n {
            let flop = 1e9 + (next() % 1000) as f64 * 1e7;
            let alpha = (next() % 30) as f64 / 100.0;
            b.add_task(format!("t{i}"), flop, alpha);
        }
        for v in 1..n {
            for _ in 0..=(next() % 3) {
                let pr = (next() % v as u64) as u32;
                let _ = b.add_edge(TaskId(pr), TaskId(v as u32));
            }
        }
        let g = b.build().unwrap();
        let m = if amdahl {
            TimeMatrix::compute(&g, &Amdahl, 1e9, p)
        } else {
            TimeMatrix::compute(&g, &SyntheticModel::default(), 1e9, p)
        };
        (g, m)
    }

    fn random_alloc(seed: u64, n: usize, p: u32) -> Allocation {
        let mut next = xorshift(seed);
        Allocation::from_vec((0..n).map(|_| 1 + (next() % p as u64) as u32).collect())
    }

    #[test]
    fn interval_brackets_the_exact_makespan() {
        let cfg = Surrogate::default();
        for seed in 1..20u64 {
            for amdahl in [false, true] {
                let (g, m) = random_setup(seed, 50, 24, amdahl);
                let alloc = random_alloc(seed.wrapping_mul(13), 50, 24);
                let mut scratch = EvalScratch::new();
                let score = surrogate_score_obs(
                    &g,
                    &m,
                    &alloc,
                    f64::INFINITY,
                    &cfg,
                    &mut scratch,
                    &NoopRecorder,
                );
                let exact = ListScheduler.makespan(&g, &m, &alloc);
                assert!(
                    score.lo <= exact && exact <= score.hi,
                    "seed {seed} amdahl {amdahl}: [{}, {}] misses {exact}",
                    score.lo,
                    score.hi
                );
                assert!(score.width() >= 0.0);
            }
        }
    }

    #[test]
    fn screening_implies_exact_rejection() {
        // Whenever tier 1 screens, the exact bounded evaluation must agree
        // — the bit-identity contract the engine builds on.
        let cfg = Surrogate::default();
        let mut screened = 0usize;
        for seed in 1..30u64 {
            let (g, m) = random_setup(seed, 50, 16, seed % 2 == 0);
            let base = random_alloc(seed, 50, 16);
            let cutoff = ListScheduler.makespan(&g, &m, &base);
            for k in 0..4u64 {
                let alloc = random_alloc(seed.wrapping_mul(101 + k), 50, 16);
                let mut scratch = EvalScratch::new();
                let score =
                    surrogate_score_obs(&g, &m, &alloc, cutoff, &cfg, &mut scratch, &NoopRecorder);
                if score.screens(cutoff) {
                    screened += 1;
                    assert_eq!(
                        ListScheduler.makespan_bounded(&g, &m, &alloc, cutoff),
                        None,
                        "seed {seed} k {k}: screened but exact completed"
                    );
                }
            }
        }
        assert!(screened > 0, "screen never fired across 29 seeds");
    }

    #[test]
    fn two_tier_exact_arm_is_bit_identical_to_direct_evaluation() {
        let cfg = Surrogate::default();
        for seed in 1..12u64 {
            let (g, m) = random_setup(seed, 40, 16, seed % 2 == 0);
            let alloc = random_alloc(seed.wrapping_mul(7), 40, 16);
            let base = ListScheduler.makespan(&g, &m, &alloc);
            for factor in [f64::INFINITY, 2.0, 1.0, 0.7] {
                let cutoff = base * factor;
                let mut scratch = EvalScratch::new();
                let tiered = ListScheduler.evaluate_two_tier_obs(
                    &g,
                    &m,
                    &alloc,
                    cutoff,
                    &cfg,
                    &mut scratch,
                    &NoopRecorder,
                );
                let fresh =
                    ListScheduler.evaluate_bounded_with(&g, &m, &alloc, cutoff, &mut scratch);
                match tiered {
                    TwoTierEval::Screened(score) => {
                        assert!(score.screens(cutoff));
                        assert_eq!(fresh, BoundedEval::Rejected, "seed {seed} factor {factor}");
                    }
                    TwoTierEval::Exact(_, eval) => {
                        assert_eq!(eval, fresh, "seed {seed} factor {factor}");
                    }
                }
            }
        }
    }

    #[test]
    fn dead_interval_never_triggers_exact_evaluation() {
        // An interval strictly below the cutoff... cannot exist on the
        // screening side: screening means `lo` strictly *above*. The
        // satellite contract is the dual — once the interval proves the
        // offspring dead (lo beyond the cutoff), tier 2 must not run. The
        // grouped core counts every placement into the recorder, so a
        // screened fused evaluation must leave the placement counter at
        // zero.
        use obs::StatsRecorder;
        let cfg = Surrogate::default();
        let mut found = false;
        for seed in 1..30u64 {
            let (g, m) = random_setup(seed, 50, 16, false);
            let alloc = random_alloc(seed.wrapping_mul(31), 50, 16);
            let base = ListScheduler.makespan(&g, &m, &random_alloc(seed, 50, 16));
            let cutoff = base * 0.3;
            let mut scratch = EvalScratch::new();
            let rec = StatsRecorder::default();
            let tiered = ListScheduler.evaluate_two_tier_obs(
                &g,
                &m,
                &alloc,
                cutoff,
                &cfg,
                &mut scratch,
                &rec,
            );
            if let TwoTierEval::Screened(score) = tiered {
                found = true;
                assert!(score.screens(cutoff));
                assert_eq!(
                    rec.counter("sched.tasks_placed"),
                    0,
                    "seed {seed}: exact core ran after a screen"
                );
            }
        }
        assert!(found, "no screened evaluation across 29 seeds");
    }

    #[test]
    fn infinite_cutoff_never_screens_and_gives_a_finite_interval() {
        let cfg = Surrogate::default();
        let (g, m) = random_setup(5, 60, 32, false);
        let alloc = random_alloc(9, 60, 32);
        let mut scratch = EvalScratch::new();
        let score = surrogate_score_obs(
            &g,
            &m,
            &alloc,
            f64::INFINITY,
            &cfg,
            &mut scratch,
            &NoopRecorder,
        );
        assert!(!score.screens(f64::INFINITY));
        assert!(!score.ambiguous(f64::INFINITY));
        assert!(score.hi.is_finite());
    }

    #[test]
    fn exhausted_horizon_keeps_lo_sound_and_hi_infinite() {
        let cfg = Surrogate {
            buckets: 8,
            horizon: 5,
        };
        let (g, m) = random_setup(3, 60, 16, true);
        let alloc = random_alloc(4, 60, 16);
        let mut scratch = EvalScratch::new();
        let score = surrogate_score_obs(
            &g,
            &m,
            &alloc,
            f64::INFINITY,
            &cfg,
            &mut scratch,
            &NoopRecorder,
        );
        assert!(score.hi.is_infinite());
        let exact = ListScheduler.makespan(&g, &m, &alloc);
        assert!(score.lo <= exact);
    }

    #[test]
    fn one_bucket_degrades_gracefully() {
        // cap = 1 collapses every insert; the interval stays valid, just
        // loose.
        let cfg = Surrogate {
            buckets: 1,
            horizon: usize::MAX,
        };
        for seed in 1..8u64 {
            let (g, m) = random_setup(seed, 40, 8, false);
            let alloc = random_alloc(seed, 40, 8);
            let mut scratch = EvalScratch::new();
            let score = surrogate_score_obs(
                &g,
                &m,
                &alloc,
                f64::INFINITY,
                &cfg,
                &mut scratch,
                &NoopRecorder,
            );
            let exact = ListScheduler.makespan(&g, &m, &alloc);
            assert!(
                score.lo <= exact && exact <= score.hi,
                "seed {seed}: [{}, {}] misses {exact}",
                score.lo,
                score.hi
            );
        }
    }

    #[test]
    fn run_list_take_and_insert_keep_counts_conserved() {
        let mut runs = vec![(0.0, 8u32)];
        let t = take_runs(&mut runs, 3);
        assert_eq!(t, 0.0);
        assert_eq!(runs, vec![(0.0, 5)]);
        insert_run(&mut runs, 2.0, 3, 4, MergeSide::Down);
        assert_eq!(runs, vec![(0.0, 5), (2.0, 3)]);
        // Taking 6 spans both runs; the returned time is the later one.
        let t = take_runs(&mut runs, 6);
        assert_eq!(t, 2.0);
        assert_eq!(runs, vec![(2.0, 2)]);
        // Cap overflow collapses the closest pair toward the chosen side.
        insert_run(&mut runs, 5.0, 1, 3, MergeSide::Down);
        insert_run(&mut runs, 5.1, 2, 3, MergeSide::Down);
        insert_run(&mut runs, 9.0, 3, 3, MergeSide::Down);
        assert_eq!(runs, vec![(2.0, 2), (5.0, 3), (9.0, 3)]);
        insert_run(&mut runs, 9.5, 1, 3, MergeSide::Up);
        assert_eq!(runs, vec![(2.0, 2), (5.0, 3), (9.5, 4)]);
        assert_eq!(runs.iter().map(|r| r.1).sum::<u32>(), 9);
    }
}
