//! Schedules: the output of the mapping step.

use ptg::TaskId;
use serde::{Deserialize, Serialize};

/// One task's placement: when it runs and on which processors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// The scheduled task.
    pub task: TaskId,
    /// Start time in seconds.
    pub start: f64,
    /// Finish time in seconds (`start + duration`).
    pub finish: f64,
    /// Indices of the processors executing the task (all in `0..P`,
    /// strictly increasing, `len == s(task)`).
    pub processors: Vec<u32>,
}

impl Placement {
    /// The task's execution time.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.finish - self.start
    }

    /// Number of processors used.
    #[inline]
    pub fn width(&self) -> u32 {
        self.processors.len() as u32
    }

    /// True if this placement overlaps `other` in time (open intervals, so
    /// back-to-back tasks do not overlap).
    pub fn overlaps_in_time(&self, other: &Placement) -> bool {
        self.start < other.finish && other.start < self.finish
    }

    /// True if the two placements share at least one processor.
    pub fn shares_processor(&self, other: &Placement) -> bool {
        // Processor lists are sorted; merge-scan.
        let (mut i, mut j) = (0, 0);
        while i < self.processors.len() && j < other.processors.len() {
            match self.processors[i].cmp(&other.processors[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }
}

/// A complete schedule of one PTG on `processors` processors.
///
/// Placements are stored indexed by task (`placements[v.index()].task == v`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Total number of processors of the platform.
    pub processors: u32,
    /// One placement per task, indexed by [`TaskId::index`].
    pub placements: Vec<Placement>,
}

impl Schedule {
    /// Builds a schedule from per-task placements, sorting them by task id.
    ///
    /// # Panics
    /// Panics if task ids are not exactly `0..n` or any processor index is
    /// out of range.
    pub fn new(processors: u32, mut placements: Vec<Placement>) -> Self {
        placements.sort_by_key(|p| p.task);
        for (i, p) in placements.iter().enumerate() {
            assert_eq!(p.task.index(), i, "placements must cover tasks densely");
            assert!(
                p.processors.windows(2).all(|w| w[0] < w[1]),
                "processor list of {} must be strictly increasing",
                p.task
            );
            assert!(
                p.processors.iter().all(|&q| q < processors),
                "processor index out of range for {}",
                p.task
            );
            assert!(!p.processors.is_empty(), "{} uses no processors", p.task);
            assert!(
                p.finish >= p.start && p.start >= 0.0,
                "negative-duration placement for {}",
                p.task
            );
        }
        Schedule {
            processors,
            placements,
        }
    }

    /// Number of scheduled tasks.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.placements.len()
    }

    /// The placement of task `v`.
    #[inline]
    pub fn placement(&self, v: TaskId) -> &Placement {
        &self.placements[v.index()]
    }

    /// The schedule's makespan: the latest finish time.
    pub fn makespan(&self) -> f64 {
        self.placements.iter().map(|p| p.finish).fold(0.0, f64::max)
    }

    /// Busy processor-seconds: `Σ_v duration(v) · width(v)`.
    pub fn busy_area(&self) -> f64 {
        self.placements
            .iter()
            .map(|p| p.duration() * p.width() as f64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(task: u32, start: f64, finish: f64, procs: &[u32]) -> Placement {
        Placement {
            task: TaskId(task),
            start,
            finish,
            processors: procs.to_vec(),
        }
    }

    #[test]
    fn makespan_is_latest_finish() {
        let s = Schedule::new(4, vec![pl(0, 0.0, 2.0, &[0, 1]), pl(1, 2.0, 5.0, &[0])]);
        assert_eq!(s.makespan(), 5.0);
    }

    #[test]
    fn busy_area_weights_by_width() {
        let s = Schedule::new(4, vec![pl(0, 0.0, 2.0, &[0, 1]), pl(1, 2.0, 5.0, &[0])]);
        assert_eq!(s.busy_area(), 2.0 * 2.0 + 3.0);
    }

    #[test]
    fn placements_are_reordered_by_task() {
        let s = Schedule::new(2, vec![pl(1, 1.0, 2.0, &[0]), pl(0, 0.0, 1.0, &[1])]);
        assert_eq!(s.placement(TaskId(0)).start, 0.0);
        assert_eq!(s.placement(TaskId(1)).start, 1.0);
    }

    #[test]
    fn overlap_detection_uses_open_intervals() {
        let a = pl(0, 0.0, 1.0, &[0]);
        let b = pl(1, 1.0, 2.0, &[0]);
        let c = pl(2, 0.5, 1.5, &[0]);
        assert!(!a.overlaps_in_time(&b), "back-to-back is not an overlap");
        assert!(a.overlaps_in_time(&c));
        assert!(c.overlaps_in_time(&b));
    }

    #[test]
    fn processor_sharing_merge_scan() {
        let a = pl(0, 0.0, 1.0, &[0, 2, 4]);
        let b = pl(1, 0.0, 1.0, &[1, 3, 5]);
        let c = pl(2, 0.0, 1.0, &[4, 5]);
        assert!(!a.shares_processor(&b));
        assert!(a.shares_processor(&c));
        assert!(b.shares_processor(&c));
    }

    #[test]
    #[should_panic(expected = "densely")]
    fn sparse_task_ids_rejected() {
        let _ = Schedule::new(2, vec![pl(0, 0.0, 1.0, &[0]), pl(2, 0.0, 1.0, &[1])]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_processors_rejected() {
        let _ = Schedule::new(4, vec![pl(0, 0.0, 1.0, &[2, 1])]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn processor_index_out_of_range_rejected() {
        let _ = Schedule::new(2, vec![pl(0, 0.0, 1.0, &[2])]);
    }
}
