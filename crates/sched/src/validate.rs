//! Schedule validation: the safety net under every mapper and the EA.

use crate::allocation::Allocation;
use crate::schedule::Schedule;
use exec_model::TimeMatrix;
use ptg::{Ptg, TaskId};
use std::fmt;

/// Violations a schedule can exhibit.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleViolation {
    /// The schedule covers a different number of tasks than the PTG.
    TaskCountMismatch { expected: usize, actual: usize },
    /// Task uses a different processor count than its allocation.
    WidthMismatch { task: TaskId, alloc: u32, used: u32 },
    /// Task duration disagrees with the execution-time model.
    DurationMismatch {
        task: TaskId,
        expected: f64,
        actual: f64,
    },
    /// A task starts before one of its predecessors finishes.
    DependencyViolated { pred: TaskId, succ: TaskId },
    /// Two tasks overlap in time on the same processor.
    ProcessorOverlap {
        a: TaskId,
        b: TaskId,
        processor: u32,
    },
}

impl fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleViolation::TaskCountMismatch { expected, actual } => {
                write!(f, "schedule covers {actual} tasks, PTG has {expected}")
            }
            ScheduleViolation::WidthMismatch { task, alloc, used } => {
                write!(f, "{task} allocated {alloc} processors but uses {used}")
            }
            ScheduleViolation::DurationMismatch {
                task,
                expected,
                actual,
            } => {
                write!(f, "{task} runs for {actual}s, model says {expected}s")
            }
            ScheduleViolation::DependencyViolated { pred, succ } => {
                write!(f, "{succ} starts before its predecessor {pred} finishes")
            }
            ScheduleViolation::ProcessorOverlap { a, b, processor } => {
                write!(f, "{a} and {b} overlap on processor {processor}")
            }
        }
    }
}

impl std::error::Error for ScheduleViolation {}

/// Checks every invariant of a schedule against its PTG, allocation and
/// execution-time matrix. Returns the first violation found (tests usually
/// want [`all_violations`] instead).
///
/// Thin wrapper over [`for_each_violation`]: it stops the enumerator at the
/// first violation instead of re-scanning the whole schedule.
pub fn validate_schedule(
    g: &Ptg,
    matrix: &TimeMatrix,
    alloc: &Allocation,
    schedule: &Schedule,
) -> Result<(), ScheduleViolation> {
    let mut first = None;
    for_each_violation(g, matrix, alloc, schedule, &mut |v| {
        first = Some(v);
        false // stop after the first violation
    });
    first.map_or(Ok(()), Err)
}

/// Collects **all** violations of a schedule.
pub fn all_violations(
    g: &Ptg,
    matrix: &TimeMatrix,
    alloc: &Allocation,
    schedule: &Schedule,
) -> Vec<ScheduleViolation> {
    let mut out = Vec::new();
    for_each_violation(g, matrix, alloc, schedule, &mut |v| {
        out.push(v);
        true
    });
    out
}

/// The single violation enumerator behind [`validate_schedule`],
/// [`all_violations`] and the `emts-lint` schedule rules.
///
/// Calls `sink` for every violation in a deterministic order (per-task width
/// and duration checks, then dependency checks in edge order, then per-
/// processor capacity scans). `sink` returns `false` to stop enumeration —
/// that is how the short-circuit API avoids scanning past the first
/// violation. A task-count mismatch always terminates the enumeration since
/// every later check indexes placements by task id.
pub fn for_each_violation(
    g: &Ptg,
    matrix: &TimeMatrix,
    alloc: &Allocation,
    schedule: &Schedule,
    sink: &mut dyn FnMut(ScheduleViolation) -> bool,
) {
    if schedule.task_count() != g.task_count() {
        sink(ScheduleViolation::TaskCountMismatch {
            expected: g.task_count(),
            actual: schedule.task_count(),
        });
        return; // everything below indexes by task
    }
    const REL_TOL: f64 = 1e-9;

    for v in g.task_ids() {
        let p = schedule.placement(v);
        if p.width() != alloc.of(v)
            && !sink(ScheduleViolation::WidthMismatch {
                task: v,
                alloc: alloc.of(v),
                used: p.width(),
            })
        {
            return;
        }
        let expected = matrix.time(v, p.width().max(1));
        let actual = p.duration();
        if (actual - expected).abs() > REL_TOL * expected.max(1.0)
            && !sink(ScheduleViolation::DurationMismatch {
                task: v,
                expected,
                actual,
            })
        {
            return;
        }
    }

    // Dependencies: successor may start exactly at the predecessor's finish.
    for (a, b) in g.edges() {
        let fa = schedule.placement(a).finish;
        let sb = schedule.placement(b).start;
        if sb + REL_TOL * fa.max(1.0) < fa
            && !sink(ScheduleViolation::DependencyViolated { pred: a, succ: b })
        {
            return;
        }
    }

    // Processor capacity: per processor, sort intervals and scan.
    let mut per_proc: Vec<Vec<(f64, f64, TaskId)>> = vec![Vec::new(); schedule.processors as usize];
    for pl in &schedule.placements {
        for &q in &pl.processors {
            per_proc[q as usize].push((pl.start, pl.finish, pl.task));
        }
    }
    for (q, intervals) in per_proc.iter_mut().enumerate() {
        intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in intervals.windows(2) {
            let (_, f0, t0) = w[0];
            let (s1, f1, t1) = w[1];
            // Allow touching intervals; zero-duration tasks can share an instant.
            if s1 + REL_TOL * f0.max(1.0) < f0
                && f1 > s1
                && !sink(ScheduleViolation::ProcessorOverlap {
                    a: t0,
                    b: t1,
                    processor: q as u32,
                })
            {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{ListScheduler, Mapper};
    use crate::schedule::Placement;
    use exec_model::Amdahl;
    use ptg::PtgBuilder;

    fn chain2() -> Ptg {
        let mut b = PtgBuilder::new();
        let a = b.add_task("a", 1e9, 0.0);
        let c = b.add_task("c", 1e9, 0.0);
        b.add_edge(a, c).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn mapper_output_is_clean() {
        let g = chain2();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 4);
        let alloc = Allocation::from_vec(vec![2, 3]);
        let s = ListScheduler.map(&g, &m, &alloc);
        assert!(all_violations(&g, &m, &alloc, &s).is_empty());
    }

    #[test]
    fn dependency_violation_is_detected() {
        let g = chain2();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 2);
        let alloc = Allocation::ones(2);
        let s = Schedule::new(
            2,
            vec![
                Placement {
                    task: TaskId(0),
                    start: 0.0,
                    finish: 1.0,
                    processors: vec![0],
                },
                Placement {
                    task: TaskId(1),
                    start: 0.5,
                    finish: 1.5,
                    processors: vec![1],
                },
            ],
        );
        let v = all_violations(&g, &m, &alloc, &s);
        assert!(
            v.iter()
                .any(|x| matches!(x, ScheduleViolation::DependencyViolated { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn processor_overlap_is_detected() {
        let mut b = PtgBuilder::new();
        b.add_task("a", 1e9, 0.0);
        b.add_task("b", 1e9, 0.0);
        let g = b.build().unwrap();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 2);
        let alloc = Allocation::ones(2);
        let s = Schedule::new(
            2,
            vec![
                Placement {
                    task: TaskId(0),
                    start: 0.0,
                    finish: 1.0,
                    processors: vec![0],
                },
                Placement {
                    task: TaskId(1),
                    start: 0.5,
                    finish: 1.5,
                    processors: vec![0],
                },
            ],
        );
        let v = all_violations(&g, &m, &alloc, &s);
        assert!(
            v.iter()
                .any(|x| matches!(x, ScheduleViolation::ProcessorOverlap { processor: 0, .. })),
            "{v:?}"
        );
    }

    #[test]
    fn width_and_duration_mismatches_are_detected() {
        let g = chain2();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 4);
        let alloc = Allocation::from_vec(vec![2, 1]);
        let s = Schedule::new(
            4,
            vec![
                // width 1 but allocated 2; duration 2.0 but model says 1.0
                Placement {
                    task: TaskId(0),
                    start: 0.0,
                    finish: 2.0,
                    processors: vec![0],
                },
                Placement {
                    task: TaskId(1),
                    start: 2.0,
                    finish: 3.0,
                    processors: vec![1],
                },
            ],
        );
        let v = all_violations(&g, &m, &alloc, &s);
        assert!(v
            .iter()
            .any(|x| matches!(x, ScheduleViolation::WidthMismatch { .. })));
        assert!(v
            .iter()
            .any(|x| matches!(x, ScheduleViolation::DurationMismatch { .. })));
    }

    #[test]
    fn task_count_mismatch_short_circuits() {
        let g = chain2();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 2);
        let alloc = Allocation::ones(2);
        let s = Schedule::new(
            2,
            vec![Placement {
                task: TaskId(0),
                start: 0.0,
                finish: 1.0,
                processors: vec![0],
            }],
        );
        assert_eq!(
            validate_schedule(&g, &m, &alloc, &s),
            Err(ScheduleViolation::TaskCountMismatch {
                expected: 2,
                actual: 1
            })
        );
    }

    #[test]
    fn short_circuit_agrees_with_the_full_enumeration() {
        // Schedule with several simultaneous violations: the short-circuit
        // path must return exactly the first violation of the full list,
        // because both are driven by the same enumerator.
        let g = chain2();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 4);
        let alloc = Allocation::from_vec(vec![2, 1]);
        let s = Schedule::new(
            4,
            vec![
                Placement {
                    task: TaskId(0),
                    start: 0.0,
                    finish: 2.0,
                    processors: vec![0],
                },
                Placement {
                    task: TaskId(1),
                    start: 0.5,
                    finish: 1.5,
                    processors: vec![0],
                },
            ],
        );
        let all = all_violations(&g, &m, &alloc, &s);
        assert!(all.len() >= 3, "{all:?}");
        assert_eq!(validate_schedule(&g, &m, &alloc, &s), Err(all[0].clone()));

        // And the early exit really stops the enumerator.
        let mut seen = 0;
        for_each_violation(&g, &m, &alloc, &s, &mut |_| {
            seen += 1;
            false
        });
        assert_eq!(seen, 1);
    }

    #[test]
    fn touching_intervals_are_legal() {
        let mut b = PtgBuilder::new();
        b.add_task("a", 1e9, 0.0);
        b.add_task("b", 1e9, 0.0);
        let g = b.build().unwrap();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 1);
        let alloc = Allocation::ones(2);
        let s = Schedule::new(
            1,
            vec![
                Placement {
                    task: TaskId(0),
                    start: 0.0,
                    finish: 1.0,
                    processors: vec![0],
                },
                Placement {
                    task: TaskId(1),
                    start: 1.0,
                    finish: 2.0,
                    processors: vec![0],
                },
            ],
        );
        assert!(all_violations(&g, &m, &alloc, &s).is_empty());
    }
}
