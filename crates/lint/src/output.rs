//! Report rendering: human-readable text and machine-readable JSON.

use crate::findings::Finding;
use crate::rules::Severity;
use serde::Serialize;
use std::fmt::Write as _;

/// Schema version of the JSON report.
pub const REPORT_VERSION: u32 = 1;

/// The machine-readable report (`--format json`).
#[derive(Debug, Serialize)]
pub struct Report {
    /// Format version.
    pub version: u32,
    /// Findings not absorbed by the baseline.
    pub findings: Vec<Finding>,
    /// How many findings the baseline absorbed.
    pub baselined: usize,
    /// Per-severity counts of `findings`.
    pub summary: Summary,
}

/// Per-severity counts.
#[derive(Debug, Default, PartialEq, Serialize)]
pub struct Summary {
    /// Number of error-severity findings.
    pub errors: usize,
    /// Number of warning-severity findings.
    pub warnings: usize,
    /// Number of info-severity findings.
    pub infos: usize,
}

/// Counts findings by severity.
pub fn summarize(findings: &[Finding]) -> Summary {
    let mut s = Summary::default();
    for f in findings {
        match f.severity {
            Severity::Error => s.errors += 1,
            Severity::Warning => s.warnings += 1,
            Severity::Info => s.infos += 1,
        }
    }
    s
}

/// Renders the text report.
pub fn render_text(findings: &[Finding], baselined: usize) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{f}");
        if !f.witness.is_empty() {
            let _ = writeln!(out, "    witness: {}", f.witness.join(" → "));
        }
    }
    let s = summarize(findings);
    let _ = write!(
        out,
        "{} error{}, {} warning{}, {} info",
        s.errors,
        if s.errors == 1 { "" } else { "s" },
        s.warnings,
        if s.warnings == 1 { "" } else { "s" },
        s.infos
    );
    if baselined > 0 {
        let _ = write!(out, " ({baselined} baselined)");
    }
    out.push('\n');
    out
}

/// Renders the JSON report.
pub fn render_json(findings: &[Finding], baselined: usize) -> String {
    let report = Report {
        version: REPORT_VERSION,
        findings: findings.to_vec(),
        baselined,
        summary: summarize(findings),
    };
    serde_json::to_string_pretty(&report).unwrap_or_else(|_| "{}".to_string())
}

/// True if any finding reaches the `--deny` threshold.
pub fn reaches(findings: &[Finding], threshold: Severity) -> bool {
    findings.iter().any(|f| f.severity >= threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules;

    #[test]
    fn text_report_lists_findings_and_counts() {
        let f = vec![
            Finding::new(&rules::PTG_CYCLE, "g.ptg", Some(3), "cycle"),
            Finding::new(&rules::PTG_ORPHAN, "g.ptg", Some(5), "orphan"),
        ];
        let text = render_text(&f, 1);
        assert!(text.contains("g.ptg:3: error [ptg-cycle] cycle"));
        assert!(text.contains("1 error, 1 warning, 0 info (1 baselined)"));
    }

    #[test]
    fn thresholds_respect_severity_order() {
        let warn = vec![Finding::new(&rules::PTG_ORPHAN, "g.ptg", None, "m")];
        assert!(!reaches(&warn, Severity::Error));
        assert!(reaches(&warn, Severity::Warning));
        assert!(reaches(&warn, Severity::Info));
        assert!(!reaches(&[], Severity::Info));
    }

    #[test]
    fn json_report_is_schema_versioned() {
        let f = vec![Finding::new(&rules::PTG_CYCLE, "g.ptg", Some(3), "cycle")];
        let json = render_json(&f, 0);
        // The vendored serde_json keeps its Value type private, so assert
        // on the canonical rendering directly.
        for needle in [
            "\"version\": 1",
            "\"rule\": \"ptg-cycle\"",
            "\"severity\": \"error\"",
            "\"line\": 3",
            "\"errors\": 1",
            "\"baselined\": 0",
        ] {
            assert!(json.contains(needle), "{needle} missing in {json}");
        }
    }
}
