//! Line-anchored lints for the project's text artifacts: `*.ptg` graphs,
//! `*.platform` clusters and `*.faults` fault specifications.
//!
//! Unlike the strict parsers in `sim::formats` and `platform::file` — which
//! stop at the first error — these lints are *lenient*: they keep scanning
//! after a bad line so a single run reports every problem in a file, each
//! anchored to the line that caused it.

use crate::findings::Finding;
use crate::rules;
use sim::faults::FaultSpec;

/// Lints a PTG text file: parse errors, degenerate tasks, out-of-range
/// edges, cycles (anchored at the edge that closes them), duplicate edges
/// and orphan tasks.
pub fn lint_ptg_file(file: &str, input: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    // (line, flop, alpha) per task, in definition order.
    let mut tasks: Vec<(usize, f64, f64)> = Vec::new();
    // (line, from, to) per syntactically valid edge.
    let mut edges: Vec<(usize, usize, usize)> = Vec::new();

    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let malformed = |out: &mut Vec<Finding>, what: &str| {
            out.push(Finding::new(
                &rules::PTG_PARSE,
                file,
                Some(line_no),
                format!("{what}: {line:?}"),
            ));
        };
        match parts.next() {
            Some("task") => {
                let name = parts.next();
                let flop = parts.next().and_then(|s| s.parse::<f64>().ok());
                let alpha = parts.next().and_then(|s| s.parse::<f64>().ok());
                let (Some(name), Some(flop), Some(alpha)) = (name, flop, alpha) else {
                    malformed(&mut out, "task needs a name and two numbers");
                    continue;
                };
                if parts.next().is_some() {
                    malformed(&mut out, "trailing fields after task directive");
                    continue;
                }
                let task = ptg::Task {
                    name: name.to_string(),
                    flop,
                    alpha,
                };
                if let Err(msg) = task.validate() {
                    out.push(Finding::new(
                        &rules::PTG_DEGENERATE_TASK,
                        file,
                        Some(line_no),
                        msg,
                    ));
                }
                // Degenerate tasks still occupy an id, so later edges to
                // them are not spurious range errors.
                tasks.push((line_no, flop, alpha));
            }
            Some("edge") => {
                let from = parts.next().and_then(|s| s.parse::<usize>().ok());
                let to = parts.next().and_then(|s| s.parse::<usize>().ok());
                let (Some(from), Some(to)) = (from, to) else {
                    malformed(&mut out, "edge needs two task ids");
                    continue;
                };
                if parts.next().is_some() {
                    malformed(&mut out, "trailing fields after edge directive");
                    continue;
                }
                edges.push((line_no, from, to));
            }
            _ => malformed(&mut out, "unknown directive"),
        }
    }

    if tasks.is_empty() {
        out.push(Finding::new(
            &rules::PTG_PARSE,
            file,
            Some(1),
            "file defines no tasks",
        ));
        return out;
    }

    // Edge semantics: range, self-cycles, duplicates, then cycles — each
    // anchored at the edge that introduces the problem. Edges are added to
    // the adjacency incrementally in file order; an edge whose target
    // already reaches its source closes a cycle.
    let n = tasks.len();
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut touched = vec![false; n];
    let mut seen = std::collections::HashSet::new();
    for &(line_no, from, to) in &edges {
        if from >= n || to >= n {
            out.push(Finding::new(
                &rules::PTG_EDGE_RANGE,
                file,
                Some(line_no),
                format!("edge {from} -> {to}: only tasks 0..{n} are defined"),
            ));
            continue;
        }
        touched[from] = true;
        touched[to] = true;
        if from == to {
            out.push(Finding::new(
                &rules::PTG_CYCLE,
                file,
                Some(line_no),
                format!("edge {from} -> {to} is a self-cycle"),
            ));
            continue;
        }
        if !seen.insert((from, to)) {
            out.push(Finding::new(
                &rules::PTG_DUPLICATE_EDGE,
                file,
                Some(line_no),
                format!("edge {from} -> {to} repeats an earlier edge"),
            ));
            continue;
        }
        if reaches(&adjacency, to, from) {
            out.push(Finding::new(
                &rules::PTG_CYCLE,
                file,
                Some(line_no),
                format!("edge {from} -> {to} closes a dependency cycle"),
            ));
            continue; // keep the graph acyclic for later checks
        }
        adjacency[from].push(to);
    }

    if n >= 2 {
        for (i, &(line_no, _, _)) in tasks.iter().enumerate() {
            if !touched[i] {
                out.push(Finding::new(
                    &rules::PTG_ORPHAN,
                    file,
                    Some(line_no),
                    format!("task {i} has no edges in a {n}-task graph"),
                ));
            }
        }
    }
    out
}

/// Depth-first reachability over the incrementally built adjacency.
fn reaches(adjacency: &[Vec<usize>], from: usize, to: usize) -> bool {
    let mut stack = vec![from];
    let mut visited = vec![false; adjacency.len()];
    while let Some(v) = stack.pop() {
        if v == to {
            return true;
        }
        if !visited[v] {
            visited[v] = true;
            stack.extend(adjacency[v].iter().copied());
        }
    }
    false
}

/// Lints a platform file: every parse/domain error of
/// [`platform::file::parse_platform`], line-anchored where the parser
/// reports a line, plus the single-processor degeneracy smell.
pub fn lint_platform_file(file: &str, input: &str) -> Vec<Finding> {
    use platform::file::PlatformFileError as E;
    match platform::file::parse_platform(input) {
        Ok(cluster) => {
            if cluster.processors == 1 {
                let line = input
                    .lines()
                    .position(|l| l.trim_start().starts_with("processors"))
                    .map(|idx| idx + 1);
                return vec![Finding::new(
                    &rules::PLATFORM_DEGENERATE,
                    file,
                    line,
                    "single-processor platform: every moldable schedule degenerates to \
                     a sequential one",
                )];
            }
            Vec::new()
        }
        Err(e) => {
            let line = match &e {
                E::Malformed { line, .. }
                | E::UnknownKey { line, .. }
                | E::BadValue { line, .. }
                | E::Duplicate { line, .. } => Some(*line),
                E::Missing(_) => None,
            };
            vec![Finding::new(
                &rules::PLATFORM_PARSE,
                file,
                line,
                e.to_string(),
            )]
        }
    }
}

/// Lints a fault-spec file: one `key=value,...` spec per non-comment line
/// (the grammar of [`FaultSpec::parse`]), each error anchored to its line,
/// plus the ineffective-crash smell (`crash > 0` with `retries = 0` never
/// crashes anything — attempt 0 is the retry-exhausted attempt).
pub fn lint_fault_file(file: &str, input: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match FaultSpec::parse(line) {
            Ok(spec) => {
                if spec.crash > 0.0 && spec.retries == 0 {
                    out.push(Finding::new(
                        &rules::FAULT_INEFFECTIVE_CRASH,
                        file,
                        Some(line_no),
                        format!(
                            "crash={} with retries=0 never crashes: attempt 0 is the \
                             retry-exhausted attempt",
                            spec.crash
                        ),
                    ));
                }
            }
            Err(e) => out.push(Finding::new(
                &rules::FAULT_PARSE,
                file,
                Some(line_no),
                e.to_string(),
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(f: &[Finding]) -> Vec<&str> {
        f.iter().map(|x| x.rule.as_str()).collect()
    }

    #[test]
    fn clean_ptg_has_no_findings() {
        let text = "# demo\ntask a 1e9 0.1\ntask b 2e9 0.2\nedge 0 1\n";
        assert_eq!(lint_ptg_file("g.ptg", text), vec![]);
    }

    #[test]
    fn cycle_is_anchored_at_the_closing_edge() {
        let text = "task a 1e9 0\ntask b 1e9 0\ntask c 1e9 0\n\
                    edge 0 1\nedge 1 2\nedge 2 0\n";
        let f = lint_ptg_file("g.ptg", text);
        assert_eq!(rules_of(&f), vec!["ptg-cycle"]);
        assert_eq!(f[0].line, Some(6));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let f = lint_ptg_file("g.ptg", "task a 1e9 0\ntask b 1e9 0\nedge 0 0\nedge 0 1\n");
        assert_eq!(rules_of(&f), vec!["ptg-cycle"]);
        assert_eq!(f[0].line, Some(3));
    }

    #[test]
    fn duplicate_edge_is_anchored_at_the_repeat() {
        let text = "task a 1e9 0\ntask b 1e9 0\nedge 0 1\nedge 0 1\n";
        let f = lint_ptg_file("g.ptg", text);
        assert_eq!(rules_of(&f), vec!["ptg-duplicate-edge"]);
        assert_eq!(f[0].line, Some(4));
    }

    #[test]
    fn orphan_and_range_and_degenerate_are_detected() {
        let text = "task a 1e9 0\ntask b 0 0.5\ntask c 1e9 0\nedge 0 2\nedge 0 9\n";
        let f = lint_ptg_file("g.ptg", text);
        assert_eq!(
            rules_of(&f),
            vec!["ptg-degenerate-task", "ptg-edge-range", "ptg-orphan"]
        );
        assert_eq!(f[0].line, Some(2));
        assert_eq!(f[1].line, Some(5));
        assert_eq!(f[2].line, Some(2), "orphan anchored at task b's line");
    }

    #[test]
    fn malformed_lines_do_not_stop_the_scan() {
        let text = "node a 1 0\ntask a 1e9 0.1\ntask b x 0.1\nedge 0\n";
        let f = lint_ptg_file("g.ptg", text);
        assert_eq!(rules_of(&f), vec!["ptg-parse", "ptg-parse", "ptg-parse"]);
        assert_eq!(
            f.iter().map(|x| x.line).collect::<Vec<_>>(),
            vec![Some(1), Some(3), Some(4)]
        );
    }

    #[test]
    fn empty_ptg_is_reported() {
        let f = lint_ptg_file("g.ptg", "# nothing\n");
        assert_eq!(rules_of(&f), vec!["ptg-parse"]);
    }

    #[test]
    fn single_task_graph_has_no_orphan() {
        assert_eq!(lint_ptg_file("g.ptg", "task a 1e9 0\n"), vec![]);
    }

    #[test]
    fn platform_errors_and_degeneracy() {
        assert_eq!(
            lint_platform_file("c.platform", "processors 4\nspeed_gflops 2.5\n"),
            vec![]
        );
        let f = lint_platform_file("c.platform", "processors many\nspeed_gflops 1\n");
        assert_eq!(rules_of(&f), vec!["platform-parse"]);
        assert_eq!(f[0].line, Some(1));
        let f = lint_platform_file("c.platform", "speed_gflops 1\n");
        assert_eq!(rules_of(&f), vec!["platform-parse"]);
        assert_eq!(f[0].line, None);
        let f = lint_platform_file("c.platform", "# tiny\nprocessors 1\nspeed_gflops 1\n");
        assert_eq!(rules_of(&f), vec!["platform-degenerate"]);
        assert_eq!(f[0].line, Some(2));
    }

    #[test]
    fn fault_specs_are_linted_per_line() {
        let text = "# specs\nseed=1,perturb=0.1\ncrash=2.0\nseed=3,crash=0.5,retries=0\n";
        let f = lint_fault_file("f.faults", text);
        assert_eq!(rules_of(&f), vec!["fault-parse", "fault-ineffective-crash"]);
        assert_eq!(f[0].line, Some(3));
        assert_eq!(f[1].line, Some(4));
    }
}
