//! Pass 2a: the name-resolved workspace call graph.
//!
//! Built from the per-file facts pass 1 extracts ([`crate::source`]), over
//! every source file in the worklist at once. Name resolution is
//! deliberately conservative — the scanner has no type information, so a
//! call edge is added to *every* plausible definition and anything
//! unresolvable is recorded as an **external** call rather than dropped
//! (the totality property the proptests pin down):
//!
//! * `Type::name(…)` — candidates whose enclosing `impl` owner equals the
//!   qualifier; falling back to candidates defined in a module file
//!   matching the qualifier (`bounds::lower_bound` → `…/bounds.rs`); else
//!   external.
//! * `recv.name(…)` — resolves only when the method name is defined
//!   exactly once in the workspace, or is defined in the calling file;
//!   common names (`new`, `get`, `len`) otherwise stay external instead of
//!   fanning out to every impl.
//! * `name(…)` — same-file definitions first, then same-crate, then every
//!   workspace definition (ambiguity keeps all candidates).
//!
//! The graph renders to a deterministic text dump ([`CallGraph::dump`]):
//! same file set in, byte-identical dump out.

use crate::source::{FileFacts, FnFact};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt::Write as _;

/// One function node: the pass-1 fact plus its location context.
#[derive(Debug, Clone)]
pub struct Node {
    /// The extracted per-function fact.
    pub fact: FnFact,
    /// File the function is defined in.
    pub file: String,
    /// Crate the file belongs to (`None` outside `crates/`).
    pub krate: Option<String>,
}

impl Node {
    /// `owner::name` or plain `name`.
    pub fn qualified_name(&self) -> String {
        match &self.fact.owner {
            Some(o) => format!("{o}::{}", self.fact.name),
            None => self.fact.name.clone(),
        }
    }

    /// `name @ file:line` — one hop of a witness chain.
    pub fn witness_entry(&self) -> String {
        format!(
            "{} @ {}:{}",
            self.qualified_name(),
            self.file,
            self.fact.line
        )
    }
}

/// A resolved call edge, keyed by node indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Calling node.
    pub from: usize,
    /// Called node.
    pub to: usize,
    /// Line of the call site in the caller's file.
    pub line: usize,
}

/// A call that resolved to nothing in the workspace (std, vendored deps,
/// constructors in pattern position, closures).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ExternalCall {
    /// Calling node.
    pub from: usize,
    /// Called identifier as written.
    pub name: String,
    /// Line of the call site.
    pub line: usize,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Function nodes, in worklist-then-source order.
    pub nodes: Vec<Node>,
    /// Resolved edges, sorted and deduplicated.
    pub edges: Vec<Edge>,
    /// Unresolved calls, sorted and deduplicated (totality: every
    /// extracted call is either here or in `edges`).
    pub externals: Vec<ExternalCall>,
    /// Forward adjacency: `callees[n]` = nodes `n` calls.
    pub callees: Vec<Vec<usize>>,
    /// Reverse adjacency: `callers[n]` = nodes calling `n`.
    pub callers: Vec<Vec<usize>>,
    /// Per-file allow-pragma tables (`file -> line -> rule ids`), carried
    /// along for the dataflow anchors and the suppression audit.
    pub allows: BTreeMap<String, BTreeMap<usize, BTreeSet<String>>>,
}

/// Method names so common in `std` that a dotted call is almost certainly
/// a collection/iterator/string method, not the one workspace fn that
/// happens to share the name. The workspace-unique fallback for dotted
/// calls skips these (same-file resolution still applies: a type calling
/// its *own* `next` is a real edge). Without this, `line.split(',')`
/// resolves to `BacklogUnion::split` and `args.next()` to
/// `PtgStream::next`, poisoning every parse path with false panic chains.
const STD_DOTTED_METHODS: &[&str] = &[
    "next",
    "split",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "take",
    "join",
    "find",
    "last",
    "first",
    "clear",
    "extend",
    "contains",
    "len",
    "is_empty",
    "parse",
    "clone",
    "send",
    "recv",
    "write",
    "read",
    "flush",
    "iter",
    "map",
    "filter",
    "collect",
    "sum",
    "min",
    "max",
    "abs",
    "sort",
    "reverse",
    "get_or_init",
    "lock",
    "wait",
    "run",
];

/// True when `file` plausibly defines module `q` (`…/q.rs` or `…/q/…`).
fn file_matches_module(file: &str, q: &str) -> bool {
    file.ends_with(&format!("/{q}.rs"))
        || file.contains(&format!("/{q}/"))
        || file == format!("{q}.rs")
}

impl CallGraph {
    /// Builds the graph over every file's facts. Input order fixes node
    /// order; the driver passes files sorted, so the result is
    /// deterministic for a given file set.
    pub fn build(files: &[FileFacts]) -> CallGraph {
        let mut nodes = Vec::new();
        let mut allows = BTreeMap::new();
        for ff in files {
            if !ff.allows.is_empty() {
                allows.insert(ff.file.clone(), ff.allows.clone());
            }
            for fact in &ff.fns {
                nodes.push(Node {
                    fact: fact.clone(),
                    file: ff.file.clone(),
                    krate: ff.krate.clone(),
                });
            }
        }

        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, n) in nodes.iter().enumerate() {
            by_name.entry(n.fact.name.as_str()).or_default().push(i);
        }

        let mut edges: Vec<Edge> = Vec::new();
        let mut externals: Vec<ExternalCall> = Vec::new();
        for from in 0..nodes.len() {
            let caller_file = nodes[from].file.clone();
            let caller_krate = nodes[from].krate.clone();
            for call in nodes[from].fact.calls.clone() {
                let empty = Vec::new();
                let candidates = by_name.get(call.name.as_str()).unwrap_or(&empty);
                let targets: Vec<usize> = if call.qualified {
                    match &call.qualifier {
                        Some(q) => {
                            let by_owner: Vec<usize> = candidates
                                .iter()
                                .copied()
                                .filter(|&t| nodes[t].fact.owner.as_deref() == Some(q))
                                .collect();
                            if !by_owner.is_empty() {
                                by_owner
                            } else {
                                // Module-path qualifier: `bounds::lower_bound`.
                                candidates
                                    .iter()
                                    .copied()
                                    .filter(|&t| {
                                        nodes[t].fact.owner.is_none()
                                            && file_matches_module(&nodes[t].file, q)
                                    })
                                    .collect()
                            }
                        }
                        // `<T as Trait>::f(…)` — qualifier unreadable.
                        None => Vec::new(),
                    }
                } else if call.dotted {
                    let same_file: Vec<usize> = candidates
                        .iter()
                        .copied()
                        .filter(|&t| nodes[t].file == caller_file)
                        .collect();
                    if !same_file.is_empty() {
                        same_file
                    } else if candidates.len() == 1
                        && !STD_DOTTED_METHODS.contains(&call.name.as_str())
                    {
                        candidates.clone()
                    } else {
                        Vec::new()
                    }
                } else {
                    let same_file: Vec<usize> = candidates
                        .iter()
                        .copied()
                        .filter(|&t| nodes[t].file == caller_file)
                        .collect();
                    if !same_file.is_empty() {
                        same_file
                    } else {
                        let same_crate: Vec<usize> = candidates
                            .iter()
                            .copied()
                            .filter(|&t| caller_krate.is_some() && nodes[t].krate == caller_krate)
                            .collect();
                        if !same_crate.is_empty() {
                            same_crate
                        } else {
                            candidates.clone()
                        }
                    }
                };
                if targets.is_empty() {
                    externals.push(ExternalCall {
                        from,
                        name: call.name.clone(),
                        line: call.line,
                    });
                } else {
                    for to in targets {
                        edges.push(Edge {
                            from,
                            to,
                            line: call.line,
                        });
                    }
                }
            }
        }
        edges.sort();
        edges.dedup();
        externals.sort();
        externals.dedup();

        let mut callees = vec![Vec::new(); nodes.len()];
        let mut callers = vec![Vec::new(); nodes.len()];
        for e in &edges {
            if !callees[e.from].contains(&e.to) {
                callees[e.from].push(e.to);
            }
            if !callers[e.to].contains(&e.from) {
                callers[e.to].push(e.from);
            }
        }

        CallGraph {
            nodes,
            edges,
            externals,
            callees,
            callers,
            allows,
        }
    }

    /// Deterministic text rendering: same file set → byte-identical dump.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let f = &n.fact;
            let mut flags = Vec::new();
            if f.hot_path {
                flags.push("hot");
            }
            if f.panic_root {
                flags.push("root");
            }
            if f.parse_path {
                flags.push("parse");
            }
            if f.sink {
                flags.push("sink");
            }
            let _ = writeln!(
                out,
                "node {i} {}:{} {} [{}] panic={} alloc={} nondet={} index={}",
                n.file,
                f.line,
                n.qualified_name(),
                flags.join(","),
                f.panic_sites.len(),
                f.alloc_sites.len(),
                f.nondet_sites.len(),
                f.index_sites,
            );
        }
        for e in &self.edges {
            let _ = writeln!(out, "edge {} -> {} line={}", e.from, e.to, e.line);
        }
        for x in &self.externals {
            let _ = writeln!(out, "ext {} {} line={}", x.from, x.name, x.line);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan_source;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let facts: Vec<FileFacts> = files
            .iter()
            .map(|(f, s)| scan_source(f, s, false).facts)
            .collect();
        CallGraph::build(&facts)
    }

    #[test]
    fn free_calls_resolve_same_file_first() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "fn top() { helper(); }\nfn helper() {}\n",
            ),
            ("crates/b/src/lib.rs", "fn helper() {}\n"),
        ]);
        // top -> a::helper only, not b::helper.
        assert_eq!(
            g.edges,
            vec![Edge {
                from: 0,
                to: 1,
                line: 1
            }]
        );
        assert!(g.externals.is_empty());
    }

    #[test]
    fn free_calls_fall_back_to_same_crate_then_workspace() {
        let g = graph(&[
            ("crates/a/src/main.rs", "fn top() { helper(); }\n"),
            ("crates/a/src/util.rs", "fn helper() {}\n"),
            ("crates/b/src/lib.rs", "fn helper() {}\n"),
        ]);
        assert_eq!(
            g.edges,
            vec![Edge {
                from: 0,
                to: 1,
                line: 1
            }]
        );
        let g = graph(&[
            ("crates/a/src/main.rs", "fn top() { helper(); }\n"),
            ("crates/b/src/lib.rs", "fn helper() {}\n"),
            ("crates/c/src/lib.rs", "fn helper() {}\n"),
        ]);
        // Ambiguous across crates: conservative — both candidates.
        assert_eq!(g.edges.len(), 2);
    }

    #[test]
    fn qualified_calls_match_impl_owner_or_module_file() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "fn top() { Pool::spawn(); bounds::lower(); Unknown::f(); }\n",
            ),
            (
                "crates/a/src/pool.rs",
                "impl Pool {\n    fn spawn() {}\n}\n",
            ),
            ("crates/a/src/bounds.rs", "fn lower() {}\n"),
        ]);
        assert_eq!(
            g.edges,
            vec![
                Edge {
                    from: 0,
                    to: 1,
                    line: 1
                },
                Edge {
                    from: 0,
                    to: 2,
                    line: 1
                },
            ]
        );
        assert_eq!(g.externals.len(), 1);
        assert_eq!(g.externals[0].name, "f");
    }

    #[test]
    fn dotted_calls_resolve_only_unique_or_same_file() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "impl A {\n    fn run(&self) { self.step(); self.helper(); }\n    fn step(&self) {}\n}\n",
            ),
            ("crates/b/src/lib.rs", "impl B {\n    fn step(&self) {}\n}\nfn helper() {}\n"),
        ]);
        // `self.step()` has a same-file candidate → resolves there only;
        // `self.helper()` is unique workspace-wide → resolves cross-file.
        assert!(g.edges.contains(&Edge {
            from: 0,
            to: 1,
            line: 2
        }));
        assert!(g.edges.contains(&Edge {
            from: 0,
            to: 3,
            line: 2
        }));
        assert_eq!(g.edges.len(), 2);
    }

    #[test]
    fn dotted_std_method_names_never_take_the_unique_fallback() {
        // `line.split(',')` must not resolve to the one workspace fn named
        // `split` in another file; a type calling its own `split` still
        // resolves same-file.
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "fn parse_row(line: &str) { line.split(','); }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "impl Union {\n    fn split(&self) { self.split(); }\n}\n",
            ),
        ]);
        assert_eq!(
            g.edges,
            vec![Edge {
                from: 1,
                to: 1,
                line: 2
            }]
        );
        assert!(g.externals.iter().any(|x| x.from == 0 && x.name == "split"));
    }

    #[test]
    fn unresolved_calls_are_reported_external_not_dropped() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn top(f: &dyn Fn()) { std_thing(); f(); }\n",
        )]);
        let names: Vec<&str> = g.externals.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["f", "std_thing"]);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn dump_is_deterministic_and_complete() {
        let files = [
            (
                "crates/a/src/lib.rs",
                "// lint:hot-path\nfn hot() { helper(); }\nfn helper() { let v = vec![1]; }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "fn parse_x(s: &str) { s.parse::<u32>().unwrap(); }\n",
            ),
        ];
        let d1 = graph(&files).dump();
        let d2 = graph(&files).dump();
        assert_eq!(d1, d2);
        assert!(d1.contains("node 0 crates/a/src/lib.rs:2 hot [hot]"));
        assert!(d1.contains("alloc=1"));
        assert!(d1.contains("[parse] panic=1"));
        assert!(d1.contains("edge 0 -> 1"));
    }
}
