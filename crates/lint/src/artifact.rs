//! Schedule-artifact analysis (Family A): static checks over a committed
//! `*.schedule.json` bundle, with no execution.
//!
//! An artifact bundles everything needed to audit one scheduling run:
//! the platform, the execution-time model name, the PTG (in the text
//! format of [`sim::formats`]), the allocation, the schedule and the
//! makespan the producer *reported*. The analyzer then:
//!
//! 1. re-derives the [`TimeMatrix`] and enumerates every schedule
//!    violation through [`sched::for_each_violation`] (precedence,
//!    processor overlap, width/duration mismatches),
//! 2. cross-checks the reported makespan against the schedule itself and
//!    against the critical-path and area lower bounds of
//!    [`sched::bounds`] — a makespan below a proven lower bound cannot
//!    come from a real run, so the artifact is corrupt,
//! 3. flags the allocation smells the paper motivates: tasks allocated
//!    past their speedup sweet spot, and non-monotonic (Model-2) waste
//!    where strictly fewer processors would run a task at least as fast.
//!
//! Corrupt input must yield findings, never panics: the JSON is
//! structurally validated before any `TaskId`-indexed access.

use crate::findings::Finding;
use crate::rules;
use exec_model::{PaperModel, TimeMatrix};
use platform::Cluster;
use ptg::Ptg;
use sched::bounds::lower_bounds;
use sched::{for_each_violation, Allocation, Schedule};
use serde::{Deserialize, Serialize};

/// Relative tolerance for makespan comparisons, matching the validator's.
const REL_TOL: f64 = 1e-9;

/// A self-contained scheduling-run artifact (`*.schedule.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleArtifact {
    /// The cluster the schedule targets.
    pub platform: Cluster,
    /// Execution-time model name (`model1` / `model2`, see
    /// [`PaperModel::parse`]).
    pub model: String,
    /// The PTG in the text format of [`sim::formats::parse_ptg`].
    pub ptg: String,
    /// Per-task processor counts, indexed by task id.
    pub allocation: Vec<u32>,
    /// The schedule under audit.
    pub schedule: Schedule,
    /// The makespan the producing run reported.
    pub reported_makespan: f64,
}

impl ScheduleArtifact {
    /// Packages a scheduling run into an artifact, reporting the
    /// schedule's own makespan.
    pub fn new(
        platform: Cluster,
        model: PaperModel,
        g: &Ptg,
        alloc: &Allocation,
        schedule: Schedule,
    ) -> ScheduleArtifact {
        let reported_makespan = schedule.makespan();
        ScheduleArtifact {
            platform,
            model: match model {
                PaperModel::Model1 => "model1".to_string(),
                PaperModel::Model2 => "model2".to_string(),
            },
            ptg: sim::formats::render_ptg(g),
            allocation: alloc.as_slice().to_vec(),
            schedule,
            reported_makespan,
        }
    }
}

/// Lints the JSON text of a schedule artifact. `file` is used for finding
/// locations only.
pub fn lint_artifact_json(file: &str, json: &str) -> Vec<Finding> {
    match serde_json::from_str::<ScheduleArtifact>(json) {
        Ok(artifact) => lint_artifact(file, &artifact),
        Err(e) => vec![Finding::new(
            &rules::ARTIFACT_MALFORMED,
            file,
            None,
            format!("not a schedule artifact: {e}"),
        )],
    }
}

/// Lints a parsed schedule artifact.
pub fn lint_artifact(file: &str, artifact: &ScheduleArtifact) -> Vec<Finding> {
    let mut out = Vec::new();
    let malformed = |message: String| Finding::new(&rules::ARTIFACT_MALFORMED, file, None, message);

    // Serde bypasses every constructor, so each component is re-validated
    // here before any indexed access — corrupt artifacts must produce
    // findings, not panics.
    let p = artifact.platform.processors;
    if p < 1 {
        return vec![malformed("platform has zero processors".into())];
    }
    if !(artifact.platform.speed_gflops.is_finite() && artifact.platform.speed_gflops > 0.0) {
        return vec![malformed(format!(
            "platform speed must be positive and finite, got {}",
            artifact.platform.speed_gflops
        ))];
    }
    let Some(model) = PaperModel::parse(&artifact.model) else {
        return vec![malformed(format!(
            "unknown execution-time model {:?}",
            artifact.model
        ))];
    };
    let g = match sim::formats::parse_ptg(&artifact.ptg) {
        Ok(g) => g,
        Err(e) => return vec![malformed(format!("embedded ptg: {e}"))],
    };
    if artifact.allocation.len() != g.task_count() {
        return vec![malformed(format!(
            "allocation covers {} tasks, PTG has {}",
            artifact.allocation.len(),
            g.task_count()
        ))];
    }
    if let Some((i, &a)) = artifact
        .allocation
        .iter()
        .enumerate()
        .find(|&(_, &a)| !(1..=p).contains(&a))
    {
        return vec![malformed(format!(
            "allocation of v{i} is {a}, platform has {p} processors"
        ))];
    }
    if artifact.schedule.processors != p {
        return vec![malformed(format!(
            "schedule spans {} processors, platform has {p}",
            artifact.schedule.processors
        ))];
    }
    for (i, pl) in artifact.schedule.placements.iter().enumerate() {
        if pl.task.index() != i {
            return vec![malformed(format!(
                "placement {i} is for {}, placements must be dense and sorted",
                pl.task
            ))];
        }
        if pl.processors.is_empty()
            || pl.processors.windows(2).any(|w| w[0] >= w[1])
            || pl.processors.iter().any(|&q| q >= p)
        {
            return vec![malformed(format!(
                "{}: processor list must be strictly increasing within 0..{p}",
                pl.task
            ))];
        }
        if !(pl.start.is_finite()
            && pl.finish.is_finite()
            && pl.start >= 0.0
            && pl.finish >= pl.start)
        {
            return vec![malformed(format!(
                "{}: placement times must be finite with finish >= start >= 0",
                pl.task
            ))];
        }
    }
    if !artifact.reported_makespan.is_finite() {
        return vec![malformed(format!(
            "reported makespan must be finite, got {}",
            artifact.reported_makespan
        ))];
    }

    let matrix = TimeMatrix::compute(&g, &model.instantiate(), artifact.platform.speed_flops(), p);
    let alloc = Allocation::from_vec(artifact.allocation.clone());

    // 1. Every schedule violation, through the shared enumerator.
    for_each_violation(&g, &matrix, &alloc, &artifact.schedule, &mut |v| {
        let rule = match &v {
            sched::ScheduleViolation::TaskCountMismatch { .. } => &rules::SCHED_TASK_COUNT,
            sched::ScheduleViolation::WidthMismatch { .. } => &rules::SCHED_WIDTH,
            sched::ScheduleViolation::DurationMismatch { .. } => &rules::SCHED_DURATION,
            sched::ScheduleViolation::DependencyViolated { .. } => &rules::SCHED_PRECEDENCE,
            sched::ScheduleViolation::ProcessorOverlap { .. } => &rules::SCHED_OVERLAP,
        };
        out.push(Finding::new(rule, file, None, v.to_string()));
        true
    });

    // 2. Makespan cross-checks: against the schedule, then against the
    // lower bounds (a reported makespan below a proven bound is
    // impossible, so the artifact is corrupt).
    let actual = artifact.schedule.makespan();
    let reported = artifact.reported_makespan;
    if (reported - actual).abs() > REL_TOL * actual.max(1.0) {
        out.push(Finding::new(
            &rules::SCHED_MAKESPAN_REPORT,
            file,
            None,
            format!("reported makespan {reported}s, schedule finishes at {actual}s"),
        ));
    }
    let bounds = lower_bounds(&g, &matrix, &alloc);
    for (bound, name) in [
        (bounds.critical_path, "critical-path"),
        (bounds.area, "area"),
    ] {
        if reported < bound * (1.0 - REL_TOL) {
            out.push(Finding::new(
                &rules::SCHED_BELOW_BOUND,
                file,
                None,
                format!("reported makespan {reported}s beats the {name} lower bound {bound}s"),
            ));
        }
    }

    // 3. Allocation smells under the configured execution-time model.
    for v in g.task_ids() {
        let a = alloc.of(v);
        let best = matrix.best_p(v);
        if a > best {
            out.push(Finding::new(
                &rules::ALLOC_PAST_SWEET_SPOT,
                file,
                None,
                format!(
                    "{v} allocated {a} processors past its sweet spot {best} \
                     ({}s vs {}s)",
                    matrix.time(v, a),
                    matrix.time(v, best)
                ),
            ));
        } else if let Some(q) = (1..a).find(|&q| matrix.time(v, q) <= matrix.time(v, a)) {
            out.push(Finding::new(
                &rules::ALLOC_NONMONOTONIC_WASTE,
                file,
                None,
                format!(
                    "{v} allocated {a} processors but {q} would be at least as fast \
                     ({}s vs {}s)",
                    matrix.time(v, q),
                    matrix.time(v, a)
                ),
            ));
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use exec_model::Amdahl;
    use sched::{ListScheduler, Mapper};

    fn chain(n: usize) -> Ptg {
        let mut b = ptg::PtgBuilder::new();
        for i in 0..n {
            b.add_task(format!("t{i}"), 2e9, 0.0);
        }
        for i in 1..n {
            let _ = b.add_edge(ptg::TaskId::from_index(i - 1), ptg::TaskId::from_index(i));
        }
        b.build().expect("chain is acyclic")
    }

    fn clean_artifact() -> ScheduleArtifact {
        let g = chain(3);
        let cluster = Cluster::new("test", 4, 1.0);
        let m = TimeMatrix::compute(&g, &Amdahl, cluster.speed_flops(), 4);
        let alloc = Allocation::from_vec(vec![2, 4, 1]);
        let s = ListScheduler.map(&g, &m, &alloc);
        ScheduleArtifact::new(cluster, PaperModel::Model1, &g, &alloc, s)
    }

    #[test]
    fn mapper_artifact_is_clean() {
        let a = clean_artifact();
        assert_eq!(lint_artifact("a.schedule.json", &a), vec![]);
        let json = serde_json::to_string(&a).expect("artifacts serialize");
        assert_eq!(lint_artifact_json("a.schedule.json", &json), vec![]);
    }

    #[test]
    fn garbage_json_is_a_single_malformed_finding() {
        let f = lint_artifact_json("x.schedule.json", "{not json");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "artifact-malformed");
    }

    #[test]
    fn structural_corruption_never_panics() {
        let base = clean_artifact();
        let mut sparse = base.clone();
        sparse.schedule.placements[1].task = ptg::TaskId(5);
        let mut oob = base.clone();
        oob.schedule.placements[0].processors = vec![99];
        let mut nan = base.clone();
        nan.schedule.placements[0].start = f64::NAN;
        let mut alien_model = base.clone();
        alien_model.model = "model9".into();
        let mut short_alloc = base.clone();
        short_alloc.allocation.pop();
        for bad in [sparse, oob, nan, alien_model, short_alloc] {
            let f = lint_artifact("x.schedule.json", &bad);
            assert_eq!(f.len(), 1, "{f:?}");
            assert_eq!(f[0].rule, "artifact-malformed");
        }
    }

    #[test]
    fn tampered_report_fires_makespan_and_bound_rules() {
        let mut a = clean_artifact();
        a.reported_makespan = 0.001;
        let f = lint_artifact("x.schedule.json", &a);
        assert!(f.iter().any(|x| x.rule == "sched-makespan-report"), "{f:?}");
        assert!(f.iter().any(|x| x.rule == "sched-below-bound"), "{f:?}");
    }

    #[test]
    fn precedence_violation_maps_to_its_rule() {
        let mut a = clean_artifact();
        // Pull task 1 earlier than its predecessor's finish while keeping
        // its duration intact.
        let d = a.schedule.placements[1].duration();
        a.schedule.placements[1].start = 0.0;
        a.schedule.placements[1].finish = d;
        let f = lint_artifact("x.schedule.json", &a);
        assert!(f.iter().any(|x| x.rule == "sched-precedence"), "{f:?}");
    }

    #[test]
    fn sweet_spot_smell_fires_under_amdahl_with_serial_tasks() {
        // alpha = 1.0 tasks cannot speed up: any allocation > 1 is past the
        // sweet spot.
        let mut b = ptg::PtgBuilder::new();
        b.add_task("serial", 1e9, 1.0);
        let g = b.build().expect("single task");
        let cluster = Cluster::new("test", 4, 1.0);
        let m = TimeMatrix::compute(&g, &Amdahl, cluster.speed_flops(), 4);
        let alloc = Allocation::from_vec(vec![3]);
        let s = ListScheduler.map(&g, &m, &alloc);
        let a = ScheduleArtifact::new(cluster, PaperModel::Model1, &g, &alloc, s);
        let f = lint_artifact("x.schedule.json", &a);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "alloc-past-sweet-spot");
    }
}
