//! Source-invariant lint (Family B): a hand-rolled Rust token scanner
//! enforcing project invariants over `crates/*/src`.
//!
//! No `syn` lives under `vendor/`, and none is needed: the rules only
//! require a lexer that is exact about what is *code* — it skips string
//! and char literals, line and (nested) block comments, and raw strings —
//! plus enough structure tracking to know the current function, whether
//! the item is under `#[cfg(test)]`/`#[test]`, and where attributes end.
//!
//! Two comment pragmas steer the scanner:
//!
//! * `// lint:allow(rule-id, ...)` — suppresses those rules on the same
//!   line (trailing comment) or the directly following line (standalone
//!   comment). Every suppression is an audited exception.
//! * `// lint:hot-path` — marks the *next* `fn` as allocation-free: any
//!   allocating call inside it is reported by `src-hot-path-alloc`, and a
//!   `StatsRecorder::…` construction by `src-hot-path-recorder` (hot
//!   paths must take a generic `&impl Recorder` so the no-op flavour
//!   compiles out).

use crate::findings::Finding;
use crate::rules;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// One lexed token: identifiers and single punctuation characters.
/// Literals, comments and whitespace never reach the scanner.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Tok<'a> {
    Ident(&'a str),
    Punct(char),
}

/// Lexer output: the token stream plus the pragma side tables.
struct Lexed<'a> {
    toks: Vec<(Tok<'a>, usize)>,
    /// `line -> rule ids` from `// lint:allow(...)` comments.
    allows: HashMap<usize, HashSet<String>>,
    /// Lines of `// lint:hot-path` pragmas, in order.
    hot_paths: Vec<usize>,
    /// Lines of `// lint:panic-root` pragmas, in order.
    panic_roots: Vec<usize>,
}

fn lex(src: &str) -> Lexed<'_> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut allows: HashMap<usize, HashSet<String>> = HashMap::new();
    let mut hot_paths = Vec::new();
    let mut panic_roots = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = src[i..].find('\n').map_or(bytes.len(), |n| i + n);
                parse_pragma(
                    src[i + 2..end].trim(),
                    line,
                    &mut allows,
                    &mut hot_paths,
                    &mut panic_roots,
                );
                i = end;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comments, counting newlines.
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    match (bytes[i], bytes.get(i + 1)) {
                        (b'/', Some(b'*')) => {
                            depth += 1;
                            i += 2;
                        }
                        (b'*', Some(b'/')) => {
                            depth -= 1;
                            i += 2;
                        }
                        (b'\n', _) => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
            }
            '"' => i = skip_string(bytes, i, &mut line),
            '\'' => {
                // Char literal or lifetime. A char literal is either an
                // escape ('\…') or exactly one char before the closing
                // quote; everything else ('a in <'a>, 'static) is a
                // lifetime — only the quote itself is consumed.
                if bytes.get(i + 1) == Some(&b'\\') {
                    i += 2; // opening quote + backslash
                    if i < bytes.len() {
                        i += 1; // the escaped character
                    }
                    while i < bytes.len() && bytes[i] != b'\'' {
                        i += 1; // \u{…} payloads
                    }
                    i += 1; // closing quote
                } else if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                    i += 3;
                } else {
                    i += 1;
                }
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let ident = &src[start..i];
                // String prefixes: r"…", r#"…"#, b"…", br#"…"#.
                let is_raw = matches!(ident, "r" | "b" | "br" | "rb");
                if is_raw && i < bytes.len() && (bytes[i] == b'"' || bytes[i] == b'#') {
                    i = skip_raw_string(bytes, i, &mut line);
                } else {
                    toks.push((Tok::Ident(ident), line));
                }
            }
            _ if c.is_ascii_digit() => {
                // Numbers (including suffixes like 1e9, 0xff, 3u32) carry
                // no rule signal; dots stay separate tokens so `x.0.expect`
                // still lexes its `.` before `expect`.
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
            }
            _ if c.is_whitespace() => i += 1,
            _ => {
                toks.push((Tok::Punct(c), line));
                i += 1;
            }
        }
    }
    Lexed {
        toks,
        allows,
        hot_paths,
        panic_roots,
    }
}

/// Skips a regular string literal starting at the opening quote.
fn skip_string(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string; `i` points at the first `#` or `"` after the `r`
/// prefix.
fn skip_raw_string(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    let mut hashes = 0;
    while i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= bytes.len() || bytes[i] != b'"' {
        return i; // `r#ident` raw identifier, not a string
    }
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
        } else if bytes[i] == b'"' && bytes[i + 1..].iter().take(hashes).all(|&b| b == b'#') {
            return i + 1 + hashes;
        }
        i += 1;
    }
    i
}

/// Parses `lint:allow(...)` / `lint:hot-path` / `lint:panic-root` out of a
/// line comment body.
fn parse_pragma(
    comment: &str,
    line: usize,
    allows: &mut HashMap<usize, HashSet<String>>,
    hot_paths: &mut Vec<usize>,
    panic_roots: &mut Vec<usize>,
) {
    let Some(rest) = comment.strip_prefix("lint:") else {
        return;
    };
    // Trailing prose after the pragma is encouraged — every suppression
    // should say why (`// lint:allow(x) -- reason`).
    if rest == "hot-path" || rest.starts_with("hot-path ") {
        hot_paths.push(line);
    } else if rest == "panic-root" || rest.starts_with("panic-root ") {
        panic_roots.push(line);
    } else if let Some(args) = rest
        .strip_prefix("allow(")
        .and_then(|a| a.find(')').map(|close| &a[..close]))
    {
        let entry = allows.entry(line).or_default();
        for id in args.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            entry.insert(id.to_string());
        }
    }
}

/// True for function names the unwrap rule treats as user-input parse
/// paths.
fn is_parse_path(name: &str) -> bool {
    name == "from_str"
        || name.starts_with("parse")
        || name.starts_with("read_")
        || name.starts_with("load_")
}

/// Method names whose calls allocate (used by `src-hot-path-alloc`).
const ALLOC_METHODS: &[&str] = &["to_string", "to_vec", "to_owned", "collect"];
/// Calls that count as an exact-evaluation confirmation for
/// `src-surrogate-exact-confirm`: a function that screens offspring with
/// the tier-1 surrogate must also reach one of these in the same body,
/// otherwise a conservative interval is being consumed as if it were a
/// makespan.
const EXACT_CONFIRM_CALLS: &[&str] = &[
    "schedule_core_grouped",
    "evaluate_bounded",
    "evaluate_two_tier",
    "evaluate_two_tier_obs",
    "run_batch",
    "run_batch_two_tier",
    "makespan",
    "makespan_bounded",
];
/// Types whose constructors allocate.
const ALLOC_TYPES: &[&str] = &[
    "Box", "Vec", "String", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "VecDeque",
];

/// Types whose mention in a function's signature or body marks it as a
/// deterministic-artifact *sink* for the determinism-taint propagation:
/// these produce RunReport counters, convergence traces, stream
/// fingerprints, or online event traces.
const SINK_TYPES: &[&str] = &[
    "ConvergenceTrace",
    "RunReport",
    "StreamCheckpoint",
    "OnlineEvent",
];
/// Method names that iterate a collection (used to spot `HashMap`/`HashSet`
/// iteration, which yields nondeterministic order).
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
];
/// Identifiers that look like calls (`name(`) but never are.
const NOT_CALLS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "fn", "let", "else",
    "Some", "Ok", "Err", "None", "Self",
];

/// One call made inside a function body (pass-1 fact; resolved in pass 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Called identifier (`bar` in `foo.bar(…)` / `Foo::bar(…)`).
    pub name: String,
    /// `Foo` in `Foo::bar(…)`; `Self::` is rewritten to the enclosing impl
    /// owner at extraction time.
    pub qualifier: Option<String>,
    /// True when the name was preceded by `::` (even if the qualifying
    /// token was not a plain identifier, e.g. `<T as Trait>::bar(…)`).
    pub qualified: bool,
    /// True for method-call syntax `recv.bar(…)`.
    pub dotted: bool,
    /// Line of the call site.
    pub line: usize,
}

/// One interesting source location inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// Line of the site.
    pub line: usize,
    /// Human-readable description, e.g. `panic!`, `.unwrap()`,
    /// `Instant::now()`, `vec!`.
    pub what: String,
}

/// Everything pass 1 knows about one function.
#[derive(Debug, Clone, Default)]
pub struct FnFact {
    /// Function name as written after `fn`.
    pub name: String,
    /// Enclosing `impl` block's self type, if any.
    pub owner: Option<String>,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Marked `// lint:hot-path`: must stay allocation-free.
    pub hot_path: bool,
    /// Marked `// lint:panic-root`: a typed-error boundary (EvalPool worker
    /// rings) from which no panic may be reachable.
    pub panic_root: bool,
    /// Name matches the user-input parse-path convention
    /// (`from_str`/`parse*`/`read_*`/`load_*`).
    pub parse_path: bool,
    /// References a deterministic-artifact type (see [`SINK_TYPES`]) in its
    /// signature or body, or is a method of one.
    pub sink: bool,
    /// Every call made in the body, in source order.
    pub calls: Vec<CallSite>,
    /// `panic!` / `.unwrap()` / `.expect(…)` sites in the body.
    pub panic_sites: Vec<Site>,
    /// Allocating calls in the body (`vec!`, `Box::new`, `.collect()`, …).
    pub alloc_sites: Vec<Site>,
    /// Nondeterminism sources in the body (clocks, env, hash iteration).
    pub nondet_sites: Vec<Site>,
    /// Count of indexing expressions (`xs[i]`); extracted but deliberately
    /// excluded from panic-reachability (see DESIGN §15 ambiguity limits).
    pub index_sites: usize,
}

/// Pass-1 facts for one file.
#[derive(Debug, Clone, Default)]
pub struct FileFacts {
    /// Path the file was scanned under.
    pub file: String,
    /// `lint` for `crates/lint/src/…`; `None` outside `crates/`.
    pub krate: Option<String>,
    /// Facts for every non-test function, in source order.
    pub fns: Vec<FnFact>,
    /// Every `lint:allow` pragma in the file, deterministically ordered:
    /// `line -> rule ids`. Input to the suppression audit.
    pub allows: BTreeMap<usize, BTreeSet<String>>,
}

/// Output of [`scan_source`]: per-line findings plus the facts and the
/// allow-pragma usage ledger that pass 2 extends.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// Per-line findings (same set `lint_source` returns).
    pub findings: Vec<Finding>,
    /// Extracted facts for pass 2.
    pub facts: FileFacts,
    /// `(pragma line, rule id)` pairs that suppressed a finding or removed
    /// a fact in this pass.
    pub used_allows: BTreeSet<(usize, String)>,
}

/// Crate name from a workspace-relative path (`crates/<name>/…`).
pub fn crate_of(file: &str) -> Option<String> {
    let mut parts = file.split(['/', '\\']);
    while let Some(p) = parts.next() {
        if p == "crates" {
            return parts.next().map(str::to_string);
        }
    }
    None
}

/// A function currently being scanned.
struct FnFrame {
    name: String,
    /// Brace depth *outside* the body; the frame pops when depth returns
    /// here.
    depth: usize,
    /// Line of the `fn` keyword.
    line: usize,
    owner: Option<String>,
    /// Created inside a `#[cfg(test)]`/`#[test]` region: no fact is kept.
    in_test: bool,
    hot_path: bool,
    panic_root: bool,
    sink: bool,
    /// Line of the first `surrogate_score_obs(…)` call in the body, if any
    /// (only recorded outside test code).
    surrogate_line: Option<usize>,
    /// Whether the body also calls an exact evaluator (see
    /// [`EXACT_CONFIRM_CALLS`]).
    exact_confirm: bool,
    calls: Vec<CallSite>,
    panic_sites: Vec<Site>,
    alloc_sites: Vec<Site>,
    nondet_sites: Vec<Site>,
    index_sites: usize,
    /// Locals bound to a `HashMap`/`HashSet` in this body (`let m = …`).
    hash_locals: HashSet<String>,
}

/// Shared mutable scan state: findings out, pragma-usage ledger, and the
/// allow table consulted by both.
struct Ctx<'a> {
    file: &'a str,
    allows: &'a HashMap<usize, HashSet<String>>,
    findings: Vec<Finding>,
    used: BTreeSet<(usize, String)>,
}

impl Ctx<'_> {
    /// Pragma line allowing `id` at `line` (same line or the line above).
    fn allow_line(&self, line: usize, id: &str) -> Option<usize> {
        [line, line.saturating_sub(1)]
            .into_iter()
            .find(|l| self.allows.get(l).is_some_and(|ids| ids.contains(id)))
    }

    fn emit(&mut self, rule: &'static crate::rules::Rule, line: usize, message: String) {
        if let Some(l) = self.allow_line(line, rule.id) {
            self.used.insert((l, rule.id.to_string()));
        } else {
            self.findings
                .push(Finding::new(rule, self.file, Some(line), message));
        }
    }

    /// True when any of `ids` is allowed at `line`; marks the pragma used.
    /// Used to drop *facts* (panic/nondet/alloc sites) at their source.
    fn fact_allowed(&mut self, line: usize, ids: &[&str]) -> bool {
        let mut hit = false;
        for id in ids {
            if let Some(l) = self.allow_line(line, id) {
                self.used.insert((l, id.to_string()));
                hit = true;
            }
        }
        hit
    }
}

/// `let`-binding tracker: records locals initialised from `HashMap`/
/// `HashSet` so their iteration can be flagged as order-nondeterministic.
enum LetSt {
    Idle,
    WaitName,
    Active { name: String, hashy: bool },
}

/// Lints one Rust source file. `timing_exempt` is set for the crates whose
/// whole point is wall-clock measurement (`obs`, `bench`).
pub fn lint_source(file: &str, src: &str, timing_exempt: bool) -> Vec<Finding> {
    scan_source(file, src, timing_exempt).findings
}

/// Scans one Rust source file: emits the per-line findings *and* extracts
/// the per-function facts pass 2 builds the workspace call graph from.
/// A `lint:allow` on the same line (trailing comment) or directly above
/// (standalone comment) suppresses a finding; for the dataflow rules it
/// also removes the underlying fact at its source (a suppressed panic /
/// clock / allocation site never enters the propagation).
pub fn scan_source(file: &str, src: &str, timing_exempt: bool) -> ScanResult {
    let lexed = lex(src);
    let toks = &lexed.toks;
    // Lines holding a `*_seconds` identifier: the wall-clock-reporting
    // escape hatch for the determinism-taint propagation.
    let seconds_lines: HashSet<usize> = toks
        .iter()
        .filter_map(|(t, l)| match t {
            Tok::Ident(id) if id.ends_with("_seconds") || *id == "seconds" => Some(*l),
            _ => None,
        })
        .collect();
    let mut ctx = Ctx {
        file,
        allows: &lexed.allows,
        findings: Vec::new(),
        used: BTreeSet::new(),
    };
    let mut facts: Vec<FnFact> = Vec::new();

    let mut depth = 0usize;
    let mut fns: Vec<FnFrame> = Vec::new();
    let mut impls: Vec<(String, usize)> = Vec::new();
    let mut pending_fn: Option<FnFrame> = None;
    let mut pending_impl: Option<String> = None;
    let mut pending_test = false;
    let mut skip_above: Option<usize> = None; // test region: skip while depth > this
    let mut hot_pragmas = lexed.hot_paths.iter().copied().peekable();
    let mut root_pragmas = lexed.panic_roots.iter().copied().peekable();
    let mut let_st = LetSt::Idle;

    let mut i = 0;
    while i < toks.len() {
        let (tok, line) = &toks[i];
        let in_test = skip_above.is_some();
        match tok {
            Tok::Punct('#') => {
                // Attribute: #[...] or #![...]; scan to the matching ']'.
                let mut j = i + 1;
                if matches!(toks.get(j), Some((Tok::Punct('!'), _))) {
                    j += 1;
                }
                if matches!(toks.get(j), Some((Tok::Punct('['), _))) {
                    let mut brackets = 0usize;
                    let mut has_test = false;
                    let mut negated = false;
                    while let Some((t, _)) = toks.get(j) {
                        match t {
                            Tok::Punct('[') => brackets += 1,
                            Tok::Punct(']') => {
                                brackets -= 1;
                                if brackets == 0 {
                                    break;
                                }
                            }
                            Tok::Ident("test") => has_test = true,
                            Tok::Ident("not") => negated = true,
                            _ => {}
                        }
                        j += 1;
                    }
                    // #[test], #[cfg(test)], #[cfg_attr(test, …)] mark the
                    // next item as test code; #[cfg(not(test))] does not.
                    if has_test && !negated {
                        pending_test = true;
                    }
                    i = j + 1;
                    continue;
                }
            }
            Tok::Punct('{') => {
                if pending_test && skip_above.is_none() {
                    skip_above = Some(depth);
                    pending_test = false;
                }
                if let Some(mut frame) = pending_fn.take() {
                    frame.in_test = skip_above.is_some();
                    fns.push(frame);
                }
                if let Some(owner) = pending_impl.take() {
                    impls.push((owner, depth));
                }
                depth += 1;
            }
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                if skip_above == Some(depth) {
                    skip_above = None;
                }
                while impls.last().is_some_and(|(_, d)| *d >= depth) {
                    impls.pop();
                }
                while fns.last().is_some_and(|f| f.depth >= depth) {
                    let f = fns.pop().expect("checked above");
                    finish_frame(f, &mut facts, &mut ctx);
                }
            }
            Tok::Punct(';') => {
                // A `;` before any body cancels pending items (trait method
                // declarations, `#[cfg(test)] use …;`).
                pending_fn = None;
                pending_impl = None;
                pending_test = false;
            }
            Tok::Ident("fn") => {
                if let Some((Tok::Ident(name), _)) = toks.get(i + 1) {
                    let mut hot = false;
                    while hot_pragmas.peek().is_some_and(|&p| p <= *line) {
                        hot_pragmas.next();
                        hot = true;
                    }
                    let mut root = false;
                    while root_pragmas.peek().is_some_and(|&p| p <= *line) {
                        root_pragmas.next();
                        root = true;
                    }
                    pending_fn = Some(FnFrame {
                        name: name.to_string(),
                        depth,
                        line: *line,
                        owner: impls.last().map(|(o, _)| o.clone()),
                        in_test,
                        hot_path: hot,
                        panic_root: root,
                        sink: false,
                        surrogate_line: None,
                        exact_confirm: false,
                        calls: Vec::new(),
                        panic_sites: Vec::new(),
                        alloc_sites: Vec::new(),
                        nondet_sites: Vec::new(),
                        index_sites: 0,
                        hash_locals: HashSet::new(),
                    });
                }
            }
            Tok::Ident("impl") if pending_fn.is_none() && fns.is_empty() => {
                // Item-position `impl` block: find the self type — the last
                // angle-depth-0 path segment, reset at `for` (trait impls),
                // stopping at `where`/`{`. `impl Trait` in fn signatures
                // never reaches here: a fn frame or pending fn is live.
                let mut owner: Option<&str> = None;
                let mut angle = 0usize;
                let mut j = i + 1;
                while let Some((t, _)) = toks.get(j) {
                    match t {
                        Tok::Punct('{' | ';') if angle == 0 => break,
                        Tok::Punct('<') => angle += 1,
                        // `->` inside fn-pointer generics is not a close.
                        Tok::Punct('>')
                            if !matches!(toks.get(j - 1), Some((Tok::Punct('-'), _))) =>
                        {
                            angle = angle.saturating_sub(1);
                        }
                        Tok::Ident("for") if angle == 0 => owner = None,
                        Tok::Ident("where") if angle == 0 => break,
                        Tok::Ident(id) if angle == 0 => owner = Some(id),
                        _ => {}
                    }
                    j += 1;
                }
                pending_impl = owner.map(str::to_string);
            }
            Tok::Ident("panic")
                if !in_test && matches!(toks.get(i + 1), Some((Tok::Punct('!'), _))) =>
            {
                if fns.last().is_some_and(|f| is_parse_path(&f.name)) {
                    let fname = fns.last().expect("checked above").name.clone();
                    ctx.emit(
                        &rules::SRC_UNWRAP_PARSE,
                        *line,
                        format!("panic! in parse path fn {fname}"),
                    );
                }
                if fns.last().is_some() && !ctx.fact_allowed(*line, &["src-panic-reach"]) {
                    fns.last_mut()
                        .expect("checked above")
                        .panic_sites
                        .push(Site {
                            line: *line,
                            what: "panic!".to_string(),
                        });
                }
            }
            Tok::Ident(name @ ("unwrap" | "expect")) if !in_test => {
                let dotted = i > 0 && matches!(toks[i - 1].0, Tok::Punct('.'));
                let called = matches!(toks.get(i + 1), Some((Tok::Punct('('), _)));
                if dotted && called {
                    if fns.last().is_some_and(|f| is_parse_path(&f.name)) {
                        let fname = fns.last().expect("checked above").name.clone();
                        ctx.emit(
                            &rules::SRC_UNWRAP_PARSE,
                            *line,
                            format!(".{name}() in parse path fn {fname}"),
                        );
                    }
                    // write!(…).unwrap() / writeln!(…).expect(…): walk back
                    // over the macro's balanced parens to its name.
                    if let Some(mac) = write_macro_before(toks, i - 1) {
                        ctx.emit(
                            &rules::SRC_WRITE_UNWRAP,
                            *line,
                            format!("{mac}!(…).{name}() — propagate the fmt::Result instead"),
                        );
                    }
                    if fns.last().is_some() && !ctx.fact_allowed(*line, &["src-panic-reach"]) {
                        fns.last_mut()
                            .expect("checked above")
                            .panic_sites
                            .push(Site {
                                line: *line,
                                what: format!(".{name}()"),
                            });
                    }
                }
            }
            Tok::Ident(t @ ("Instant" | "SystemTime"))
                if !in_test
                    && !timing_exempt
                    && matches!(toks.get(i + 1), Some((Tok::Punct(':'), _)))
                    && matches!(toks.get(i + 2), Some((Tok::Punct(':'), _)))
                    && matches!(toks.get(i + 3), Some((Tok::Ident("now"), _))) =>
            {
                ctx.emit(
                    &rules::SRC_TIMING,
                    *line,
                    format!("{t}::now() outside the obs/bench crates"),
                );
                // Taint source, unless it feeds a `*_seconds` reporting
                // field or carries the timing escape hatch.
                if fns.last().is_some()
                    && !seconds_lines.contains(line)
                    && !ctx.fact_allowed(*line, &["src-timing", "src-determinism-taint"])
                {
                    fns.last_mut()
                        .expect("checked above")
                        .nondet_sites
                        .push(Site {
                            line: *line,
                            what: format!("{t}::now()"),
                        });
                }
            }
            Tok::Ident("env")
                if !in_test
                    && matches!(toks.get(i + 1), Some((Tok::Punct(':'), _)))
                    && matches!(toks.get(i + 2), Some((Tok::Punct(':'), _)))
                    && matches!(
                        toks.get(i + 3),
                        Some((Tok::Ident("var" | "vars" | "var_os"), _))
                    ) =>
            {
                let in_fn = fns.last().is_some();
                if in_fn && !ctx.fact_allowed(*line, &["src-determinism-taint"]) {
                    fns.last_mut()
                        .expect("checked above")
                        .nondet_sites
                        .push(Site {
                            line: *line,
                            what: "env read".to_string(),
                        });
                }
            }
            Tok::Ident("thread")
                if !in_test
                    && matches!(toks.get(i + 1), Some((Tok::Punct(':'), _)))
                    && matches!(toks.get(i + 2), Some((Tok::Punct(':'), _)))
                    && matches!(toks.get(i + 3), Some((Tok::Ident("current"), _))) =>
            {
                let in_fn = fns.last().is_some();
                if in_fn && !ctx.fact_allowed(*line, &["src-determinism-taint"]) {
                    fns.last_mut()
                        .expect("checked above")
                        .nondet_sites
                        .push(Site {
                            line: *line,
                            what: "thread::current()".to_string(),
                        });
                }
            }
            Tok::Ident("surrogate_score_obs")
                if !in_test
                    && matches!(toks.get(i + 1), Some((Tok::Punct('('), _)))
                    && !(i > 0 && matches!(toks[i - 1].0, Tok::Ident("fn"))) =>
            {
                // A call (not the definition — that is preceded by `fn` and
                // followed by its generics, not `(`). Remember the first one;
                // the frame decides at pop time whether an exact evaluation
                // ever confirmed it.
                if let Some(f) = fns.last_mut() {
                    f.surrogate_line.get_or_insert(*line);
                }
            }
            Tok::Ident(name)
                if EXACT_CONFIRM_CALLS.contains(name)
                    && matches!(toks.get(i + 1), Some((Tok::Punct('('), _)))
                    && !(i > 0 && matches!(toks[i - 1].0, Tok::Ident("fn"))) =>
            {
                if let Some(f) = fns.last_mut() {
                    f.exact_confirm = true;
                }
            }
            _ => {}
        }

        // `let`-binding tracker (feeds hash_locals; sees every token).
        let_st = match (let_st, tok) {
            (_, Tok::Ident("let")) => LetSt::WaitName,
            (LetSt::WaitName, Tok::Ident("mut")) => LetSt::WaitName,
            (LetSt::WaitName, Tok::Ident(name)) => LetSt::Active {
                name: name.to_string(),
                hashy: false,
            },
            (LetSt::WaitName, Tok::Punct(_)) => LetSt::Idle,
            (LetSt::Active { name, .. }, Tok::Ident("HashMap" | "HashSet")) => {
                LetSt::Active { name, hashy: true }
            }
            (LetSt::Active { name, hashy }, Tok::Punct(';')) => {
                if hashy {
                    if let Some(f) = fns.last_mut() {
                        f.hash_locals.insert(name);
                    }
                }
                LetSt::Idle
            }
            (LetSt::Active { .. }, Tok::Punct('{' | '}')) => LetSt::Idle,
            (st, _) => st,
        };

        // Fact extraction independent of the rule arms above: sink markers,
        // allocation sites (every fn — pass 2 propagates them into hot
        // paths), hash-iteration order, call edges, indexing.
        if let Tok::Ident(name) = *tok {
            let next_bang = matches!(toks.get(i + 1), Some((Tok::Punct('!'), _)));
            let prev_dot = i > 0 && matches!(toks[i - 1].0, Tok::Punct('.'));
            let after_fn = i > 0 && matches!(toks[i - 1].0, Tok::Ident("fn"));
            let path_ctor = ALLOC_TYPES.contains(&name)
                && matches!(toks.get(i + 1), Some((Tok::Punct(':'), _)))
                && matches!(toks.get(i + 2), Some((Tok::Punct(':'), _)))
                && matches!(
                    toks.get(i + 3),
                    Some((Tok::Ident("new" | "with_capacity" | "from"), _))
                );

            // A deterministic-artifact type in the signature (pending fn)
            // or body marks the function as a taint sink.
            if SINK_TYPES.contains(&name) {
                if let Some(pf) = pending_fn.as_mut() {
                    pf.sink = true;
                } else if let Some(f) = fns.last_mut() {
                    f.sink = true;
                }
            }

            let is_alloc = (matches!(name, "vec" | "format") && next_bang)
                || (prev_dot && ALLOC_METHODS.contains(&name))
                || path_ctor;
            if is_alloc && !in_test && fns.last().is_some() {
                if !ctx.fact_allowed(*line, &["src-hot-path-alloc-transitive"]) {
                    fns.last_mut()
                        .expect("checked above")
                        .alloc_sites
                        .push(Site {
                            line: *line,
                            what: name.to_string(),
                        });
                }
                if fns.last().is_some_and(|f| f.hot_path) {
                    ctx.emit(
                        &rules::SRC_HOT_PATH_ALLOC,
                        *line,
                        format!(
                            "allocating call `{name}` inside hot-path fn {}",
                            fns.last().map(|f| f.name.as_str()).unwrap_or("?")
                        ),
                    );
                }
            }
            // A hot-path fn must take its recorder as `&R: Recorder` so
            // the no-op flavour compiles out — constructing the concrete
            // `StatsRecorder` inline defeats that and allocates.
            if name == "StatsRecorder"
                && !in_test
                && fns.last().is_some_and(|f| f.hot_path)
                && matches!(toks.get(i + 1), Some((Tok::Punct(':'), _)))
                && matches!(toks.get(i + 2), Some((Tok::Punct(':'), _)))
            {
                ctx.emit(
                    &rules::SRC_HOT_PATH_RECORDER,
                    *line,
                    format!(
                        "StatsRecorder constructed inside hot-path fn {} — \
                         take a `&impl Recorder` parameter instead",
                        fns.last().map(|f| f.name.as_str()).unwrap_or("?")
                    ),
                );
            }

            // Iterating a HashMap/HashSet local: order nondeterminism.
            if !in_test && ITER_METHODS.contains(&name) && prev_dot && i >= 2 {
                if let Tok::Ident(recv) = toks[i - 2].0 {
                    if fns.last().is_some_and(|f| f.hash_locals.contains(recv))
                        && !ctx.fact_allowed(*line, &["src-determinism-taint"])
                    {
                        fns.last_mut()
                            .expect("checked above")
                            .nondet_sites
                            .push(Site {
                                line: *line,
                                what: format!("{recv}.{name}() — HashMap/HashSet iteration order"),
                            });
                    }
                }
            }
            if name == "in" && !in_test {
                // `for k in &m {` with m a hash local (the `.iter()` form is
                // caught above).
                let mut j = i + 1;
                while matches!(
                    toks.get(j),
                    Some((Tok::Punct('&'), _)) | Some((Tok::Ident("mut"), _))
                ) {
                    j += 1;
                }
                if let Some((Tok::Ident(v), _)) = toks.get(j) {
                    if matches!(toks.get(j + 1), Some((Tok::Punct('{'), _)))
                        && fns.last().is_some_and(|f| f.hash_locals.contains(*v))
                        && !ctx.fact_allowed(*line, &["src-determinism-taint"])
                    {
                        fns.last_mut()
                            .expect("checked above")
                            .nondet_sites
                            .push(Site {
                                line: *line,
                                what: format!("for … in {v} — HashMap/HashSet iteration order"),
                            });
                    }
                }
            }

            // Call edge (direct `name(…)` or turbofish `name::<…>(…)`).
            if !in_test
                && !after_fn
                && !NOT_CALLS.contains(&name)
                && call_paren_after(toks, i)
                && fns.last().is_some()
            {
                let qualified = i >= 2
                    && matches!(toks[i - 1].0, Tok::Punct(':'))
                    && matches!(toks[i - 2].0, Tok::Punct(':'));
                let mut qualifier = if qualified && i >= 3 {
                    match toks[i - 3].0 {
                        Tok::Ident(q) => Some(q.to_string()),
                        _ => None, // `<T as Trait>::name(…)` — unresolvable
                    }
                } else {
                    None
                };
                if qualifier.as_deref() == Some("Self") {
                    qualifier = fns.last().and_then(|f| f.owner.clone());
                }
                fns.last_mut().expect("checked above").calls.push(CallSite {
                    name: name.to_string(),
                    qualifier,
                    qualified,
                    dotted: prev_dot,
                    line: *line,
                });
            }
        } else if matches!(tok, Tok::Punct('['))
            && !in_test
            && i > 0
            && matches!(toks[i - 1].0, Tok::Ident(_) | Tok::Punct(')' | ']'))
        {
            if let Some(f) = fns.last_mut() {
                f.index_sites += 1;
            }
        }
        i += 1;
    }
    // Unbalanced braces never pop the remaining frames; drain them so the
    // body-scoped rules still report and the facts survive (balanced files
    // never reach this).
    for f in fns.drain(..).rev() {
        finish_frame(f, &mut facts, &mut ctx);
    }

    let allows = lexed
        .allows
        .iter()
        .map(|(l, ids)| (*l, ids.iter().cloned().collect::<BTreeSet<_>>()))
        .collect();
    ScanResult {
        findings: ctx.findings,
        facts: FileFacts {
            file: file.to_string(),
            krate: crate_of(file),
            fns: facts,
            allows,
        },
        used_allows: ctx.used,
    }
}

/// Pops one fn frame: fires the body-scoped rules and records its fact.
fn finish_frame(f: FnFrame, facts: &mut Vec<FnFact>, ctx: &mut Ctx<'_>) {
    if let Some(surrogate_line) = f.surrogate_line {
        if !f.exact_confirm {
            ctx.emit(
                &rules::SRC_SURROGATE_EXACT_CONFIRM,
                surrogate_line,
                format!(
                    "fn {} screens with surrogate_score_obs but never \
                     confirms survivors with an exact evaluation",
                    f.name
                ),
            );
        }
    }
    if !f.in_test {
        let sink = f.sink || f.owner.as_deref().is_some_and(|o| SINK_TYPES.contains(&o));
        // Fn-level exemption: an allow on the declaration line clears the
        // whole fn's allocation facts (for e.g. a build-once-and-cache fn
        // whose allocations hot paths never see in steady state).
        let alloc_sites = if !f.alloc_sites.is_empty()
            && ctx.fact_allowed(f.line, &[rules::SRC_HOT_PATH_ALLOC_TRANSITIVE.id])
        {
            Vec::new()
        } else {
            f.alloc_sites
        };
        facts.push(FnFact {
            parse_path: is_parse_path(&f.name),
            name: f.name,
            owner: f.owner,
            line: f.line,
            hot_path: f.hot_path,
            panic_root: f.panic_root,
            sink,
            calls: f.calls,
            panic_sites: f.panic_sites,
            alloc_sites,
            nondet_sites: f.nondet_sites,
            index_sites: f.index_sites,
        });
    }
}

/// True when identifier token `i` is directly called: `name(` or the
/// turbofish form `name::<…>(`.
fn call_paren_after(toks: &[(Tok<'_>, usize)], i: usize) -> bool {
    match toks.get(i + 1) {
        Some((Tok::Punct('('), _)) => true,
        Some((Tok::Punct(':'), _)) => {
            if !matches!(toks.get(i + 2), Some((Tok::Punct(':'), _)))
                || !matches!(toks.get(i + 3), Some((Tok::Punct('<'), _)))
            {
                return false;
            }
            let mut angle = 0usize;
            let mut j = i + 3;
            while let Some((t, _)) = toks.get(j) {
                match t {
                    Tok::Punct('<') => angle += 1,
                    // `->` inside fn-pointer generics is not a close.
                    Tok::Punct('>') if !matches!(toks.get(j - 1), Some((Tok::Punct('-'), _))) => {
                        angle = angle.saturating_sub(1);
                        if angle == 0 {
                            return matches!(toks.get(j + 1), Some((Tok::Punct('('), _)));
                        }
                    }
                    _ => {}
                }
                j += 1;
                if j > i + 64 {
                    return false; // runaway: not a turbofish
                }
            }
            false
        }
        _ => false,
    }
}

/// If the token before `close_dot` (a `.`) is the `)` closing a
/// `write!(…)` / `writeln!(…)` macro call, returns the macro name.
fn write_macro_before<'a>(toks: &[(Tok<'a>, usize)], dot: usize) -> Option<&'a str> {
    if dot == 0 || !matches!(toks[dot - 1].0, Tok::Punct(')')) {
        return None;
    }
    let mut depth = 0usize;
    let mut j = dot - 1;
    loop {
        match toks[j].0 {
            Tok::Punct(')') => depth += 1,
            Tok::Punct('(') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    if j >= 2
        && matches!(toks[j - 1].0, Tok::Punct('!'))
        && matches!(toks[j - 2].0, Tok::Ident("write" | "writeln"))
    {
        match toks[j - 2].0 {
            Tok::Ident(name) => Some(name),
            Tok::Punct(_) => None,
        }
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<(String, usize)> {
        lint_source("x.rs", src, false)
            .into_iter()
            .map(|f| (f.rule, f.line.unwrap_or(0)))
            .collect()
    }

    #[test]
    fn unwrap_in_parse_fn_is_flagged_outside_tests() {
        let src = r#"
fn parse_config(s: &str) -> u32 {
    s.parse().unwrap()
}
fn render(x: u32) -> String {
    maybe(x).unwrap()
}
"#;
        assert_eq!(findings(src), vec![("src-unwrap-parse".to_string(), 3)]);
    }

    #[test]
    fn expect_and_panic_in_parse_paths() {
        let src = "fn from_str(s: &str) { s.parse().expect(\"n\"); }\n\
                   fn load_file(p: &str) { panic!(\"missing {p}\"); }\n";
        assert_eq!(
            findings(src),
            vec![
                ("src-unwrap-parse".to_string(), 1),
                ("src-unwrap-parse".to_string(), 2)
            ]
        );
    }

    #[test]
    fn cfg_test_modules_and_test_fns_are_skipped() {
        let src = r#"
#[cfg(test)]
mod tests {
    fn parse_helper(s: &str) -> u32 { s.parse().unwrap() }
}
#[test]
fn parses() { parse_number("7").unwrap(); }
fn parse_number(s: &str) -> Option<u32> { s.parse().ok() }
"#;
        assert_eq!(findings(src), vec![]);
    }

    #[test]
    fn cfg_test_on_a_use_does_not_skip_the_next_item() {
        let src =
            "#[cfg(test)]\nuse std::fmt;\nfn parse_x(s: &str) { s.parse::<u32>().unwrap(); }\n";
        assert_eq!(findings(src), vec![("src-unwrap-parse".to_string(), 3)]);
    }

    #[test]
    fn timing_rule_and_exemption() {
        let src = "fn tick() { let t = Instant::now(); let s = SystemTime::now(); }\n";
        assert_eq!(
            findings(src),
            vec![("src-timing".to_string(), 1), ("src-timing".to_string(), 1)]
        );
        assert_eq!(lint_source("x.rs", src, true), vec![]);
    }

    #[test]
    fn write_unwrap_chain_is_flagged_anywhere() {
        let src = "fn render(out: &mut String) {\n    writeln!(out, \"x {}\", 1).unwrap();\n\
                       write!(out, \"y\").expect(\"fmt\");\n}\n";
        assert_eq!(
            findings(src),
            vec![
                ("src-write-unwrap".to_string(), 2),
                ("src-write-unwrap".to_string(), 3)
            ]
        );
    }

    #[test]
    fn strings_comments_and_lifetimes_hide_tokens() {
        let src = r##"
fn parse_docs<'a>(s: &'a str) -> &'a str {
    // s.parse().unwrap() in a comment
    /* nested /* writeln!(x).unwrap() */ block */
    let _c = 'x';
    let _e = '\n';
    let raw = r#"Instant::now() . unwrap ( ) "#;
    let plain = "panic!(\"no\")";
    s
}
"##;
        assert_eq!(findings(src), vec![]);
    }

    #[test]
    fn allow_pragma_suppresses_same_and_next_line() {
        let src = "fn parse_a(s: &str) { s.parse::<u32>().unwrap() /* keep */; } // lint:allow(src-unwrap-parse)\n\
                   fn parse_b(s: &str) {\n    // lint:allow(src-unwrap-parse)\n    s.parse::<u32>().unwrap();\n}\n\
                   fn parse_c(s: &str) { s.parse::<u32>().unwrap(); } // lint:allow(other-rule)\n";
        assert_eq!(findings(src), vec![("src-unwrap-parse".to_string(), 6)]);
    }

    #[test]
    fn hot_path_pragma_flags_allocations_in_the_next_fn_only() {
        let src = r#"
// lint:hot-path
fn inner_kernel(xs: &mut [u32]) {
    let v = vec![1, 2];
    let s = String::new();
    let t = x.to_string();
    let b = Box::new(3);
    let c: Vec<u32> = xs.iter().copied().collect();
}
fn relaxed() -> Vec<u32> {
    vec![1]
}
"#;
        let got = findings(src);
        assert_eq!(
            got.iter().map(|(r, _)| r.as_str()).collect::<Vec<_>>(),
            vec!["src-hot-path-alloc"; 5]
        );
        assert_eq!(
            got.iter().map(|(_, l)| *l).collect::<Vec<_>>(),
            vec![4, 5, 6, 7, 8]
        );
    }

    #[test]
    fn hot_path_pragma_flags_stats_recorder_construction() {
        let src = r#"
// lint:hot-path
fn inner_kernel(xs: &[f64]) -> f64 {
    let rec = StatsRecorder::new();
    rec.add("evals", 1);
    xs.iter().sum()
}
fn setup() -> StatsRecorder {
    StatsRecorder::new()
}
fn generic(rec: &StatsRecorder) {
    rec.add("ok", 1);
}
"#;
        assert_eq!(
            findings(src),
            vec![("src-hot-path-recorder".to_string(), 4)]
        );
    }

    #[test]
    fn nested_fn_pops_back_to_the_outer_frame() {
        let src = r#"
fn parse_outer(s: &str) {
    fn helper() -> u32 { 7 }
    s.parse::<u32>().unwrap();
}
"#;
        assert_eq!(findings(src), vec![("src-unwrap-parse".to_string(), 4)]);
    }

    #[test]
    fn surrogate_without_exact_confirm_is_flagged() {
        let src = r#"
fn screen_generation(pop: &[Allocation], cutoff: f64) -> usize {
    let score = surrogate_score_obs(g, m, a, cutoff, &cfg, &mut scratch, &rec);
    usize::from(score.screens(cutoff))
}
"#;
        assert_eq!(
            findings(src),
            vec![("src-surrogate-exact-confirm".to_string(), 3)]
        );
    }

    #[test]
    fn surrogate_with_exact_confirm_is_clean() {
        // Confirmation may come before or after the screen, via any exact
        // evaluator — the fused tier-2 call, the batch API, or a mapper
        // makespan.
        let src = r#"
fn two_tier(pop: &[Allocation], cutoff: f64) {
    let score = surrogate_score_obs(g, m, a, cutoff, &cfg, &mut scratch, &rec);
    if !score.screens(cutoff) {
        schedule_core_grouped(g, m, a, cutoff, &mut scratch, &rec);
    }
}
fn batched(pool: &mut EvalPool, batch: Vec<Allocation>, cutoff: f64) {
    let evs = pool.run_batch(batch, cutoff);
    let s = surrogate_score_obs(g, m, a, cutoff, &cfg, &mut scratch, &rec);
}
fn mapper_confirm(s: &Schedule) -> f64 {
    let lo = surrogate_score_obs(g, m, a, cutoff, &cfg, &mut scratch, &rec).lo;
    s.makespan()
}
"#;
        assert_eq!(findings(src), vec![]);
    }

    #[test]
    fn surrogate_rule_skips_tests_and_the_definition() {
        let src = r#"
pub fn surrogate_score_obs(g: &Ptg) -> SurrogateScore {
    SurrogateScore { lo: 0.0, hi: 0.0 }
}
#[test]
fn screens_alone() {
    let s = surrogate_score_obs(&g);
}
"#;
        assert_eq!(findings(src), vec![]);
    }

    #[test]
    fn surrogate_confirm_does_not_leak_across_sibling_fns() {
        // The exact call in the *second* fn must not excuse the first.
        let src = r#"
fn screen_only() {
    let s = surrogate_score_obs(g, m, a, cutoff, &cfg, &mut scratch, &rec);
}
fn exact_only(pool: &mut EvalPool) {
    pool.run_batch(batch, cutoff);
}
"#;
        assert_eq!(
            findings(src),
            vec![("src-surrogate-exact-confirm".to_string(), 3)]
        );
    }

    #[test]
    fn raw_identifiers_and_byte_strings_lex() {
        let src = "fn parse_r(s: &str) { let r#type = b\"bytes\"; let _ = br#\"raw\"#; s.parse::<u32>().unwrap(); }\n";
        assert_eq!(findings(src), vec![("src-unwrap-parse".to_string(), 1)]);
    }

    // ---- pass-1 fact extraction --------------------------------------

    fn facts(src: &str) -> FileFacts {
        scan_source("crates/demo/src/x.rs", src, false).facts
    }

    #[test]
    fn facts_record_calls_with_owner_and_qualifier() {
        let src = r#"
impl Mapper {
    fn plan(&self, g: &Ptg) -> f64 {
        let lb = bounds::lower_bound(g);
        Self::refine(lb);
        self.finish(lb)
    }
}
fn free_call() {
    helper::<u32>(1);
}
"#;
        let f = facts(src);
        assert_eq!(f.krate.as_deref(), Some("demo"));
        assert_eq!(f.fns.len(), 2);
        let plan = &f.fns[0];
        assert_eq!(plan.name, "plan");
        assert_eq!(plan.owner.as_deref(), Some("Mapper"));
        let calls: Vec<(&str, Option<&str>, bool)> = plan
            .calls
            .iter()
            .map(|c| (c.name.as_str(), c.qualifier.as_deref(), c.dotted))
            .collect();
        assert_eq!(
            calls,
            vec![
                ("lower_bound", Some("bounds"), false),
                ("refine", Some("Mapper"), false), // Self:: rewritten
                ("finish", None, true),
            ]
        );
        // Turbofish call is still a call.
        assert_eq!(f.fns[1].calls.len(), 1);
        assert_eq!(f.fns[1].calls[0].name, "helper");
    }

    #[test]
    fn facts_record_panic_sites_and_panic_root_pragma() {
        let src = r#"
// lint:panic-root
fn worker_loop(rx: &Receiver) {
    step().unwrap();
}
fn step() -> Result<(), PoolError> {
    panic!("boom");
}
fn quiet() -> u32 { 7 }
"#;
        let f = facts(src);
        assert!(f.fns[0].panic_root);
        assert_eq!(f.fns[0].panic_sites.len(), 1);
        assert_eq!(f.fns[0].panic_sites[0].what, ".unwrap()");
        assert!(!f.fns[1].panic_root);
        assert_eq!(f.fns[1].panic_sites[0].what, "panic!");
        assert!(f.fns[2].panic_sites.is_empty());
    }

    #[test]
    fn allow_at_site_removes_the_fact_and_is_marked_used() {
        let src = r#"
fn guarded() {
    maybe().unwrap(); // lint:allow(src-panic-reach) -- contained by catch_unwind
}
"#;
        let r = scan_source("x.rs", src, false);
        assert!(r.facts.fns[0].panic_sites.is_empty());
        assert!(r.used_allows.contains(&(3, "src-panic-reach".to_string())));
    }

    #[test]
    fn nondet_sites_with_seconds_escape_and_allow() {
        let src = r#"
fn trace_epoch() {
    let t0 = Instant::now(); // lint:allow(src-timing) -- phase accounting
    let wall_seconds = Instant::now(); // lint:allow(src-timing)
    let id = thread::current().id();
    let home = env::var("HOME");
}
"#;
        let r = scan_source("x.rs", src, false);
        let f = &r.facts.fns[0];
        // Both clock reads escape (allow + _seconds); thread/env stay.
        let whats: Vec<&str> = f.nondet_sites.iter().map(|s| s.what.as_str()).collect();
        assert_eq!(whats, vec!["thread::current()", "env read"]);
        // The timing findings themselves are suppressed and audited.
        assert!(r.findings.is_empty());
        assert!(r.used_allows.contains(&(3, "src-timing".to_string())));
    }

    #[test]
    fn timing_exempt_crates_contribute_no_clock_taint() {
        let src = "fn measure() { let t = Instant::now(); }
";
        let r = scan_source("crates/obs/src/x.rs", src, true);
        assert!(r.findings.is_empty());
        assert!(r.facts.fns[0].nondet_sites.is_empty());
    }

    #[test]
    fn hash_iteration_is_a_nondet_site() {
        let src = r#"
fn tally(xs: &[u32]) -> u32 {
    let mut seen = HashMap::new();
    let ordered = BTreeMap::new();
    let mut total = 0;
    for k in &seen {
        total += k;
    }
    for v in &ordered {
        total += v;
    }
    total + seen.keys().count() as u32
}
"#;
        let f = facts(src);
        let whats: Vec<&str> = f.fns[0]
            .nondet_sites
            .iter()
            .map(|s| s.what.as_str())
            .collect();
        assert_eq!(
            whats,
            vec![
                "for … in seen — HashMap/HashSet iteration order",
                "seen.keys() — HashMap/HashSet iteration order",
            ]
        );
    }

    #[test]
    fn alloc_sites_recorded_for_all_fns_not_just_hot() {
        let src = r#"
fn relaxed() -> Vec<u32> {
    let mut v = Vec::new();
    v.push(1);
    let s = format!("x");
    xs.iter().copied().collect()
}
"#;
        let f = facts(src);
        let whats: Vec<&str> = f.fns[0]
            .alloc_sites
            .iter()
            .map(|s| s.what.as_str())
            .collect();
        assert_eq!(whats, vec!["Vec", "format", "collect"]);
        // No finding: the fn is not hot.
        assert!(scan_source("x.rs", src, false).findings.is_empty());
    }

    #[test]
    fn fn_level_allow_clears_all_alloc_facts_of_the_fn() {
        let src = r#"
// lint:allow(src-hot-path-alloc-transitive) -- builds once, then cached
fn build_cache() -> Vec<u32> {
    let mut v = Vec::new();
    v.extend(0..4);
    v.to_vec()
}
"#;
        let res = scan_source("x.rs", src, false);
        assert!(res.facts.fns[0].alloc_sites.is_empty());
        assert!(res
            .used_allows
            .contains(&(2, "src-hot-path-alloc-transitive".to_string())));
    }

    #[test]
    fn sink_marker_from_signature_body_and_owner() {
        let src = r#"
fn build_trace(gens: usize) -> ConvergenceTrace {
    walk(gens)
}
impl RunReport {
    fn bump(&mut self) {}
}
fn unrelated() {}
"#;
        let f = facts(src);
        assert!(f.fns[0].sink);
        assert!(f.fns[1].sink); // owner is a sink type
        assert!(!f.fns[2].sink);
    }

    #[test]
    fn test_fns_produce_no_facts() {
        let src = r#"
#[cfg(test)]
mod tests {
    fn helper() { panic!("test only"); }
}
fn real() {}
"#;
        let f = facts(src);
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "real");
    }

    #[test]
    fn index_sites_counted() {
        let src = "fn pick(xs: &[u32], i: usize) -> u32 { xs[i] + xs[0] }\n";
        assert_eq!(facts(src).fns[0].index_sites, 2);
    }

    #[test]
    fn keywords_and_macros_are_not_call_edges() {
        let src = r#"
fn flow(x: u32) -> u32 {
    if check(x) { return x; }
    let y = match x { 0 => Some(1), _ => None };
    vec![1, 2].len() as u32
}
"#;
        let names: Vec<String> = facts(src).fns[0]
            .calls
            .iter()
            .map(|c| c.name.clone())
            .collect();
        assert_eq!(names, vec!["check", "len"]);
    }
}
