//! Source-invariant lint (Family B): a hand-rolled Rust token scanner
//! enforcing project invariants over `crates/*/src`.
//!
//! No `syn` lives under `vendor/`, and none is needed: the rules only
//! require a lexer that is exact about what is *code* — it skips string
//! and char literals, line and (nested) block comments, and raw strings —
//! plus enough structure tracking to know the current function, whether
//! the item is under `#[cfg(test)]`/`#[test]`, and where attributes end.
//!
//! Two comment pragmas steer the scanner:
//!
//! * `// lint:allow(rule-id, ...)` — suppresses those rules on the same
//!   line (trailing comment) or the directly following line (standalone
//!   comment). Every suppression is an audited exception.
//! * `// lint:hot-path` — marks the *next* `fn` as allocation-free: any
//!   allocating call inside it is reported by `src-hot-path-alloc`, and a
//!   `StatsRecorder::…` construction by `src-hot-path-recorder` (hot
//!   paths must take a generic `&impl Recorder` so the no-op flavour
//!   compiles out).

use crate::findings::Finding;
use crate::rules;
use std::collections::{HashMap, HashSet};

/// One lexed token: identifiers and single punctuation characters.
/// Literals, comments and whitespace never reach the scanner.
#[derive(Debug, Clone, PartialEq)]
enum Tok<'a> {
    Ident(&'a str),
    Punct(char),
}

/// Lexer output: the token stream plus the pragma side tables.
struct Lexed<'a> {
    toks: Vec<(Tok<'a>, usize)>,
    /// `line -> rule ids` from `// lint:allow(...)` comments.
    allows: HashMap<usize, HashSet<String>>,
    /// Lines of `// lint:hot-path` pragmas, in order.
    hot_paths: Vec<usize>,
}

fn lex(src: &str) -> Lexed<'_> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut allows: HashMap<usize, HashSet<String>> = HashMap::new();
    let mut hot_paths = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = src[i..].find('\n').map_or(bytes.len(), |n| i + n);
                parse_pragma(src[i + 2..end].trim(), line, &mut allows, &mut hot_paths);
                i = end;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comments, counting newlines.
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    match (bytes[i], bytes.get(i + 1)) {
                        (b'/', Some(b'*')) => {
                            depth += 1;
                            i += 2;
                        }
                        (b'*', Some(b'/')) => {
                            depth -= 1;
                            i += 2;
                        }
                        (b'\n', _) => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
            }
            '"' => i = skip_string(bytes, i, &mut line),
            '\'' => {
                // Char literal or lifetime. A char literal is either an
                // escape ('\…') or exactly one char before the closing
                // quote; everything else ('a in <'a>, 'static) is a
                // lifetime — only the quote itself is consumed.
                if bytes.get(i + 1) == Some(&b'\\') {
                    i += 2; // opening quote + backslash
                    if i < bytes.len() {
                        i += 1; // the escaped character
                    }
                    while i < bytes.len() && bytes[i] != b'\'' {
                        i += 1; // \u{…} payloads
                    }
                    i += 1; // closing quote
                } else if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                    i += 3;
                } else {
                    i += 1;
                }
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let ident = &src[start..i];
                // String prefixes: r"…", r#"…"#, b"…", br#"…"#.
                let is_raw = matches!(ident, "r" | "b" | "br" | "rb");
                if is_raw && i < bytes.len() && (bytes[i] == b'"' || bytes[i] == b'#') {
                    i = skip_raw_string(bytes, i, &mut line);
                } else {
                    toks.push((Tok::Ident(ident), line));
                }
            }
            _ if c.is_ascii_digit() => {
                // Numbers (including suffixes like 1e9, 0xff, 3u32) carry
                // no rule signal; dots stay separate tokens so `x.0.expect`
                // still lexes its `.` before `expect`.
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
            }
            _ if c.is_whitespace() => i += 1,
            _ => {
                toks.push((Tok::Punct(c), line));
                i += 1;
            }
        }
    }
    Lexed {
        toks,
        allows,
        hot_paths,
    }
}

/// Skips a regular string literal starting at the opening quote.
fn skip_string(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string; `i` points at the first `#` or `"` after the `r`
/// prefix.
fn skip_raw_string(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    let mut hashes = 0;
    while i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= bytes.len() || bytes[i] != b'"' {
        return i; // `r#ident` raw identifier, not a string
    }
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
        } else if bytes[i] == b'"' && bytes[i + 1..].iter().take(hashes).all(|&b| b == b'#') {
            return i + 1 + hashes;
        }
        i += 1;
    }
    i
}

/// Parses `lint:allow(...)` / `lint:hot-path` out of a line comment body.
fn parse_pragma(
    comment: &str,
    line: usize,
    allows: &mut HashMap<usize, HashSet<String>>,
    hot_paths: &mut Vec<usize>,
) {
    let Some(rest) = comment.strip_prefix("lint:") else {
        return;
    };
    // Trailing prose after the pragma is encouraged — every suppression
    // should say why (`// lint:allow(x) -- reason`).
    if rest == "hot-path" || rest.starts_with("hot-path ") {
        hot_paths.push(line);
    } else if let Some(args) = rest
        .strip_prefix("allow(")
        .and_then(|a| a.find(')').map(|close| &a[..close]))
    {
        let entry = allows.entry(line).or_default();
        for id in args.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            entry.insert(id.to_string());
        }
    }
}

/// True for function names the unwrap rule treats as user-input parse
/// paths.
fn is_parse_path(name: &str) -> bool {
    name == "from_str"
        || name.starts_with("parse")
        || name.starts_with("read_")
        || name.starts_with("load_")
}

/// Method names whose calls allocate (used by `src-hot-path-alloc`).
const ALLOC_METHODS: &[&str] = &["to_string", "to_vec", "to_owned", "collect"];
/// Calls that count as an exact-evaluation confirmation for
/// `src-surrogate-exact-confirm`: a function that screens offspring with
/// the tier-1 surrogate must also reach one of these in the same body,
/// otherwise a conservative interval is being consumed as if it were a
/// makespan.
const EXACT_CONFIRM_CALLS: &[&str] = &[
    "schedule_core_grouped",
    "evaluate_bounded",
    "evaluate_two_tier",
    "evaluate_two_tier_obs",
    "run_batch",
    "run_batch_two_tier",
    "makespan",
    "makespan_bounded",
];
/// Types whose constructors allocate.
const ALLOC_TYPES: &[&str] = &[
    "Box", "Vec", "String", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "VecDeque",
];

/// A function currently being scanned.
struct FnFrame {
    name: String,
    /// Brace depth *outside* the body; the frame pops when depth returns
    /// here.
    depth: usize,
    hot_path: bool,
    /// Line of the first `surrogate_score_obs(…)` call in the body, if any
    /// (only recorded outside test code).
    surrogate_line: Option<usize>,
    /// Whether the body also calls an exact evaluator (see
    /// [`EXACT_CONFIRM_CALLS`]).
    exact_confirm: bool,
}

/// Lints one Rust source file. `timing_exempt` is set for the crates whose
/// whole point is wall-clock measurement (`obs`, `bench`).
pub fn lint_source(file: &str, src: &str, timing_exempt: bool) -> Vec<Finding> {
    let lexed = lex(src);
    let toks = &lexed.toks;
    let mut out = Vec::new();
    let mut emit = |rule: &'static crate::rules::Rule, line: usize, message: String| {
        // A `lint:allow` on the same line (trailing comment) or directly
        // above (standalone comment) suppresses the finding.
        let allowed = [line, line.saturating_sub(1)]
            .iter()
            .any(|l| lexed.allows.get(l).is_some_and(|ids| ids.contains(rule.id)));
        if !allowed {
            out.push(Finding::new(rule, file, Some(line), message));
        }
    };

    let mut depth = 0usize;
    let mut fns: Vec<FnFrame> = Vec::new();
    let mut pending_fn: Option<FnFrame> = None;
    let mut pending_test = false;
    let mut skip_above: Option<usize> = None; // test region: skip while depth > this
    let mut hot_pragmas = lexed.hot_paths.iter().copied().peekable();

    let mut i = 0;
    while i < toks.len() {
        let (tok, line) = &toks[i];
        let in_test = skip_above.is_some();
        match tok {
            Tok::Punct('#') => {
                // Attribute: #[...] or #![...]; scan to the matching ']'.
                let mut j = i + 1;
                if matches!(toks.get(j), Some((Tok::Punct('!'), _))) {
                    j += 1;
                }
                if matches!(toks.get(j), Some((Tok::Punct('['), _))) {
                    let mut brackets = 0usize;
                    let mut has_test = false;
                    let mut negated = false;
                    while let Some((t, _)) = toks.get(j) {
                        match t {
                            Tok::Punct('[') => brackets += 1,
                            Tok::Punct(']') => {
                                brackets -= 1;
                                if brackets == 0 {
                                    break;
                                }
                            }
                            Tok::Ident("test") => has_test = true,
                            Tok::Ident("not") => negated = true,
                            _ => {}
                        }
                        j += 1;
                    }
                    // #[test], #[cfg(test)], #[cfg_attr(test, …)] mark the
                    // next item as test code; #[cfg(not(test))] does not.
                    if has_test && !negated {
                        pending_test = true;
                    }
                    i = j + 1;
                    continue;
                }
            }
            Tok::Punct('{') => {
                if pending_test && skip_above.is_none() {
                    skip_above = Some(depth);
                    pending_test = false;
                }
                if let Some(frame) = pending_fn.take() {
                    fns.push(frame);
                }
                depth += 1;
            }
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                if skip_above == Some(depth) {
                    skip_above = None;
                }
                while fns.last().is_some_and(|f| f.depth >= depth) {
                    let f = fns.pop().expect("checked above");
                    if let Some(surrogate_line) = f.surrogate_line {
                        if !f.exact_confirm {
                            emit(
                                &rules::SRC_SURROGATE_EXACT_CONFIRM,
                                surrogate_line,
                                format!(
                                    "fn {} screens with surrogate_score_obs but never \
                                     confirms survivors with an exact evaluation",
                                    f.name
                                ),
                            );
                        }
                    }
                }
            }
            Tok::Punct(';') => {
                // A `;` before any body cancels pending items (trait method
                // declarations, `#[cfg(test)] use …;`).
                pending_fn = None;
                pending_test = false;
            }
            Tok::Ident("fn") => {
                if let Some((Tok::Ident(name), _)) = toks.get(i + 1) {
                    let mut hot = false;
                    while hot_pragmas.peek().is_some_and(|&p| p <= *line) {
                        hot_pragmas.next();
                        hot = true;
                    }
                    pending_fn = Some(FnFrame {
                        name: name.to_string(),
                        depth,
                        hot_path: hot,
                        surrogate_line: None,
                        exact_confirm: false,
                    });
                }
            }
            Tok::Ident("panic")
                if !in_test
                    && matches!(toks.get(i + 1), Some((Tok::Punct('!'), _)))
                    && fns.last().is_some_and(|f| is_parse_path(&f.name)) =>
            {
                let f = fns.last().expect("checked above");
                emit(
                    &rules::SRC_UNWRAP_PARSE,
                    *line,
                    format!("panic! in parse path fn {}", f.name),
                );
            }
            Tok::Ident(name @ ("unwrap" | "expect")) if !in_test => {
                let dotted = i > 0 && matches!(toks[i - 1].0, Tok::Punct('.'));
                let called = matches!(toks.get(i + 1), Some((Tok::Punct('('), _)));
                if dotted && called {
                    if fns.last().is_some_and(|f| is_parse_path(&f.name)) {
                        let f = fns.last().expect("checked above");
                        emit(
                            &rules::SRC_UNWRAP_PARSE,
                            *line,
                            format!(".{name}() in parse path fn {}", f.name),
                        );
                    }
                    // write!(…).unwrap() / writeln!(…).expect(…): walk back
                    // over the macro's balanced parens to its name.
                    if let Some(mac) = write_macro_before(toks, i - 1) {
                        emit(
                            &rules::SRC_WRITE_UNWRAP,
                            *line,
                            format!("{mac}!(…).{name}() — propagate the fmt::Result instead"),
                        );
                    }
                }
            }
            Tok::Ident(t @ ("Instant" | "SystemTime"))
                if !in_test
                    && !timing_exempt
                    && matches!(toks.get(i + 1), Some((Tok::Punct(':'), _)))
                    && matches!(toks.get(i + 2), Some((Tok::Punct(':'), _)))
                    && matches!(toks.get(i + 3), Some((Tok::Ident("now"), _))) =>
            {
                emit(
                    &rules::SRC_TIMING,
                    *line,
                    format!("{t}::now() outside the obs/bench crates"),
                );
            }
            Tok::Ident("surrogate_score_obs")
                if !in_test
                    && matches!(toks.get(i + 1), Some((Tok::Punct('('), _)))
                    && !(i > 0 && matches!(toks[i - 1].0, Tok::Ident("fn"))) =>
            {
                // A call (not the definition — that is preceded by `fn` and
                // followed by its generics, not `(`). Remember the first one;
                // the frame decides at pop time whether an exact evaluation
                // ever confirmed it.
                if let Some(f) = fns.last_mut() {
                    f.surrogate_line.get_or_insert(*line);
                }
            }
            Tok::Ident(name)
                if EXACT_CONFIRM_CALLS.contains(name)
                    && matches!(toks.get(i + 1), Some((Tok::Punct('('), _)))
                    && !(i > 0 && matches!(toks[i - 1].0, Tok::Ident("fn"))) =>
            {
                if let Some(f) = fns.last_mut() {
                    f.exact_confirm = true;
                }
            }
            _ => {}
        }

        // Hot-path allocation checks, independent of the rules above.
        if !in_test && fns.last().is_some_and(|f| f.hot_path) {
            if let Tok::Ident(name) = tok {
                let next_bang = matches!(toks.get(i + 1), Some((Tok::Punct('!'), _)));
                let prev_dot = i > 0 && matches!(toks[i - 1].0, Tok::Punct('.'));
                let path_call = ALLOC_TYPES.contains(name)
                    && matches!(toks.get(i + 1), Some((Tok::Punct(':'), _)))
                    && matches!(toks.get(i + 2), Some((Tok::Punct(':'), _)))
                    && matches!(
                        toks.get(i + 3),
                        Some((Tok::Ident("new" | "with_capacity" | "from"), _))
                    );
                if (matches!(*name, "vec" | "format") && next_bang)
                    || (prev_dot && ALLOC_METHODS.contains(name))
                    || path_call
                {
                    emit(
                        &rules::SRC_HOT_PATH_ALLOC,
                        *line,
                        format!(
                            "allocating call `{name}` inside hot-path fn {}",
                            fns.last().map(|f| f.name.as_str()).unwrap_or("?")
                        ),
                    );
                }
                // A hot-path fn must take its recorder as `&R: Recorder` so
                // the no-op flavour compiles out — constructing the concrete
                // `StatsRecorder` inline defeats that and allocates.
                if *name == "StatsRecorder"
                    && matches!(toks.get(i + 1), Some((Tok::Punct(':'), _)))
                    && matches!(toks.get(i + 2), Some((Tok::Punct(':'), _)))
                {
                    emit(
                        &rules::SRC_HOT_PATH_RECORDER,
                        *line,
                        format!(
                            "StatsRecorder constructed inside hot-path fn {} — \
                             take a `&impl Recorder` parameter instead",
                            fns.last().map(|f| f.name.as_str()).unwrap_or("?")
                        ),
                    );
                }
            }
        }
        i += 1;
    }
    // Unbalanced braces never pop the remaining frames; drain them so the
    // surrogate rule still reports (balanced files never reach this).
    for f in fns.drain(..).rev() {
        if let Some(surrogate_line) = f.surrogate_line {
            if !f.exact_confirm {
                emit(
                    &rules::SRC_SURROGATE_EXACT_CONFIRM,
                    surrogate_line,
                    format!(
                        "fn {} screens with surrogate_score_obs but never \
                         confirms survivors with an exact evaluation",
                        f.name
                    ),
                );
            }
        }
    }
    out
}

/// If the token before `close_dot` (a `.`) is the `)` closing a
/// `write!(…)` / `writeln!(…)` macro call, returns the macro name.
fn write_macro_before<'a>(toks: &[(Tok<'a>, usize)], dot: usize) -> Option<&'a str> {
    if dot == 0 || !matches!(toks[dot - 1].0, Tok::Punct(')')) {
        return None;
    }
    let mut depth = 0usize;
    let mut j = dot - 1;
    loop {
        match toks[j].0 {
            Tok::Punct(')') => depth += 1,
            Tok::Punct('(') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    if j >= 2
        && matches!(toks[j - 1].0, Tok::Punct('!'))
        && matches!(toks[j - 2].0, Tok::Ident("write" | "writeln"))
    {
        match toks[j - 2].0 {
            Tok::Ident(name) => Some(name),
            Tok::Punct(_) => None,
        }
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<(String, usize)> {
        lint_source("x.rs", src, false)
            .into_iter()
            .map(|f| (f.rule, f.line.unwrap_or(0)))
            .collect()
    }

    #[test]
    fn unwrap_in_parse_fn_is_flagged_outside_tests() {
        let src = r#"
fn parse_config(s: &str) -> u32 {
    s.parse().unwrap()
}
fn render(x: u32) -> String {
    maybe(x).unwrap()
}
"#;
        assert_eq!(findings(src), vec![("src-unwrap-parse".to_string(), 3)]);
    }

    #[test]
    fn expect_and_panic_in_parse_paths() {
        let src = "fn from_str(s: &str) { s.parse().expect(\"n\"); }\n\
                   fn load_file(p: &str) { panic!(\"missing {p}\"); }\n";
        assert_eq!(
            findings(src),
            vec![
                ("src-unwrap-parse".to_string(), 1),
                ("src-unwrap-parse".to_string(), 2)
            ]
        );
    }

    #[test]
    fn cfg_test_modules_and_test_fns_are_skipped() {
        let src = r#"
#[cfg(test)]
mod tests {
    fn parse_helper(s: &str) -> u32 { s.parse().unwrap() }
}
#[test]
fn parses() { parse_number("7").unwrap(); }
fn parse_number(s: &str) -> Option<u32> { s.parse().ok() }
"#;
        assert_eq!(findings(src), vec![]);
    }

    #[test]
    fn cfg_test_on_a_use_does_not_skip_the_next_item() {
        let src =
            "#[cfg(test)]\nuse std::fmt;\nfn parse_x(s: &str) { s.parse::<u32>().unwrap(); }\n";
        assert_eq!(findings(src), vec![("src-unwrap-parse".to_string(), 3)]);
    }

    #[test]
    fn timing_rule_and_exemption() {
        let src = "fn tick() { let t = Instant::now(); let s = SystemTime::now(); }\n";
        assert_eq!(
            findings(src),
            vec![("src-timing".to_string(), 1), ("src-timing".to_string(), 1)]
        );
        assert_eq!(lint_source("x.rs", src, true), vec![]);
    }

    #[test]
    fn write_unwrap_chain_is_flagged_anywhere() {
        let src = "fn render(out: &mut String) {\n    writeln!(out, \"x {}\", 1).unwrap();\n\
                       write!(out, \"y\").expect(\"fmt\");\n}\n";
        assert_eq!(
            findings(src),
            vec![
                ("src-write-unwrap".to_string(), 2),
                ("src-write-unwrap".to_string(), 3)
            ]
        );
    }

    #[test]
    fn strings_comments_and_lifetimes_hide_tokens() {
        let src = r##"
fn parse_docs<'a>(s: &'a str) -> &'a str {
    // s.parse().unwrap() in a comment
    /* nested /* writeln!(x).unwrap() */ block */
    let _c = 'x';
    let _e = '\n';
    let raw = r#"Instant::now() . unwrap ( ) "#;
    let plain = "panic!(\"no\")";
    s
}
"##;
        assert_eq!(findings(src), vec![]);
    }

    #[test]
    fn allow_pragma_suppresses_same_and_next_line() {
        let src = "fn parse_a(s: &str) { s.parse::<u32>().unwrap() /* keep */; } // lint:allow(src-unwrap-parse)\n\
                   fn parse_b(s: &str) {\n    // lint:allow(src-unwrap-parse)\n    s.parse::<u32>().unwrap();\n}\n\
                   fn parse_c(s: &str) { s.parse::<u32>().unwrap(); } // lint:allow(other-rule)\n";
        assert_eq!(findings(src), vec![("src-unwrap-parse".to_string(), 6)]);
    }

    #[test]
    fn hot_path_pragma_flags_allocations_in_the_next_fn_only() {
        let src = r#"
// lint:hot-path
fn inner_kernel(xs: &mut [u32]) {
    let v = vec![1, 2];
    let s = String::new();
    let t = x.to_string();
    let b = Box::new(3);
    let c: Vec<u32> = xs.iter().copied().collect();
}
fn relaxed() -> Vec<u32> {
    vec![1]
}
"#;
        let got = findings(src);
        assert_eq!(
            got.iter().map(|(r, _)| r.as_str()).collect::<Vec<_>>(),
            vec!["src-hot-path-alloc"; 5]
        );
        assert_eq!(
            got.iter().map(|(_, l)| *l).collect::<Vec<_>>(),
            vec![4, 5, 6, 7, 8]
        );
    }

    #[test]
    fn hot_path_pragma_flags_stats_recorder_construction() {
        let src = r#"
// lint:hot-path
fn inner_kernel(xs: &[f64]) -> f64 {
    let rec = StatsRecorder::new();
    rec.add("evals", 1);
    xs.iter().sum()
}
fn setup() -> StatsRecorder {
    StatsRecorder::new()
}
fn generic(rec: &StatsRecorder) {
    rec.add("ok", 1);
}
"#;
        assert_eq!(
            findings(src),
            vec![("src-hot-path-recorder".to_string(), 4)]
        );
    }

    #[test]
    fn nested_fn_pops_back_to_the_outer_frame() {
        let src = r#"
fn parse_outer(s: &str) {
    fn helper() -> u32 { 7 }
    s.parse::<u32>().unwrap();
}
"#;
        assert_eq!(findings(src), vec![("src-unwrap-parse".to_string(), 4)]);
    }

    #[test]
    fn surrogate_without_exact_confirm_is_flagged() {
        let src = r#"
fn screen_generation(pop: &[Allocation], cutoff: f64) -> usize {
    let score = surrogate_score_obs(g, m, a, cutoff, &cfg, &mut scratch, &rec);
    usize::from(score.screens(cutoff))
}
"#;
        assert_eq!(
            findings(src),
            vec![("src-surrogate-exact-confirm".to_string(), 3)]
        );
    }

    #[test]
    fn surrogate_with_exact_confirm_is_clean() {
        // Confirmation may come before or after the screen, via any exact
        // evaluator — the fused tier-2 call, the batch API, or a mapper
        // makespan.
        let src = r#"
fn two_tier(pop: &[Allocation], cutoff: f64) {
    let score = surrogate_score_obs(g, m, a, cutoff, &cfg, &mut scratch, &rec);
    if !score.screens(cutoff) {
        schedule_core_grouped(g, m, a, cutoff, &mut scratch, &rec);
    }
}
fn batched(pool: &mut EvalPool, batch: Vec<Allocation>, cutoff: f64) {
    let evs = pool.run_batch(batch, cutoff);
    let s = surrogate_score_obs(g, m, a, cutoff, &cfg, &mut scratch, &rec);
}
fn mapper_confirm(s: &Schedule) -> f64 {
    let lo = surrogate_score_obs(g, m, a, cutoff, &cfg, &mut scratch, &rec).lo;
    s.makespan()
}
"#;
        assert_eq!(findings(src), vec![]);
    }

    #[test]
    fn surrogate_rule_skips_tests_and_the_definition() {
        let src = r#"
pub fn surrogate_score_obs(g: &Ptg) -> SurrogateScore {
    SurrogateScore { lo: 0.0, hi: 0.0 }
}
#[test]
fn screens_alone() {
    let s = surrogate_score_obs(&g);
}
"#;
        assert_eq!(findings(src), vec![]);
    }

    #[test]
    fn surrogate_confirm_does_not_leak_across_sibling_fns() {
        // The exact call in the *second* fn must not excuse the first.
        let src = r#"
fn screen_only() {
    let s = surrogate_score_obs(g, m, a, cutoff, &cfg, &mut scratch, &rec);
}
fn exact_only(pool: &mut EvalPool) {
    pool.run_batch(batch, cutoff);
}
"#;
        assert_eq!(
            findings(src),
            vec![("src-surrogate-exact-confirm".to_string(), 3)]
        );
    }

    #[test]
    fn raw_identifiers_and_byte_strings_lex() {
        let src = "fn parse_r(s: &str) { let r#type = b\"bytes\"; let _ = br#\"raw\"#; s.parse::<u32>().unwrap(); }\n";
        assert_eq!(findings(src), vec![("src-unwrap-parse".to_string(), 1)]);
    }
}
