//! Structured findings: what a rule reports when it fires.

use crate::rules::{Category, Rule, Severity};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One finding: a rule that fired at a location.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Stable id of the rule that fired.
    pub rule: String,
    /// Severity of the finding (the rule's default severity).
    pub severity: Severity,
    /// Input family of the rule.
    pub category: Category,
    /// Path of the offending file, as given on the command line.
    pub file: String,
    /// 1-based line number within `file`, when the finding is line-anchored
    /// (text formats and source files are; JSON artifacts are not).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub line: Option<usize>,
    /// One-line human-readable message.
    pub message: String,
    /// Call-chain witness for the dataflow rules: each entry is one hop
    /// (`fn name @ file:line`), ending at the offending site. Empty for
    /// single-site findings. Excluded from [`Finding::fingerprint`] — the
    /// entries carry line numbers, which must not churn baselines.
    pub witness: Vec<String>,
}

impl Finding {
    /// Builds a finding for `rule` at `file` (optionally line-anchored).
    pub fn new(
        rule: &Rule,
        file: impl Into<String>,
        line: Option<usize>,
        message: impl Into<String>,
    ) -> Finding {
        Finding {
            rule: rule.id.to_string(),
            severity: rule.severity,
            category: rule.category,
            file: file.into(),
            line,
            message: message.into(),
            witness: Vec::new(),
        }
    }

    /// Attaches a call-chain witness (builder style).
    pub fn with_witness(mut self, witness: Vec<String>) -> Finding {
        self.witness = witness;
        self
    }

    /// The identity used by baselines: rule + file + message. Line numbers
    /// are deliberately excluded so unrelated edits above a known finding
    /// do not make it look new.
    pub fn fingerprint(&self) -> String {
        format!("{}\u{1f}{}\u{1f}{}", self.rule, self.file, self.message)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(
                f,
                "{}:{}: {} [{}] {}",
                self.file, line, self.severity, self.rule, self.message
            ),
            None => write!(
                f,
                "{}: {} [{}] {}",
                self.file, self.severity, self.rule, self.message
            ),
        }
    }
}

/// Sorts findings for stable output: by file, then line, then rule id.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line.unwrap_or(0), a.rule.as_str()).cmp(&(
            b.file.as_str(),
            b.line.unwrap_or(0),
            b.rule.as_str(),
        ))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules;

    #[test]
    fn display_includes_location_and_rule() {
        let f = Finding::new(
            &rules::PTG_CYCLE,
            "g.ptg",
            Some(7),
            "edge 3 -> 0 closes a cycle",
        );
        assert_eq!(
            f.to_string(),
            "g.ptg:7: error [ptg-cycle] edge 3 -> 0 closes a cycle"
        );
        let f = Finding::new(&rules::SCHED_OVERLAP, "s.schedule.json", None, "overlap");
        assert_eq!(
            f.to_string(),
            "s.schedule.json: error [sched-overlap] overlap"
        );
    }

    #[test]
    fn fingerprint_ignores_the_line_number() {
        let a = Finding::new(&rules::PTG_CYCLE, "g.ptg", Some(7), "cycle");
        let b = Finding::new(&rules::PTG_CYCLE, "g.ptg", Some(9), "cycle");
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn sorting_is_stable_by_file_line_rule() {
        let mut v = vec![
            Finding::new(&rules::PTG_ORPHAN, "b.ptg", Some(3), "m"),
            Finding::new(&rules::PTG_CYCLE, "a.ptg", Some(9), "m"),
            Finding::new(&rules::PTG_CYCLE, "a.ptg", Some(2), "m"),
        ];
        sort_findings(&mut v);
        assert_eq!(v[0].file, "a.ptg");
        assert_eq!(v[0].line, Some(2));
        assert_eq!(v[2].file, "b.ptg");
    }
}
