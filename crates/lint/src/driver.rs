//! The analyzer driver: walks paths, classifies inputs by suffix and runs
//! the matching rule family.
//!
//! Source files get the two-pass treatment: pass 1 scans every file once,
//! producing single-site findings *and* per-function facts; pass 2 builds
//! the workspace call graph over all collected facts and runs the dataflow
//! propagations (panic-reachability, determinism taint, transitive
//! hot-path allocation) plus the suppression audit. Telemetry artifacts
//! (`BENCH_*.json`, `*_report.json`, `*.trace.json`) are cross-checked by
//! [`crate::reports`].

use crate::callgraph::CallGraph;
use crate::findings::{sort_findings, Finding};
use crate::source::FileFacts;
use crate::{artifact, dataflow, files, reports, source};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Directories never descended into: build output, vendored dependencies
/// and VCS metadata are not project inputs.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "node_modules"];

/// Source directories exempt from every source rule: integration tests,
/// benches and examples are test code that `#[cfg(test)]` cannot mark.
const TEST_DIRS: &[&str] = &["tests", "benches", "examples"];

/// Crates whose whole purpose is wall-clock measurement; exempt from
/// `src-timing`.
const TIMING_CRATES: &[&str] = &["obs", "bench"];

/// What the driver decided about one path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Ptg,
    Platform,
    Faults,
    Artifact,
    Report,
    Bench,
    Trace,
    Source,
    Skip,
}

fn classify(path: &Path) -> Kind {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    if name.ends_with(".schedule.json") {
        return Kind::Artifact;
    }
    // `_report.json` outranks the `BENCH_` prefix: BENCH_fitness_report.json
    // is a RunReport that happens to live in the benchmark family.
    if name.ends_with("_report.json") {
        return Kind::Report;
    }
    if name.ends_with(".trace.json") {
        return Kind::Trace;
    }
    if name.starts_with("BENCH_") && name.ends_with(".json") {
        return Kind::Bench;
    }
    match path.extension().and_then(|e| e.to_str()) {
        Some("ptg") => Kind::Ptg,
        Some("platform") => Kind::Platform,
        Some("faults") | Some("spec") => Kind::Faults,
        Some("rs") => Kind::Source,
        _ => Kind::Skip,
    }
}

/// True if any component of `path` names one of `dirs`.
fn under_dir(path: &Path, dirs: &[&str]) -> bool {
    path.components()
        .any(|c| c.as_os_str().to_str().is_some_and(|s| dirs.contains(&s)))
}

/// True if `path` lies inside a crate exempt from `src-timing`
/// (`crates/obs/…`, `crates/bench/…`).
fn timing_exempt(path: &Path) -> bool {
    let mut components = path.components().peekable();
    while let Some(c) = components.next() {
        if c.as_os_str().to_str() == Some("crates") {
            return components
                .peek()
                .and_then(|c| c.as_os_str().to_str())
                .is_some_and(|next| TIMING_CRATES.contains(&next));
        }
    }
    false
}

/// A problem reading inputs (distinct from findings: I/O errors exit 2,
/// findings exit 1).
#[derive(Debug)]
pub struct DriverError {
    /// Offending path.
    pub path: PathBuf,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.message)
    }
}

/// Lints every given path (files or directories, recursed) and returns the
/// sorted findings.
pub fn lint_paths(paths: &[PathBuf]) -> Result<Vec<Finding>, DriverError> {
    let mut worklist: Vec<PathBuf> = Vec::new();
    for p in paths {
        collect(p, &mut worklist, true)?;
    }
    // Deterministic order regardless of directory enumeration order.
    worklist.sort();
    worklist.dedup();

    // Pass 1: per-file rules; source files also yield call-graph facts and
    // a ledger of which allow pragmas earned their keep.
    let mut findings = Vec::new();
    let mut facts: Vec<FileFacts> = Vec::new();
    let mut used: BTreeSet<(String, usize, String)> = BTreeSet::new();
    for path in &worklist {
        findings.extend(lint_file(path, &mut facts, &mut used)?);
    }

    // Pass 2: workspace call graph, dataflow propagations, stale-allow
    // audit (which needs the combined pass-1 + pass-2 pragma ledger).
    let graph = CallGraph::build(&facts);
    let flow = dataflow::run(&graph);
    findings.extend(flow.findings);
    used.extend(flow.used_allows);
    findings.extend(dataflow::stale_allow_audit(&graph, &used));

    sort_findings(&mut findings);
    Ok(findings)
}

/// Recursively expands `path` into lintable files.
fn collect(path: &Path, out: &mut Vec<PathBuf>, explicit: bool) -> Result<(), DriverError> {
    let io = |e: std::io::Error| DriverError {
        path: path.to_path_buf(),
        message: e.to_string(),
    };
    if path.is_dir() {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !explicit && SKIP_DIRS.contains(&name) {
            return Ok(());
        }
        for entry in std::fs::read_dir(path).map_err(io)? {
            collect(&entry.map_err(io)?.path(), out, false)?;
        }
        Ok(())
    } else if path.is_file() {
        if classify(path) != Kind::Skip {
            out.push(path.to_path_buf());
        }
        Ok(())
    } else {
        Err(DriverError {
            path: path.to_path_buf(),
            message: "no such file or directory".to_string(),
        })
    }
}

/// Lints a single already-classified file (pass 1). Source files push
/// their call-graph facts into `facts` and their pragma usage into `used`.
fn lint_file(
    path: &Path,
    facts: &mut Vec<FileFacts>,
    used: &mut BTreeSet<(String, usize, String)>,
) -> Result<Vec<Finding>, DriverError> {
    let kind = classify(path);
    if kind == Kind::Skip {
        return Ok(Vec::new());
    }
    if kind == Kind::Source && under_dir(path, TEST_DIRS) {
        return Ok(Vec::new());
    }
    let text = std::fs::read_to_string(path).map_err(|e| DriverError {
        path: path.to_path_buf(),
        message: e.to_string(),
    })?;
    let file = path.display().to_string();
    Ok(match kind {
        Kind::Ptg => files::lint_ptg_file(&file, &text),
        Kind::Platform => files::lint_platform_file(&file, &text),
        Kind::Faults => files::lint_fault_file(&file, &text),
        Kind::Artifact => artifact::lint_artifact_json(&file, &text),
        Kind::Report => reports::lint_report_json(&file, &text),
        Kind::Bench => reports::lint_bench_json(&file, &text),
        Kind::Trace => reports::lint_trace_json(&file, &text),
        Kind::Source => {
            let scan = source::scan_source(&file, &text, timing_exempt(path));
            for (line, rule) in scan.used_allows {
                used.insert((file.clone(), line, rule));
            }
            facts.push(scan.facts);
            scan.findings
        }
        Kind::Skip => Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_suffix() {
        assert_eq!(classify(Path::new("a/b.ptg")), Kind::Ptg);
        assert_eq!(classify(Path::new("x.platform")), Kind::Platform);
        assert_eq!(classify(Path::new("x.faults")), Kind::Faults);
        assert_eq!(classify(Path::new("x.spec")), Kind::Faults);
        assert_eq!(classify(Path::new("run.schedule.json")), Kind::Artifact);
        assert_eq!(classify(Path::new("BENCH_fitness.json")), Kind::Bench);
        assert_eq!(
            classify(Path::new("BENCH_fitness_report.json")),
            Kind::Report
        );
        assert_eq!(classify(Path::new("run_report.json")), Kind::Report);
        assert_eq!(classify(Path::new("pool.trace.json")), Kind::Trace);
        assert_eq!(classify(Path::new("other.json")), Kind::Skip);
        assert_eq!(classify(Path::new("lib.rs")), Kind::Source);
        assert_eq!(classify(Path::new("README.md")), Kind::Skip);
    }

    #[test]
    fn timing_exemption_is_per_crate() {
        assert!(timing_exempt(Path::new("crates/obs/src/stats.rs")));
        assert!(timing_exempt(Path::new("crates/bench/src/lib.rs")));
        assert!(!timing_exempt(Path::new("crates/emts/src/ea.rs")));
        assert!(!timing_exempt(Path::new("src/lib.rs")));
    }

    #[test]
    fn test_dirs_are_exempt_from_source_rules() {
        assert!(under_dir(
            Path::new("crates/sched/tests/prop.rs"),
            TEST_DIRS
        ));
        assert!(!under_dir(Path::new("crates/sched/src/lib.rs"), TEST_DIRS));
    }

    #[test]
    fn missing_path_is_a_driver_error() {
        let err = lint_paths(&[PathBuf::from("definitely/not/here.ptg")]);
        assert!(err.is_err());
    }
}
