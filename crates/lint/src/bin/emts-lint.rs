//! `emts-lint` — rule-based static analysis for schedules, artifacts and
//! project source invariants.
//!
//! ```text
//! usage: emts-lint [options] <path>...
//!
//!   --format text|json       report format (default: text)
//!   --deny error|warning|info|none
//!                            lowest severity that fails the run
//!                            (default: warning)
//!   --baseline <file>        suppress findings recorded in the baseline
//!   --write-baseline <file>  record current findings as the new baseline
//!   --rules                  print the rule catalogue and exit
//!
//! exit status: 0 clean, 1 new findings at or above the deny threshold,
//! 2 usage or I/O error.
//! ```
//!
//! Paths may be files or directories; directories are recursed and files
//! are classified by suffix (`.ptg`, `.platform`, `.faults`/`.spec`,
//! `.schedule.json`, `.rs`). `target/`, `vendor/` and VCS directories are
//! never descended into; `tests/`, `benches/` and `examples/` are exempt
//! from source rules.

use lint::output;
use lint::rules::Severity;
use lint::Baseline;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

/// Write to stdout, tolerating a closed pipe (`emts-lint … | head`): the
/// exit code is the contract, so a reader that stopped early is not an
/// error worth panicking over.
fn emit(text: &str) {
    let mut out = std::io::stdout().lock();
    let _ = out.write_all(text.as_bytes());
    let _ = out.flush();
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
}

struct Args {
    paths: Vec<PathBuf>,
    format: Format,
    deny: Option<Severity>,
    baseline: Option<String>,
    write_baseline: Option<String>,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        paths: Vec::new(),
        format: Format::Text,
        deny: Some(Severity::Warning),
        baseline: None,
        write_baseline: None,
        list_rules: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--format" => {
                args.format = match iter.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => return Err(format!("--format expects text|json, got {other:?}")),
                }
            }
            "--deny" => {
                args.deny = match iter.next().as_deref() {
                    Some("none") => None,
                    Some(s) => Some(Severity::parse(s).ok_or_else(|| {
                        format!("--deny expects error|warning|info|none, got {s:?}")
                    })?),
                    None => return Err("--deny needs a severity".to_string()),
                }
            }
            "--baseline" => {
                args.baseline = Some(iter.next().ok_or("--baseline needs a file")?);
            }
            "--write-baseline" => {
                args.write_baseline = Some(iter.next().ok_or("--write-baseline needs a file")?);
            }
            "--rules" => args.list_rules = true,
            "--help" | "-h" => return Err("help".to_string()),
            other if other.starts_with('-') => return Err(format!("unknown option {other:?}")),
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    if !args.list_rules && args.paths.is_empty() {
        return Err("no paths given".to_string());
    }
    Ok(args)
}

fn usage() -> &'static str {
    "usage: emts-lint [--format text|json] [--deny error|warning|info|none] \
     [--baseline <file>] [--write-baseline <file>] [--rules] <path>..."
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            if e == "help" {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("emts-lint: {e}");
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        let mut listing = String::new();
        for r in lint::CATALOGUE {
            listing.push_str(&format!(
                "{:<26} {:<8} {:<9} {}\n",
                r.id, r.severity, r.category, r.summary
            ));
        }
        emit(&listing);
        return ExitCode::SUCCESS;
    }

    let findings = match lint::lint_paths(&args.paths) {
        Ok(findings) => findings,
        Err(e) => {
            eprintln!("emts-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.write_baseline {
        let baseline = Baseline::from_findings(&findings);
        if let Err(e) = std::fs::write(path, baseline.to_json()) {
            eprintln!("emts-lint: {path}: {e}");
            return ExitCode::from(2);
        }
    }

    let (new, baselined) = match &args.baseline {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("emts-lint: {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let baseline = match Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("emts-lint: {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            baseline.partition(findings)
        }
        None => (findings, Vec::new()),
    };

    match args.format {
        Format::Text => emit(&output::render_text(&new, baselined.len())),
        Format::Json => emit(&format!("{}\n", output::render_json(&new, baselined.len()))),
    }

    let failed = args
        .deny
        .is_some_and(|threshold| output::reaches(&new, threshold));
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
