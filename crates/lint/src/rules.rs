//! The rule registry: every check `emts-lint` can perform, with a stable
//! id, a severity and a category.
//!
//! Rules are compile-time constants — the registry is the single source of
//! truth for the rule catalogue table in `DESIGN.md` §10 and for the
//! `--deny` severity gate. Rule ids are stable across releases; suppression
//! comments (`// lint:allow(rule-id)`) and baselines reference them by id.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// How bad a finding is. Ordered: `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Noteworthy but not actionable on its own.
    Info,
    /// A smell or a latent problem; gates CI under `--deny warning`.
    Warning,
    /// A broken invariant — the artifact or source is wrong.
    Error,
}

impl Severity {
    /// Parses `error` / `warning` / `info` (case-insensitive).
    pub fn parse(s: &str) -> Option<Severity> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Severity::Error),
            "warning" | "warn" => Some(Severity::Warning),
            "info" => Some(Severity::Info),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

// The vendored serde_derive ignores `rename_all`, so spell out the
// lowercase wire form by hand.
impl Serialize for Severity {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for Severity {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .and_then(Severity::parse)
            .ok_or_else(|| DeError::expected("error|warning|info", "Severity"))
    }
}

/// What kind of input a rule inspects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// `*.schedule.json` artifact bundles (schedule + allocation + bounds).
    Schedule,
    /// `*.ptg` task-graph files.
    Ptg,
    /// `*.platform` cluster files.
    Platform,
    /// `*.faults` fault-spec files.
    Faults,
    /// `*.rs` project source.
    Source,
    /// `BENCH_*.json` benchmark baselines.
    Bench,
    /// `*_report.json` RunReport artifacts.
    Report,
    /// `*.trace.json` Chrome-trace exports.
    Trace,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Category::Schedule => write!(f, "schedule"),
            Category::Ptg => write!(f, "ptg"),
            Category::Platform => write!(f, "platform"),
            Category::Faults => write!(f, "faults"),
            Category::Source => write!(f, "source"),
            Category::Bench => write!(f, "bench"),
            Category::Report => write!(f, "report"),
            Category::Trace => write!(f, "trace"),
        }
    }
}

impl Category {
    /// Parses the lowercase wire form.
    pub fn parse(s: &str) -> Option<Category> {
        match s {
            "schedule" => Some(Category::Schedule),
            "ptg" => Some(Category::Ptg),
            "platform" => Some(Category::Platform),
            "faults" => Some(Category::Faults),
            "source" => Some(Category::Source),
            "bench" => Some(Category::Bench),
            "report" => Some(Category::Report),
            "trace" => Some(Category::Trace),
            _ => None,
        }
    }
}

impl Serialize for Category {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for Category {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .and_then(Category::parse)
            .ok_or_else(|| DeError::expected("a rule category", "Category"))
    }
}

/// One registered rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rule {
    /// Stable kebab-case identifier (referenced by suppressions/baselines).
    pub id: &'static str,
    /// Default severity of findings from this rule.
    pub severity: Severity,
    /// Input family the rule inspects.
    pub category: Category,
    /// One-line description for `emts-lint --rules` and the docs.
    pub summary: &'static str,
}

macro_rules! rules {
    ($($name:ident = ($id:literal, $sev:ident, $cat:ident, $summary:literal);)*) => {
        $(
            #[doc = $summary]
            pub const $name: Rule = Rule {
                id: $id,
                severity: Severity::$sev,
                category: Category::$cat,
                summary: $summary,
            };
        )*
        /// Every registered rule, in catalogue order.
        pub const CATALOGUE: &[Rule] = &[$($name),*];
    };
}

rules! {
    // Family A — schedule artifacts (`*.schedule.json`).
    ARTIFACT_MALFORMED = ("artifact-malformed", Error, Schedule,
        "schedule artifact does not parse or is structurally inconsistent");
    SCHED_TASK_COUNT = ("sched-task-count", Error, Schedule,
        "schedule covers a different number of tasks than the PTG");
    SCHED_WIDTH = ("sched-width", Error, Schedule,
        "task uses a different processor count than its allocation");
    SCHED_DURATION = ("sched-duration", Error, Schedule,
        "task duration disagrees with the execution-time model");
    SCHED_PRECEDENCE = ("sched-precedence", Error, Schedule,
        "task starts before a predecessor finishes");
    SCHED_OVERLAP = ("sched-overlap", Error, Schedule,
        "two tasks overlap on the same processor (oversubscribed slot)");
    SCHED_BELOW_BOUND = ("sched-below-bound", Error, Schedule,
        "reported makespan beats a proven lower bound — corrupt artifact");
    SCHED_MAKESPAN_REPORT = ("sched-makespan-report", Error, Schedule,
        "reported makespan disagrees with the schedule's actual makespan");
    ALLOC_PAST_SWEET_SPOT = ("alloc-past-sweet-spot", Warning, Schedule,
        "task allocated more processors than its fastest width");
    ALLOC_NONMONOTONIC_WASTE = ("alloc-nonmonotonic-waste", Warning, Schedule,
        "fewer processors would run the task at least as fast (Model-2 waste)");

    // Family A — PTG files (`*.ptg`).
    PTG_PARSE = ("ptg-parse", Error, Ptg,
        "line does not parse as a task or edge directive");
    PTG_DEGENERATE_TASK = ("ptg-degenerate-task", Error, Ptg,
        "task cost or alpha outside its domain (flop > 0, alpha in [0,1])");
    PTG_EDGE_RANGE = ("ptg-edge-range", Error, Ptg,
        "edge references a task id that is never defined");
    PTG_CYCLE = ("ptg-cycle", Error, Ptg,
        "edge closes a dependency cycle");
    PTG_DUPLICATE_EDGE = ("ptg-duplicate-edge", Warning, Ptg,
        "edge repeats an earlier edge");
    PTG_ORPHAN = ("ptg-orphan", Warning, Ptg,
        "task has no edges at all in a multi-task graph");

    // Family A — platform files (`*.platform`).
    PLATFORM_PARSE = ("platform-parse", Error, Platform,
        "platform file is malformed or out of domain");
    PLATFORM_DEGENERATE = ("platform-degenerate", Warning, Platform,
        "single-processor platform degenerates every moldable schedule");

    // Family A — fault-spec files (`*.faults`).
    FAULT_PARSE = ("fault-parse", Error, Faults,
        "fault spec does not parse or a value is out of range");
    FAULT_INEFFECTIVE_CRASH = ("fault-ineffective-crash", Warning, Faults,
        "crash probability set with retries=0 — attempt 0 never crashes");

    // Family B — source invariants (`*.rs`).
    SRC_UNWRAP_PARSE = ("src-unwrap-parse", Warning, Source,
        "unwrap/expect/panic! on a user-input parse path outside tests");
    SRC_TIMING = ("src-timing", Warning, Source,
        "Instant::now/SystemTime::now outside the obs and bench crates");
    SRC_WRITE_UNWRAP = ("src-write-unwrap", Warning, Source,
        "write!/writeln! result unwrapped instead of propagated");
    SRC_HOT_PATH_ALLOC = ("src-hot-path-alloc", Warning, Source,
        "allocating call inside a function marked // lint:hot-path");
    SRC_HOT_PATH_RECORDER = ("src-hot-path-recorder", Warning, Source,
        "StatsRecorder constructed inside a function marked // lint:hot-path");
    SRC_SURROGATE_EXACT_CONFIRM = ("src-surrogate-exact-confirm", Warning, Source,
        "surrogate screening consumed without an exact evaluation in the same function");

    // Family B — workspace dataflow (call-graph propagations, pass 2).
    SRC_PANIC_REACH = ("src-panic-reach", Warning, Source,
        "panic!/unwrap/expect reachable through calls from a parse path or a // lint:panic-root fn");
    SRC_DETERMINISM_TAINT = ("src-determinism-taint", Warning, Source,
        "nondeterminism source flows into a deterministic-artifact producer");
    SRC_HOT_PATH_ALLOC_TRANSITIVE = ("src-hot-path-alloc-transitive", Warning, Source,
        "// lint:hot-path fn reaches an allocating callee through the call graph");
    LINT_STALE_ALLOW = ("lint-stale-allow", Warning, Source,
        "lint:allow pragma whose rule no longer fires here, or that names an unknown rule");

    // Family C — committed artifact cross-checks.
    BENCH_UNKNOWN_DIRECTION = ("bench-unknown-direction", Warning, Bench,
        "numeric leaf in a BENCH_*.json has no known regress direction token — it can never gate");
    REPORT_SPAN_BALANCE = ("report-span-balance", Error, Report,
        "RunReport phase spans are unbalanced or inconsistent with wall time");
    TRACE_NESTING = ("trace-nesting", Error, Trace,
        "Chrome-trace complete events do not nest properly within their thread lane");
}

/// Looks a rule up by its stable id.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    CATALOGUE.iter().find(|r| r.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severities_are_ordered() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::parse("WARN"), Some(Severity::Warning));
        assert_eq!(Severity::parse("nope"), None);
    }

    #[test]
    fn rule_ids_are_unique_and_resolvable() {
        for (i, r) in CATALOGUE.iter().enumerate() {
            assert!(
                CATALOGUE.iter().skip(i + 1).all(|o| o.id != r.id),
                "duplicate rule id {}",
                r.id
            );
            assert_eq!(rule_by_id(r.id), Some(r));
        }
        assert!(rule_by_id("no-such-rule").is_none());
    }

    #[test]
    fn rule_ids_are_kebab_case() {
        for r in CATALOGUE {
            assert!(
                r.id.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{} is not kebab-case",
                r.id
            );
        }
    }
}
