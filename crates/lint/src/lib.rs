//! `emts-lint` — a rule-based static analyzer for the EMTS workspace.
//!
//! Production schedulers ship a static verification layer next to their
//! dynamic checks; this crate is ours. Two rule families share one
//! registry ([`rules::CATALOGUE`]), one finding shape ([`Finding`]) and
//! one reporting/baseline pipeline:
//!
//! * **Family A — artifact analysis** ([`artifact`], [`files`]): enumerate
//!   *every* violation in a committed `*.schedule.json` bundle through the
//!   shared `sched::for_each_violation` enumerator, cross-check reported
//!   makespans against the critical-path and area lower bounds (beating a
//!   proven bound ⇒ corrupt artifact), flag the allocation smells the
//!   paper motivates (past-sweet-spot allocations, Model-2 non-monotonic
//!   waste), and lint `*.ptg` / `*.platform` / `*.faults` files with
//!   line-anchored findings.
//! * **Family B — source invariants** ([`source`]): a hand-rolled Rust
//!   token scanner enforcing project rules over `crates/*/src` — no
//!   `unwrap`/`expect`/`panic!` on user-input parse paths outside tests,
//!   no `Instant::now`/`SystemTime::now` outside `obs`/`bench`, no
//!   allocating calls in functions marked `// lint:hot-path`, with
//!   `// lint:allow(rule-id)` suppressions.
//!
//! The [`driver`] walks paths and dispatches by suffix; [`baseline`]
//! implements the committed-baseline mechanism so only *new* findings gate
//! CI; [`output`] renders text/JSON reports. The `emts-lint` binary exits
//! non-zero when a non-baselined finding reaches the `--deny` threshold.

#![warn(missing_docs)]

pub mod artifact;
pub mod baseline;
pub mod callgraph;
pub mod dataflow;
pub mod driver;
pub mod files;
pub mod findings;
pub mod output;
pub mod reports;
pub mod rules;
pub mod source;

pub use artifact::{lint_artifact, lint_artifact_json, ScheduleArtifact};
pub use baseline::Baseline;
pub use driver::lint_paths;
pub use files::{lint_fault_file, lint_platform_file, lint_ptg_file};
pub use findings::Finding;
pub use rules::{Category, Rule, Severity, CATALOGUE};
pub use source::lint_source;
