//! Artifact cross-checkers for committed telemetry files.
//!
//! Three rules over three JSON families the repository commits next to the
//! code they describe:
//!
//! * **`bench-unknown-direction`** (`BENCH_*.json`) — every numeric leaf
//!   must resolve to a regress direction through the canonical token
//!   tables in [`obs::regress`], or be an identity/config value. A
//!   Neutral, non-identity leaf can never gate in
//!   `scripts/bench_smoke.sh`'s inflation check, so committing one
//!   silently exempts that metric from regression protection.
//! * **`report-span-balance`** (`*_report.json`) — a `RunReport`'s nested
//!   phase spans must be internally consistent: the direct children of a
//!   span cannot account for more time than the span itself, and no root
//!   span can exceed the run's `wall_seconds`. Parsed leniently (only
//!   `wall_seconds` + `phases/*/seconds` are read) so schema-version bumps
//!   don't blind the checker.
//! * **`trace-nesting`** (`*.trace.json`) — Chrome-trace complete (`"X"`)
//!   events within one thread lane must nest: two spans on the same `tid`
//!   either contain each other or are disjoint. Partial overlap means the
//!   exporter emitted a corrupt interval tree and every viewer will render
//!   it differently.

use crate::findings::Finding;
use crate::rules;
use obs::regress::{direction_of, is_identity, Direction};
use serde::Value;

/// Relative slack for span-sum comparisons: recorder snapshots are taken
/// while spans are live, so a child can legitimately run a hair past its
/// parent's recorded total.
const SPAN_TOLERANCE: f64 = 0.01;

/// Absolute slack (seconds) so near-zero spans don't trip the relative
/// check on float noise.
const SPAN_EPSILON: f64 = 1e-6;

// ---------------------------------------------------------------------------
// bench-unknown-direction
// ---------------------------------------------------------------------------

/// Lints a committed `BENCH_*.json`: flags numeric leaves whose dotted
/// path has no known regress direction token and is not an identity.
pub fn lint_bench_json(file: &str, text: &str) -> Vec<Finding> {
    let value = match serde_json::parse(text) {
        Ok(v) => v,
        Err(e) => {
            return vec![Finding::new(
                &rules::BENCH_UNKNOWN_DIRECTION,
                file,
                None,
                format!("unreadable as JSON: {e}"),
            )]
        }
    };
    let mut findings = Vec::new();
    walk_bench(file, "", &value, &mut findings);
    findings
}

fn walk_bench(file: &str, path: &str, value: &Value, out: &mut Vec<Finding>) {
    match value {
        Value::Object(fields) => {
            for (k, v) in fields {
                let sub = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                walk_bench(file, &sub, v, out);
            }
        }
        // Array elements share the parent key's direction (histogram
        // bounds, per-bucket counts); the parent path decides for all.
        Value::Array(items) => {
            for v in items {
                walk_bench(file, path, v, out);
            }
        }
        Value::Int(_) | Value::Float(_) => {
            if direction_of(path) == Direction::Neutral && !is_identity(path) {
                out.push(Finding::new(
                    &rules::BENCH_UNKNOWN_DIRECTION,
                    file,
                    None,
                    format!("metric `{path}` has no regress direction token — it can never gate"),
                ));
            }
        }
        Value::Null | Value::Bool(_) | Value::Str(_) => {}
    }
}

// ---------------------------------------------------------------------------
// report-span-balance
// ---------------------------------------------------------------------------

/// Lints a committed `*_report.json` (a `RunReport`): phase spans must be
/// balanced against their parents and the recorded wall time.
pub fn lint_report_json(file: &str, text: &str) -> Vec<Finding> {
    let bad = |msg: String| vec![Finding::new(&rules::REPORT_SPAN_BALANCE, file, None, msg)];
    let value = match serde_json::parse(text) {
        Ok(v) => v,
        Err(e) => return bad(format!("unreadable as JSON: {e}")),
    };
    let Some(wall) = value.get("wall_seconds").and_then(as_f64) else {
        return bad("missing numeric `wall_seconds`".to_string());
    };
    let Some(phases) = value.get("phases").and_then(Value::as_object) else {
        return bad("missing `phases` object".to_string());
    };
    // Lenient read: (span path, seconds) pairs; anything malformed inside a
    // phase entry is itself a finding.
    let mut spans: Vec<(&str, f64)> = Vec::new();
    let mut findings = Vec::new();
    for (path, stat) in phases {
        match stat.get("seconds").and_then(as_f64) {
            Some(s) if s >= 0.0 => spans.push((path.as_str(), s)),
            Some(s) => findings.push(Finding::new(
                &rules::REPORT_SPAN_BALANCE,
                file,
                None,
                format!("phase `{path}` recorded negative time ({s} s)"),
            )),
            None => findings.push(Finding::new(
                &rules::REPORT_SPAN_BALANCE,
                file,
                None,
                format!("phase `{path}` has no numeric `seconds`"),
            )),
        }
    }

    // Children of every span must fit inside it.
    for &(parent, parent_s) in &spans {
        let prefix = format!("{parent}/");
        let children: f64 = spans
            .iter()
            .filter(|(k, _)| k.strip_prefix(&prefix).is_some_and(|r| !r.contains('/')))
            .map(|&(_, s)| s)
            .sum();
        if children > parent_s * (1.0 + SPAN_TOLERANCE) + SPAN_EPSILON {
            findings.push(Finding::new(
                &rules::REPORT_SPAN_BALANCE,
                file,
                None,
                format!(
                    "children of span `{parent}` sum to {children:.6} s but the span recorded {parent_s:.6} s"
                ),
            ));
        }
    }

    // Hierarchical roots (spans that have children) must fit in the wall
    // time. Flat accumulators (worker busy time summed across threads) have
    // no children and may legitimately exceed it, so they are not checked.
    for &(root, root_s) in &spans {
        if root.contains('/') {
            continue;
        }
        let prefix = format!("{root}/");
        let is_span_root = spans.iter().any(|(k, _)| k.starts_with(&prefix));
        if is_span_root && root_s > wall * (1.0 + SPAN_TOLERANCE) + SPAN_EPSILON {
            findings.push(Finding::new(
                &rules::REPORT_SPAN_BALANCE,
                file,
                None,
                format!(
                    "root span `{root}` recorded {root_s:.6} s, more than wall_seconds ({wall:.6} s)"
                ),
            ));
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// trace-nesting
// ---------------------------------------------------------------------------

/// Lints a committed `*.trace.json` (Chrome trace): complete events must
/// nest properly within each thread lane.
pub fn lint_trace_json(file: &str, text: &str) -> Vec<Finding> {
    let bad = |msg: String| vec![Finding::new(&rules::TRACE_NESTING, file, None, msg)];
    let value = match serde_json::parse(text) {
        Ok(v) => v,
        Err(e) => return bad(format!("unreadable as JSON: {e}")),
    };
    let events = match &value {
        Value::Object(_) => match value.get("traceEvents") {
            Some(Value::Array(a)) => a.as_slice(),
            _ => return bad("missing `traceEvents` array".to_string()),
        },
        // The Trace Event Format also permits a bare top-level array.
        Value::Array(a) => a.as_slice(),
        _ => return bad("trace is neither an object nor an event array".to_string()),
    };

    // Collect "X" (complete) events per tid lane.
    let mut lanes: std::collections::BTreeMap<i128, Vec<(f64, f64, String)>> =
        std::collections::BTreeMap::new();
    let mut findings = Vec::new();
    for ev in events {
        if ev.get("ph").and_then(Value::as_str) != Some("X") {
            continue;
        }
        let name = ev
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or("<unnamed>")
            .to_string();
        let tid = match ev.get("tid") {
            Some(Value::Int(t)) => *t,
            _ => 0,
        };
        let (Some(ts), Some(dur)) = (
            ev.get("ts").and_then(as_f64),
            ev.get("dur").and_then(as_f64),
        ) else {
            findings.push(Finding::new(
                &rules::TRACE_NESTING,
                file,
                None,
                format!("complete event `{name}` lacks numeric ts/dur"),
            ));
            continue;
        };
        if dur < 0.0 {
            findings.push(Finding::new(
                &rules::TRACE_NESTING,
                file,
                None,
                format!("complete event `{name}` has negative duration ({dur})"),
            ));
            continue;
        }
        lanes.entry(tid).or_default().push((ts, dur, name));
    }

    for (tid, lane) in &mut lanes {
        // Sort by start; on ties the longer event is the ancestor.
        lane.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal))
        });
        // Classic interval-stack walk: pop spans that ended before this one
        // starts; whatever remains on top must fully contain it.
        let mut stack: Vec<(f64, f64, &str)> = Vec::new();
        for (ts, dur, name) in lane.iter() {
            let end = ts + dur;
            while stack
                .last()
                .is_some_and(|&(_, top_end, _)| top_end <= *ts + SPAN_EPSILON)
            {
                stack.pop();
            }
            if let Some(&(top_ts, top_end, top_name)) = stack.last() {
                if end > top_end + SPAN_EPSILON {
                    findings.push(Finding::new(
                        &rules::TRACE_NESTING,
                        file,
                        None,
                        format!(
                            "tid {tid}: event `{name}` [{ts}, {end}] partially overlaps \
                             `{top_name}` [{top_ts}, {top_end}] — lanes must nest"
                        ),
                    ));
                    continue; // don't push the corrupt interval
                }
            }
            stack.push((*ts, end, name.as_str()));
        }
    }
    findings
}

/// Numeric coercion over the vendored `Value`.
fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn bench_leaves_with_known_directions_pass() {
        let text = r#"{
            "workload": "daggen n=100",
            "batch_size": 25,
            "paths_ns_per_eval": { "pooled": 5429.1 },
            "speedup_vs_baseline": 57.1,
            "cache_hit_rate": 0.75
        }"#;
        assert!(lint_bench_json("BENCH_x.json", text).is_empty());
    }

    #[test]
    fn bench_neutral_noise_leaf_is_flagged_with_its_path() {
        let text = r#"{ "outer": { "mystery_blob": 42.0 } }"#;
        let f = lint_bench_json("BENCH_x.json", text);
        assert_eq!(rules_of(&f), vec!["bench-unknown-direction"]);
        assert!(f[0].message.contains("outer.mystery_blob"));
    }

    #[test]
    fn bench_arrays_inherit_the_parent_key_direction() {
        let text = r#"{ "latency_ns": [1.0, 2.0], "batch_sizes": [1, 25] }"#;
        // latency_ns gates; batch sizes are identity configuration.
        assert!(lint_bench_json("BENCH_x.json", text).is_empty());
    }

    #[test]
    fn report_balanced_spans_pass() {
        let text = r#"{
            "wall_seconds": 1.5,
            "phases": {
                "ea": { "seconds": 1.4, "count": 1 },
                "ea/evaluate": { "seconds": 1.0, "count": 10 },
                "ea/mutate": { "seconds": 0.3, "count": 10 },
                "worker_busy": { "seconds": 9.0, "count": 8 }
            }
        }"#;
        // worker_busy is a flat accumulator (no children): exempt from wall.
        assert!(lint_report_json("r_report.json", text).is_empty());
    }

    #[test]
    fn report_overfull_parent_and_wall_violations_fire() {
        let text = r#"{
            "wall_seconds": 1.0,
            "phases": {
                "ea": { "seconds": 2.0, "count": 1 },
                "ea/evaluate": { "seconds": 2.5, "count": 10 }
            }
        }"#;
        let f = lint_report_json("r_report.json", text);
        assert_eq!(
            rules_of(&f),
            vec!["report-span-balance", "report-span-balance"]
        );
        assert!(f
            .iter()
            .any(|f| f.message.contains("children of span `ea`")));
        assert!(f.iter().any(|f| f.message.contains("root span `ea`")));
    }

    #[test]
    fn report_missing_wall_or_phases_is_a_finding_not_a_crash() {
        assert_eq!(
            rules_of(&lint_report_json("r_report.json", "{}")),
            vec!["report-span-balance"]
        );
        assert_eq!(
            rules_of(&lint_report_json("r_report.json", "not json")),
            vec!["report-span-balance"]
        );
    }

    #[test]
    fn trace_nested_and_disjoint_events_pass() {
        let text = r#"{ "traceEvents": [
            { "ph": "X", "name": "outer", "tid": 1, "ts": 0, "dur": 100 },
            { "ph": "X", "name": "inner", "tid": 1, "ts": 10, "dur": 20 },
            { "ph": "X", "name": "later", "tid": 1, "ts": 40, "dur": 60 },
            { "ph": "M", "name": "meta" },
            { "ph": "X", "name": "other-lane", "tid": 2, "ts": 5, "dur": 500 }
        ] }"#;
        assert!(lint_trace_json("t.trace.json", text).is_empty());
    }

    #[test]
    fn trace_partial_overlap_in_one_lane_fires() {
        let text = r#"{ "traceEvents": [
            { "ph": "X", "name": "a", "tid": 1, "ts": 0, "dur": 50 },
            { "ph": "X", "name": "b", "tid": 1, "ts": 25, "dur": 50 }
        ] }"#;
        let f = lint_trace_json("t.trace.json", text);
        assert_eq!(rules_of(&f), vec!["trace-nesting"]);
        assert!(f[0].message.contains("partially overlaps"));
    }

    #[test]
    fn trace_overlap_across_lanes_is_fine() {
        let text = r#"{ "traceEvents": [
            { "ph": "X", "name": "a", "tid": 1, "ts": 0, "dur": 50 },
            { "ph": "X", "name": "b", "tid": 2, "ts": 25, "dur": 50 }
        ] }"#;
        assert!(lint_trace_json("t.trace.json", text).is_empty());
    }

    #[test]
    fn trace_malformed_events_are_findings() {
        let text = r#"{ "traceEvents": [
            { "ph": "X", "name": "nodur", "tid": 1, "ts": 0 },
            { "ph": "X", "name": "neg", "tid": 1, "ts": 0, "dur": -5 }
        ] }"#;
        let f = lint_trace_json("t.trace.json", text);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn committed_bench_and_report_shapes_are_accepted() {
        // Mirrors the shapes committed at the repo root so the tree lints
        // clean: nested objects, histogram bounds, meta strings.
        let bench = r#"{
            "mapper_ns_per_call": { "insertion/Grelon_n100": 2873930.0 },
            "two_tier": { "surrogate_screen_rate": 0.19 }
        }"#;
        assert!(lint_bench_json("BENCH_fitness.json", bench).is_empty());
    }
}
