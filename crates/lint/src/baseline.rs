//! Committed baselines: accept today's findings, gate only what is new.
//!
//! A baseline is a JSON file of finding fingerprints (rule + file +
//! message, deliberately line-free so edits above a known finding do not
//! resurrect it). `emts-lint --baseline <file>` drops findings whose
//! fingerprint appears in the baseline; `--write-baseline <file>` records
//! the current findings so a legacy tree can adopt the analyzer
//! incrementally while still failing on regressions.

use crate::findings::Finding;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Schema version of the baseline file.
pub const BASELINE_VERSION: u32 = 1;

/// The on-disk baseline format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Baseline {
    /// Format version, for forward evolution.
    pub version: u32,
    /// Accepted findings, one entry each.
    pub entries: Vec<BaselineEntry>,
}

/// One accepted finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineEntry {
    /// Rule id of the accepted finding.
    pub rule: String,
    /// File the finding is in.
    pub file: String,
    /// The finding's message (part of the identity).
    pub message: String,
}

impl Baseline {
    /// Builds a baseline accepting exactly `findings`.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        Baseline {
            version: BASELINE_VERSION,
            entries: findings
                .iter()
                .map(|f| BaselineEntry {
                    rule: f.rule.clone(),
                    file: f.file.clone(),
                    message: f.message.clone(),
                })
                .collect(),
        }
    }

    /// Parses a baseline file.
    pub fn parse(json: &str) -> Result<Baseline, String> {
        let b: Baseline = serde_json::from_str(json).map_err(|e| format!("bad baseline: {e}"))?;
        if b.version != BASELINE_VERSION {
            return Err(format!(
                "baseline version {} unsupported (expected {BASELINE_VERSION})",
                b.version
            ));
        }
        Ok(b)
    }

    /// Serializes the baseline.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// Splits findings into (new, baselined). Each baseline entry absorbs
    /// any number of identical findings — a fingerprint is an identity,
    /// not a budget.
    pub fn partition(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>) {
        let accepted: HashSet<String> = self
            .entries
            .iter()
            .map(|e| format!("{}\u{1f}{}\u{1f}{}", e.rule, e.file, e.message))
            .collect();
        findings
            .into_iter()
            .partition(|f| !accepted.contains(&f.fingerprint()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules;

    #[test]
    fn round_trip_and_partition() {
        let old = Finding::new(&rules::PTG_CYCLE, "g.ptg", Some(3), "cycle");
        let new = Finding::new(&rules::PTG_ORPHAN, "g.ptg", Some(5), "orphan");
        let b = Baseline::from_findings(std::slice::from_ref(&old));
        let b = Baseline::parse(&b.to_json()).expect("round trip");
        let (fresh, known) = b.partition(vec![old.clone(), new.clone()]);
        assert_eq!(fresh, vec![new]);
        assert_eq!(known, vec![old]);
    }

    #[test]
    fn line_drift_does_not_resurrect_baselined_findings() {
        let at3 = Finding::new(&rules::PTG_CYCLE, "g.ptg", Some(3), "cycle");
        let at9 = Finding::new(&rules::PTG_CYCLE, "g.ptg", Some(9), "cycle");
        let b = Baseline::from_findings(&[at3]);
        let (fresh, known) = b.partition(vec![at9]);
        assert!(fresh.is_empty());
        assert_eq!(known.len(), 1);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        assert!(Baseline::parse(r#"{"version": 99, "entries": []}"#).is_err());
        assert!(Baseline::parse("not json").is_err());
    }
}
