//! Pass 2b: fixpoint propagations over the workspace call graph.
//!
//! Three dataflow rules, each with a call-chain witness, plus the
//! suppression audit:
//!
//! * **`src-panic-reach`** — no `panic!`/`.unwrap()`/`.expect(…)` may be
//!   reachable through calls from a user-input parse path (`from_str` /
//!   `parse*` / `read_*` / `load_*`) or from a `// lint:panic-root` fn
//!   (the EvalPool worker rings, which must fail through typed errors).
//!   A parse path's *own* body is covered by `src-unwrap-parse` and is not
//!   re-reported here; a panic root's own body counts.
//! * **`src-determinism-taint`** — no nondeterminism source (clock reads,
//!   env reads, `thread::current()`, `HashMap`/`HashSet` iteration) may be
//!   reachable through calls from a function that produces a deterministic
//!   artifact (RunReport counters, ConvergenceTrace, stream checkpoints,
//!   online event traces). Escape hatches: `*_seconds` reporting lines and
//!   `// lint:allow(src-timing)` at the source remove the site in pass 1.
//! * **`src-hot-path-alloc-transitive`** — extends `src-hot-path-alloc`
//!   through the call graph: a `// lint:hot-path` fn must not reach an
//!   allocating callee within [`ALLOC_DEPTH_CAP`] hops. The verdict is a
//!   memoized per-node distance-to-allocation (one reverse multi-source
//!   BFS), so the pass is linear in the graph.
//! * **`lint-stale-allow`** — every `lint:allow` pragma must have
//!   suppressed at least one finding (or removed at least one fact) in
//!   this run, and must name a registered rule; stale escapes rot.
//!
//! Anchoring: dataflow findings anchor at the root/sink fn's declaration
//! line and can be suppressed there with `// lint:allow(rule-id)`; the
//! message renders the chain without line numbers (stable fingerprints),
//! the structured `witness` carries `fn @ file:line` hops.

use crate::callgraph::CallGraph;
use crate::findings::Finding;
use crate::rules;
use std::collections::BTreeSet;

/// Depth cap for the transitive hot-path allocation propagation.
pub const ALLOC_DEPTH_CAP: usize = 4;

/// Result of the dataflow pass: findings plus the pragma-usage ledger
/// entries it adds (`(file, line, rule id)`).
#[derive(Debug, Default)]
pub struct DataflowResult {
    /// Findings from the propagations (unsorted; the driver sorts).
    pub findings: Vec<Finding>,
    /// Allow pragmas consumed by dataflow anchors.
    pub used_allows: BTreeSet<(String, usize, String)>,
}

/// Pragma line allowing `id` at `line`/`line-1` in `file`, if any.
fn allow_line(graph: &CallGraph, file: &str, line: usize, id: &str) -> Option<usize> {
    let table = graph.allows.get(file)?;
    [line, line.saturating_sub(1)]
        .into_iter()
        .find(|l| table.get(l).is_some_and(|ids| ids.contains(id)))
}

/// Emits `finding` unless an allow pragma covers `anchor_line`; either way
/// the ledger records pragma use.
fn emit_or_suppress(
    res: &mut DataflowResult,
    graph: &CallGraph,
    rule: &'static rules::Rule,
    file: &str,
    anchor_line: usize,
    finding: Finding,
) {
    if let Some(l) = allow_line(graph, file, anchor_line, rule.id) {
        res.used_allows
            .insert((file.to_string(), l, rule.id.to_string()));
    } else {
        res.findings.push(finding);
    }
}

/// BFS from `start` over callees; returns `parent` pointers for witness
/// reconstruction (`usize::MAX` = unvisited, `start` is its own parent).
fn bfs_parents(graph: &CallGraph, start: usize) -> Vec<usize> {
    let mut parent = vec![usize::MAX; graph.nodes.len()];
    parent[start] = start;
    let mut queue = std::collections::VecDeque::from([start]);
    while let Some(n) = queue.pop_front() {
        for &c in &graph.callees[n] {
            if parent[c] == usize::MAX {
                parent[c] = n;
                queue.push_back(c);
            }
        }
    }
    parent
}

/// Path `start → … → target` as node indices, following `parent`.
fn path_to(parent: &[usize], start: usize, target: usize) -> Vec<usize> {
    let mut path = vec![target];
    let mut cur = target;
    while cur != start {
        cur = parent[cur];
        path.push(cur);
    }
    path.reverse();
    path
}

/// Chain text without line numbers (goes into the message → fingerprint
/// stays stable under unrelated edits) plus the structured witness.
fn witness_of(graph: &CallGraph, path: &[usize], site: &str) -> (String, Vec<String>) {
    let names: Vec<String> = path
        .iter()
        .map(|&n| graph.nodes[n].qualified_name())
        .collect();
    let mut witness: Vec<String> = path
        .iter()
        .map(|&n| graph.nodes[n].witness_entry())
        .collect();
    witness.push(site.to_string());
    (format!("{} → {site}", names.join(" → ")), witness)
}

/// Runs every propagation and the suppression audit is left to the caller
/// (it needs the pass-1 ledger too). Returns findings + ledger additions.
pub fn run(graph: &CallGraph) -> DataflowResult {
    let mut res = DataflowResult::default();
    panic_reachability(graph, &mut res);
    determinism_taint(graph, &mut res);
    transitive_hot_alloc(graph, &mut res);
    res
}

fn panic_reachability(graph: &CallGraph, res: &mut DataflowResult) {
    for (root, node) in graph.nodes.iter().enumerate() {
        let f = &node.fact;
        if !(f.parse_path || f.panic_root) {
            continue;
        }
        let parent = bfs_parents(graph, root);
        for (target, tnode) in graph.nodes.iter().enumerate() {
            if parent[target] == usize::MAX || tnode.fact.panic_sites.is_empty() {
                continue;
            }
            // A parse path's own body is src-unwrap-parse territory; a
            // panic root's own body does count (typed errors only).
            if target == root && f.parse_path {
                continue;
            }
            let site = &tnode.fact.panic_sites[0];
            let path = path_to(&parent, root, target);
            let (chain, witness) = witness_of(graph, &path, &site.what);
            let kind = if f.parse_path {
                "parse path"
            } else {
                "panic-root"
            };
            let msg = format!(
                "{} reachable from {kind} fn {}: {chain}",
                site.what,
                node.qualified_name()
            );
            let finding = Finding::new(&rules::SRC_PANIC_REACH, &node.file, Some(f.line), msg)
                .with_witness(witness);
            emit_or_suppress(
                res,
                graph,
                &rules::SRC_PANIC_REACH,
                &node.file,
                f.line,
                finding,
            );
        }
    }
}

fn determinism_taint(graph: &CallGraph, res: &mut DataflowResult) {
    for (sink, node) in graph.nodes.iter().enumerate() {
        if !node.fact.sink {
            continue;
        }
        let parent = bfs_parents(graph, sink);
        for (target, tnode) in graph.nodes.iter().enumerate() {
            if parent[target] == usize::MAX || tnode.fact.nondet_sites.is_empty() {
                continue;
            }
            // Don't re-report a sink reached *through* another sink: the
            // closer producer already carries the finding.
            if target != sink {
                let path = path_to(&parent, sink, target);
                if path[1..path.len() - 1]
                    .iter()
                    .any(|&n| graph.nodes[n].fact.sink)
                {
                    continue;
                }
            }
            let site = &tnode.fact.nondet_sites[0];
            let path = path_to(&parent, sink, target);
            let (chain, witness) = witness_of(graph, &path, &site.what);
            let msg = format!(
                "nondeterminism flows into artifact producer fn {}: {chain}",
                node.qualified_name()
            );
            let finding = Finding::new(
                &rules::SRC_DETERMINISM_TAINT,
                &node.file,
                Some(node.fact.line),
                msg,
            )
            .with_witness(witness);
            emit_or_suppress(
                res,
                graph,
                &rules::SRC_DETERMINISM_TAINT,
                &node.file,
                node.fact.line,
                finding,
            );
        }
    }
}

fn transitive_hot_alloc(graph: &CallGraph, res: &mut DataflowResult) {
    // Memoized verdict: one reverse multi-source BFS from every allocating
    // node gives dist-to-nearest-allocation for the whole graph.
    let n = graph.nodes.len();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if !node.fact.alloc_sites.is_empty() {
            dist[i] = 0;
            queue.push_back(i);
        }
    }
    while let Some(i) = queue.pop_front() {
        for &caller in &graph.callers[i] {
            if dist[caller] == usize::MAX {
                dist[caller] = dist[i] + 1;
                queue.push_back(caller);
            }
        }
    }

    for (hot, node) in graph.nodes.iter().enumerate() {
        if !node.fact.hot_path {
            continue;
        }
        // dist 0 = own body: src-hot-path-alloc already fired there.
        if dist[hot] == 0 || dist[hot] == usize::MAX || dist[hot] > ALLOC_DEPTH_CAP {
            continue;
        }
        // Reconstruct the chain: walk to any callee one step closer
        // (smallest index for determinism).
        let mut path = vec![hot];
        let mut cur = hot;
        while dist[cur] > 0 {
            let next = graph.callees[cur]
                .iter()
                .copied()
                .filter(|&c| dist[c] == dist[cur] - 1)
                .min()
                .expect("BFS distance implies such a callee");
            path.push(next);
            cur = next;
        }
        let alloc_node = &graph.nodes[cur];
        let site = &alloc_node.fact.alloc_sites[0];
        // Anchor at the first call site on the chain inside the hot fn.
        let anchor = node
            .fact
            .calls
            .iter()
            .find(|c| c.name == graph.nodes[path[1]].fact.name)
            .map_or(node.fact.line, |c| c.line);
        let (chain, witness) = witness_of(graph, &path, &format!("`{}`", site.what));
        let msg = format!(
            "hot-path fn {} reaches an allocating callee in {} hop{}: {chain}",
            node.qualified_name(),
            dist[hot],
            if dist[hot] == 1 { "" } else { "s" },
        );
        let finding = Finding::new(
            &rules::SRC_HOT_PATH_ALLOC_TRANSITIVE,
            &node.file,
            Some(anchor),
            msg,
        )
        .with_witness(witness);
        emit_or_suppress(
            res,
            graph,
            &rules::SRC_HOT_PATH_ALLOC_TRANSITIVE,
            &node.file,
            anchor,
            finding,
        );
    }
}

/// The suppression audit: every allow pragma must have earned its keep in
/// this run (`used` is the union of the pass-1 and pass-2 ledgers), and
/// must name a registered rule.
pub fn stale_allow_audit(
    graph: &CallGraph,
    used: &BTreeSet<(String, usize, String)>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (file, table) in &graph.allows {
        for (&line, ids) in table {
            for id in ids {
                if id == rules::LINT_STALE_ALLOW.id {
                    // Meta-suppression handled below; never audit itself.
                    continue;
                }
                let key = (file.clone(), line, id.clone());
                let unknown = rules::rule_by_id(id).is_none();
                if !unknown && used.contains(&key) {
                    continue;
                }
                // The audit finding itself honours lint:allow(lint-stale-allow).
                if allow_line(graph, file, line, rules::LINT_STALE_ALLOW.id).is_some() {
                    continue;
                }
                let msg = if unknown {
                    format!("lint:allow({id}) names an unknown rule")
                } else {
                    format!("lint:allow({id}) never fires here — stale suppression")
                };
                out.push(Finding::new(
                    &rules::LINT_STALE_ALLOW,
                    file,
                    Some(line),
                    msg,
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan_source;
    use crate::source::FileFacts;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let facts: Vec<FileFacts> = files
            .iter()
            .map(|(f, s)| scan_source(f, s, false).facts)
            .collect();
        CallGraph::build(&facts)
    }

    fn rules_of(res: &DataflowResult) -> Vec<&str> {
        res.findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn panic_two_calls_below_a_parse_path_is_reached() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            r#"
fn parse_spec(s: &str) -> u32 {
    helper(s)
}
fn helper(s: &str) -> u32 {
    deep(s)
}
fn deep(s: &str) -> u32 {
    s.len() as u32; panic!("boom")
}
"#,
        )]);
        let res = run(&g);
        assert_eq!(rules_of(&res), vec!["src-panic-reach"]);
        let f = &res.findings[0];
        assert_eq!(f.line, Some(2));
        assert!(f.message.contains("parse_spec → helper → deep → panic!"));
        assert_eq!(f.witness.len(), 4);
        assert!(f.witness[0].starts_with("parse_spec @ crates/a/src/lib.rs:2"));
        assert_eq!(f.witness[3], "panic!");
    }

    #[test]
    fn parse_path_own_body_is_not_rereported() {
        // Own-body unwrap is src-unwrap-parse territory.
        let g = graph(&[(
            "x.rs",
            "fn parse_n(s: &str) -> u32 { s.parse().unwrap() }\n",
        )]);
        assert!(run(&g).findings.is_empty());
    }

    #[test]
    fn panic_root_own_body_counts_and_allow_suppresses() {
        let src = r#"
// lint:panic-root
fn worker_loop() {
    recv().unwrap();
}
"#;
        let g = graph(&[("x.rs", src)]);
        let res = run(&g);
        assert_eq!(rules_of(&res), vec!["src-panic-reach"]);
        assert!(res.findings[0]
            .message
            .contains("panic-root fn worker_loop"));

        let suppressed = r#"
// lint:panic-root
// lint:allow(src-panic-reach) -- ring catches the unwind
fn worker_loop() {
    recv().unwrap();
}
"#;
        let g = graph(&[("x.rs", suppressed)]);
        let res = run(&g);
        assert!(res.findings.is_empty());
        assert!(res
            .used_allows
            .contains(&("x.rs".to_string(), 3, "src-panic-reach".to_string())));
    }

    #[test]
    fn taint_reaches_sink_two_calls_up() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            r#"
fn emit_trace(gens: usize) -> ConvergenceTrace {
    stamp(gens)
}
fn stamp(gens: usize) -> u64 {
    jitter(gens)
}
fn jitter(gens: usize) -> u64 {
    let t = Instant::now();
    gens as u64
}
"#,
        )]);
        let res = run(&g);
        assert_eq!(rules_of(&res), vec!["src-determinism-taint"]);
        let f = &res.findings[0];
        assert!(f
            .message
            .contains("emit_trace → stamp → jitter → Instant::now()"));
        assert_eq!(f.line, Some(2));
    }

    #[test]
    fn allowed_clock_source_does_not_taint() {
        let g = graph(&[(
            "x.rs",
            r#"
fn emit_trace() -> ConvergenceTrace {
    let wall_seconds = Instant::now();
    build()
}
"#,
        )]);
        assert!(run(&g).findings.is_empty());
    }

    #[test]
    fn transitive_alloc_within_depth_cap_fires_with_chain() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            r#"
// lint:hot-path
fn hot_kernel(xs: &mut [u32]) {
    step(xs);
}
fn step(xs: &mut [u32]) {
    scratch(xs);
}
fn scratch(xs: &mut [u32]) {
    let v = vec![0u32; xs.len()];
}
"#,
        )]);
        let res = run(&g);
        assert_eq!(rules_of(&res), vec!["src-hot-path-alloc-transitive"]);
        let f = &res.findings[0];
        assert!(f.message.contains("hot_kernel → step → scratch → `vec`"));
        assert_eq!(f.line, Some(4)); // the step(xs) call site
    }

    #[test]
    fn own_body_alloc_is_left_to_the_single_site_rule() {
        let g = graph(&[("x.rs", "// lint:hot-path\nfn hot() { let v = vec![1]; }\n")]);
        assert!(run(&g).findings.is_empty()); // src-hot-path-alloc fired in pass 1
    }

    #[test]
    fn alloc_beyond_depth_cap_is_silent() {
        let mut src = String::from("// lint:hot-path\nfn hot() { c1(); }\n");
        for i in 1..=5 {
            src.push_str(&format!("fn c{i}() {{ c{}(); }}\n", i + 1));
        }
        src.push_str("fn c6() { let v = vec![1]; }\n");
        let g = graph(&[("x.rs", src.as_str())]);
        assert!(run(&g).findings.is_empty()); // 6 hops > cap of 4
    }

    #[test]
    fn stale_and_unknown_allows_are_audited() {
        let g = graph(&[(
            "x.rs",
            r#"
fn quiet() {
    let x = 1; // lint:allow(src-timing) -- nothing fires here
    let y = 2; // lint:allow(no-such-rule)
}
"#,
        )]);
        let used = BTreeSet::new();
        let audit = stale_allow_audit(&g, &used);
        assert_eq!(audit.len(), 2);
        assert!(audit[0].message.contains("never fires here"));
        assert!(audit[1].message.contains("unknown rule"));

        // A used pragma is not stale.
        let mut used = BTreeSet::new();
        used.insert(("x.rs".to_string(), 3, "src-timing".to_string()));
        assert_eq!(stale_allow_audit(&g, &used).len(), 1);
    }

    #[test]
    fn recursion_terminates() {
        let g = graph(&[(
            "x.rs",
            "fn parse_loop(s: &str) { parse_loop(s); other(); }\nfn other() { panic!(\"x\"); }\n",
        )]);
        let res = run(&g);
        assert_eq!(rules_of(&res), vec!["src-panic-reach"]);
    }
}
