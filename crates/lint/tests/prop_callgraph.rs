//! Properties of the workspace call-graph builder: **determinism** (the
//! same file set produces a byte-identical graph dump) and **totality**
//! (every extracted call site either resolves to at least one workspace
//! edge or is recorded as an external call — nothing is silently dropped).
//!
//! Sources are synthesized from a small fn-name pool so calls hit every
//! resolution tier: same-file, same-crate, workspace-wide, and unresolved.

use lint::callgraph::CallGraph;
use lint::source::{scan_source, FileFacts};
use proptest::prelude::*;

/// Names the generator draws from. `mystery_fn` is never defined, so some
/// calls must fall through to the external list.
const NAMES: &[&str] = &[
    "alpha",
    "beta",
    "gamma",
    "delta",
    "epsilon",
    "zeta",
    "mystery_fn",
];

/// One synthetic fn: which name it defines and which names it calls.
#[derive(Debug, Clone)]
struct GenFn {
    name: usize,
    calls: Vec<usize>,
    hot: bool,
    panics: bool,
}

fn gen_fn() -> impl Strategy<Value = GenFn> {
    (
        0usize..6, // defined names only (mystery_fn stays undefined)
        proptest::collection::vec(0usize..NAMES.len(), 0..4),
        0u8..2,
        0u8..2,
    )
        .prop_map(|(name, calls, hot, panics)| GenFn {
            name,
            calls,
            hot: hot == 1,
            panics: panics == 1,
        })
}

/// Renders one file of synthetic fns. Duplicate definitions of a name in
/// one file are fine — real modules shadow via impl blocks too, and the
/// builder must stay deterministic regardless.
fn render(fns: &[GenFn]) -> String {
    let mut src = String::new();
    for f in fns {
        if f.hot {
            src.push_str("// lint:hot-path\n");
        }
        src.push_str(&format!("fn {}() {{\n", NAMES[f.name]));
        for &c in &f.calls {
            src.push_str(&format!("    {}();\n", NAMES[c]));
        }
        if f.panics {
            src.push_str("    panic!(\"gen\");\n");
        }
        src.push_str("}\n");
    }
    src
}

fn facts_of(files: &[(String, String)]) -> Vec<FileFacts> {
    files
        .iter()
        .map(|(path, src)| scan_source(path, src, false).facts)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn builder_is_deterministic_and_total(
        file_fns in proptest::collection::vec(
            proptest::collection::vec(gen_fn(), 1..5),
            1..4,
        ),
    ) {
        let files: Vec<(String, String)> = file_fns
            .iter()
            .enumerate()
            .map(|(i, fns)| {
                // Spread files over two crates to exercise the same-crate
                // resolution tier.
                let krate = if i % 2 == 0 { "a" } else { "b" };
                (format!("crates/{krate}/src/m{i}.rs"), render(fns))
            })
            .collect();

        // Determinism: same file set → byte-identical dump.
        let g1 = CallGraph::build(&facts_of(&files));
        let g2 = CallGraph::build(&facts_of(&files));
        prop_assert_eq!(g1.dump(), g2.dump());

        // Totality: every extracted call site is accounted for — it either
        // produced at least one edge or exactly one external record.
        let g = g1;
        for (from, node) in g.nodes.iter().enumerate() {
            for call in &node.fact.calls {
                let edges = g
                    .edges
                    .iter()
                    .filter(|e| e.from == from && e.line == call.line)
                    .count();
                let externals = g
                    .externals
                    .iter()
                    .filter(|x| x.from == from && x.line == call.line && x.name == call.name)
                    .count();
                prop_assert!(
                    edges > 0 || externals == 1,
                    "call {}@{}:{} resolved to neither edge nor external",
                    call.name,
                    node.file,
                    call.line
                );
            }
        }

        // The undefined name can only ever be external.
        prop_assert!(g.edges.iter().all(|e| {
            g.nodes[e.to].fact.name != "mystery_fn"
        }));
    }
}
