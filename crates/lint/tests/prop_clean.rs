//! Property: the list scheduler's output on random DAGGEN PTGs — under
//! both execution-time models — packages into a lint-clean artifact at any
//! severity.
//!
//! Allocations are sanitized to the *prefix sweet spot*: for a raw draw
//! `r`, the task gets the smallest argmin of `t(v, ·)` over `1..=r`. That
//! allocation is strictly faster than every smaller width (no
//! `alloc-nonmonotonic-waste`) and never exceeds the global sweet spot (no
//! `alloc-past-sweet-spot`), so a correct mapper must produce zero
//! findings.

use exec_model::{PaperModel, TimeMatrix};
use lint::lint_artifact;
use lint::ScheduleArtifact;
use platform::Cluster;
use proptest::prelude::*;
use ptg::TaskId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sched::{Allocation, ListScheduler, Mapper};
use workloads::{CostConfig, DaggenParams};

/// Smallest processor count minimizing `t(v, ·)` over `1..=cap`.
fn prefix_sweet_spot(m: &TimeMatrix, v: TaskId, cap: u32) -> u32 {
    let mut best = 1;
    for p in 2..=cap {
        if m.time(v, p) < m.time(v, best) {
            best = p;
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn list_scheduler_output_is_lint_clean(
        seed in 0u64..1_000_000,
        n in 2usize..30,
        width in 0.2f64..=0.8,
        density in 0.2f64..=0.8,
        jump in 0usize..3,
        processors in 2u32..16,
        model_choice in 0u32..2,
    ) {
        let params = DaggenParams {
            n,
            width,
            regularity: 0.5,
            density,
            jump,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = workloads::daggen::random_ptg(&params, &CostConfig::default(), &mut rng);

        let model = if model_choice == 1 { PaperModel::Model2 } else { PaperModel::Model1 };
        let cluster = Cluster::new("prop", processors, 4.0);
        let m = TimeMatrix::compute(
            &g,
            &model.instantiate(),
            cluster.speed_flops(),
            processors,
        );

        // Raw draws derived from the seeded rng, then sanitized per task.
        let alloc: Vec<u32> = g
            .task_ids()
            .enumerate()
            .map(|(i, v)| {
                let raw = 1 + ((seed >> (i % 32)) as u32 + i as u32) % processors;
                prefix_sweet_spot(&m, v, raw)
            })
            .collect();
        let alloc = Allocation::from_vec(alloc);
        let schedule = ListScheduler.map(&g, &m, &alloc);

        let artifact = ScheduleArtifact::new(cluster, model, &g, &alloc, schedule);
        let findings = lint_artifact("prop.schedule.json", &artifact);
        prop_assert!(findings.is_empty(), "{findings:?}");

        // And through the JSON round trip the driver takes.
        let json = serde_json::to_string(&artifact).expect("artifacts serialize");
        let findings = lint::lint_artifact_json("prop.schedule.json", &json);
        prop_assert!(findings.is_empty(), "{findings:?}");
    }
}
