//! End-to-end tests of the `emts-lint` binary: exit codes, report formats
//! and the baseline workflow.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_emts-lint")
}

fn data() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../data")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("emts-lint runs")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("emts-lint-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn clean_input_exits_zero() {
    let good = data().join("fft16.ptg");
    let out = run(&[good.to_str().expect("utf8 path")]);
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 errors, 0 warnings"), "{text}");
}

#[test]
fn corpus_fails_under_deny_warning_and_passes_under_deny_none() {
    let bad = data().join("bad");
    let bad = bad.to_str().expect("utf8 path");
    let out = run(&[bad]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let out = run(&["--deny", "none", bad]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn severity_threshold_separates_warnings_from_errors() {
    let orphan = data().join("bad/orphan.ptg");
    let orphan = orphan.to_str().expect("utf8 path");
    // ptg-orphan is a warning: it fails --deny warning but not --deny error.
    assert_eq!(run(&[orphan]).status.code(), Some(1));
    assert_eq!(run(&["--deny", "error", orphan]).status.code(), Some(0));
}

#[test]
fn json_report_is_machine_readable() {
    let cycle = data().join("bad/cycle.ptg");
    let out = run(&[
        "--format",
        "json",
        "--deny",
        "none",
        cycle.to_str().expect("utf8 path"),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let json = String::from_utf8_lossy(&out.stdout);
    for needle in ["\"version\": 1", "\"rule\": \"ptg-cycle\"", "\"errors\": 1"] {
        assert!(json.contains(needle), "{needle} missing in {json}");
    }
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(run(&["--deny", "loud", "x.ptg"]).status.code(), Some(2));
    assert_eq!(run(&[]).status.code(), Some(2));
    assert_eq!(run(&["definitely/not/here.ptg"]).status.code(), Some(2));
}

#[test]
fn rules_listing_covers_the_catalogue() {
    let out = run(&["--rules"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for rule in lint::CATALOGUE {
        assert!(text.contains(rule.id), "{} missing from --rules", rule.id);
    }
}

#[test]
fn baseline_absorbs_known_findings_and_gates_new_ones() {
    let dir = scratch("baseline");
    let baseline = dir.join("lint-baseline.json");
    let baseline = baseline.to_str().expect("utf8 path");
    let orphan = data().join("bad/orphan.ptg");
    let orphan = orphan.to_str().expect("utf8 path");
    let cycle = data().join("bad/cycle.ptg");
    let cycle = cycle.to_str().expect("utf8 path");

    // Adopt the current findings, then the same input passes.
    let out = run(&["--write-baseline", baseline, "--deny", "none", orphan]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let out = run(&["--baseline", baseline, orphan]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("(1 baselined)"), "{text}");

    // A finding absent from the baseline still gates.
    let out = run(&["--baseline", baseline, orphan, cycle]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");

    std::fs::remove_dir_all(dir).ok();
}
