//! Topological ordering (Kahn's algorithm) and cycle detection.

use crate::error::PtgError;
use crate::graph::Ptg;
use crate::node::TaskId;
use std::collections::VecDeque;

/// Computes a topological order over raw adjacency lists.
///
/// Used by the builder before a [`Ptg`] exists. Returns
/// [`PtgError::Cycle`] naming one task on a cycle if the graph is cyclic.
/// The produced order is deterministic: among simultaneously-ready tasks the
/// one with the smallest id comes first.
pub(crate) fn topological_order(
    succ: &[Vec<TaskId>],
    pred: &[Vec<TaskId>],
) -> Result<Vec<TaskId>, PtgError> {
    let n = succ.len();
    let mut in_deg: Vec<usize> = pred.iter().map(Vec::len).collect();
    // A binary heap would give strictly sorted ready sets; a FIFO over
    // ids pushed in increasing order is deterministic too and O(V + E).
    let mut queue: VecDeque<TaskId> = (0..n)
        .filter(|&i| in_deg[i] == 0)
        .map(TaskId::from_index)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &w in &succ[v.index()] {
            in_deg[w.index()] -= 1;
            if in_deg[w.index()] == 0 {
                queue.push_back(w);
            }
        }
    }
    if order.len() != n {
        // Some task kept a nonzero in-degree: it lies on (or behind) a cycle.
        let culprit = (0..n)
            .find(|&i| in_deg[i] > 0)
            .map(TaskId::from_index)
            .expect("cycle implies a task with nonzero in-degree");
        return Err(PtgError::Cycle(culprit));
    }
    Ok(order)
}

/// Verifies that `order` is a permutation of all tasks in which every edge
/// goes forward. Useful for property tests and debugging.
pub fn is_valid_topological_order(g: &Ptg, order: &[TaskId]) -> bool {
    if order.len() != g.task_count() {
        return false;
    }
    let mut pos = vec![usize::MAX; g.task_count()];
    for (i, &v) in order.iter().enumerate() {
        if v.index() >= g.task_count() || pos[v.index()] != usize::MAX {
            return false; // out of range or repeated
        }
        pos[v.index()] = i;
    }
    g.edges().all(|(a, b)| pos[a.index()] < pos[b.index()])
}

/// Returns the tasks in reverse topological order (sinks first).
pub fn reverse_topo_order(g: &Ptg) -> Vec<TaskId> {
    let mut order = g.topo_order().to_vec();
    order.reverse();
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::PtgBuilder;

    fn chain(n: usize) -> Ptg {
        let mut b = PtgBuilder::new();
        let ids: Vec<_> = (0..n)
            .map(|i| b.add_task(format!("t{i}"), 1.0, 0.0))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn chain_orders_sequentially() {
        let g = chain(6);
        let order = g.topo_order();
        assert!(is_valid_topological_order(&g, order));
        assert_eq!(order.first().copied(), Some(TaskId(0)));
        assert_eq!(order.last().copied(), Some(TaskId(5)));
    }

    #[test]
    fn reverse_order_starts_at_sink() {
        let g = chain(4);
        let rev = reverse_topo_order(&g);
        assert_eq!(rev.first().copied(), Some(TaskId(3)));
        assert_eq!(rev.last().copied(), Some(TaskId(0)));
    }

    #[test]
    fn validator_rejects_wrong_length() {
        let g = chain(3);
        assert!(!is_valid_topological_order(&g, &[TaskId(0)]));
    }

    #[test]
    fn validator_rejects_repeated_task() {
        let g = chain(3);
        assert!(!is_valid_topological_order(
            &g,
            &[TaskId(0), TaskId(0), TaskId(2)]
        ));
    }

    #[test]
    fn validator_rejects_backward_edge() {
        let g = chain(3);
        assert!(!is_valid_topological_order(
            &g,
            &[TaskId(1), TaskId(0), TaskId(2)]
        ));
    }

    #[test]
    fn validator_accepts_any_valid_interleaving() {
        // fork: 0 -> {1,2,3}
        let mut b = PtgBuilder::new();
        let r = b.add_task("r", 1.0, 0.0);
        let kids: Vec<_> = (0..3)
            .map(|i| b.add_task(format!("k{i}"), 1.0, 0.0))
            .collect();
        for &k in &kids {
            b.add_edge(r, k).unwrap();
        }
        let g = b.build().unwrap();
        assert!(is_valid_topological_order(
            &g,
            &[r, kids[2], kids[0], kids[1]]
        ));
    }
}
