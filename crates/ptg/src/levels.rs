//! Precedence levels: the depth of each task measured from the sources.
//!
//! The paper's Δ-critical starting heuristic and the MCPA allocation bound
//! both reason per *precedence level* — "the depth of the nodes from the
//! source". A task's level is the length (in edges) of the longest path from
//! any source to it; all sources sit on level 0.

use crate::graph::Ptg;
use crate::node::TaskId;

/// Per-task precedence level, plus level grouping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrecedenceLevels {
    /// `level[v]` is the depth of task `v` (sources are 0).
    level: Vec<usize>,
    /// `groups[l]` lists the tasks on level `l` in increasing id order.
    groups: Vec<Vec<TaskId>>,
}

impl PrecedenceLevels {
    /// Computes precedence levels with one topological sweep, O(V + E).
    pub fn compute(g: &Ptg) -> Self {
        let mut level = vec![0usize; g.task_count()];
        for &v in g.topo_order() {
            for &p in g.predecessors(v) {
                level[v.index()] = level[v.index()].max(level[p.index()] + 1);
            }
        }
        let depth = level.iter().copied().max().unwrap_or(0);
        let mut groups = vec![Vec::new(); depth + 1];
        for v in g.task_ids() {
            groups[level[v.index()]].push(v);
        }
        PrecedenceLevels { level, groups }
    }

    /// The level of task `v`.
    #[inline]
    pub fn level_of(&self, v: TaskId) -> usize {
        self.level[v.index()]
    }

    /// Number of levels (`max level + 1`).
    #[inline]
    pub fn level_count(&self) -> usize {
        self.groups.len()
    }

    /// Tasks on level `l`.
    #[inline]
    pub fn tasks_on_level(&self, l: usize) -> &[TaskId] {
        &self.groups[l]
    }

    /// Iterator over `(level, tasks)` pairs, shallowest first.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[TaskId])> {
        self.groups
            .iter()
            .enumerate()
            .map(|(l, ts)| (l, ts.as_slice()))
    }

    /// The maximum number of tasks that share one level (the *width* of a
    /// layered view of the PTG).
    pub fn max_width(&self) -> usize {
        self.groups.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Raw per-task levels, indexed by [`TaskId::index`].
    pub fn as_slice(&self) -> &[usize] {
        &self.level
    }
}

/// True if every edge connects adjacent precedence levels, i.e. the PTG is
/// *layered* in the paper's sense (`jump = 0`).
pub fn is_layered(g: &Ptg) -> bool {
    let lv = PrecedenceLevels::compute(g);
    g.edges().all(|(a, b)| lv.level_of(b) == lv.level_of(a) + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::PtgBuilder;

    /// 0 -> 1 -> 3, 0 -> 2 -> 3, 0 -> 3 (jump edge)
    fn diamond_with_jump() -> Ptg {
        let mut b = PtgBuilder::new();
        for i in 0..4 {
            b.add_task(format!("t{i}"), 1.0, 0.0);
        }
        b.add_edge(TaskId(0), TaskId(1)).unwrap();
        b.add_edge(TaskId(0), TaskId(2)).unwrap();
        b.add_edge(TaskId(1), TaskId(3)).unwrap();
        b.add_edge(TaskId(2), TaskId(3)).unwrap();
        b.add_edge(TaskId(0), TaskId(3)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn levels_are_longest_paths_from_sources() {
        let g = diamond_with_jump();
        let lv = PrecedenceLevels::compute(&g);
        assert_eq!(lv.level_of(TaskId(0)), 0);
        assert_eq!(lv.level_of(TaskId(1)), 1);
        assert_eq!(lv.level_of(TaskId(2)), 1);
        assert_eq!(lv.level_of(TaskId(3)), 2);
        assert_eq!(lv.level_count(), 3);
    }

    #[test]
    fn groups_partition_all_tasks() {
        let g = diamond_with_jump();
        let lv = PrecedenceLevels::compute(&g);
        let total: usize = (0..lv.level_count())
            .map(|l| lv.tasks_on_level(l).len())
            .sum();
        assert_eq!(total, g.task_count());
        assert_eq!(lv.tasks_on_level(1), &[TaskId(1), TaskId(2)]);
    }

    #[test]
    fn max_width_of_diamond_is_two() {
        let g = diamond_with_jump();
        assert_eq!(PrecedenceLevels::compute(&g).max_width(), 2);
    }

    #[test]
    fn jump_edges_break_layeredness() {
        let g = diamond_with_jump();
        assert!(!is_layered(&g));
    }

    #[test]
    fn pure_diamond_is_layered() {
        let mut b = PtgBuilder::new();
        for i in 0..4 {
            b.add_task(format!("t{i}"), 1.0, 0.0);
        }
        b.add_edge(TaskId(0), TaskId(1)).unwrap();
        b.add_edge(TaskId(0), TaskId(2)).unwrap();
        b.add_edge(TaskId(1), TaskId(3)).unwrap();
        b.add_edge(TaskId(2), TaskId(3)).unwrap();
        let g = b.build().unwrap();
        assert!(is_layered(&g));
    }

    #[test]
    fn independent_tasks_all_sit_on_level_zero() {
        let mut b = PtgBuilder::new();
        for i in 0..5 {
            b.add_task(format!("t{i}"), 1.0, 0.0);
        }
        let g = b.build().unwrap();
        let lv = PrecedenceLevels::compute(&g);
        assert_eq!(lv.level_count(), 1);
        assert_eq!(lv.max_width(), 5);
        assert!(is_layered(&g)); // vacuously: no edges
    }

    #[test]
    fn iter_yields_levels_in_order() {
        let g = diamond_with_jump();
        let lv = PrecedenceLevels::compute(&g);
        let collected: Vec<usize> = lv.iter().map(|(l, _)| l).collect();
        assert_eq!(collected, vec![0, 1, 2]);
    }
}
