//! Shape statistics and reachability queries over PTGs.

use crate::graph::Ptg;
use crate::levels::PrecedenceLevels;
use crate::node::TaskId;

/// Aggregate shape description of a PTG, handy for logging experiment
/// corpora and for sanity checks in tests.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeStats {
    /// Number of tasks `V`.
    pub tasks: usize,
    /// Number of edges `E`.
    pub edges: usize,
    /// Number of precedence levels.
    pub levels: usize,
    /// Maximum number of tasks on one precedence level.
    pub max_width: usize,
    /// Mean number of tasks per level.
    pub mean_width: f64,
    /// Number of source tasks.
    pub sources: usize,
    /// Number of sink tasks.
    pub sinks: usize,
    /// Longest edge span in levels (1 for layered PTGs).
    pub max_jump: usize,
    /// Total work in FLOP.
    pub total_flop: f64,
}

/// Computes [`ShapeStats`] in O(V + E).
pub fn shape_stats(g: &Ptg) -> ShapeStats {
    let lv = PrecedenceLevels::compute(g);
    let max_jump = g
        .edges()
        .map(|(a, b)| lv.level_of(b) - lv.level_of(a))
        .max()
        .unwrap_or(0);
    ShapeStats {
        tasks: g.task_count(),
        edges: g.edge_count(),
        levels: lv.level_count(),
        max_width: lv.max_width(),
        mean_width: g.task_count() as f64 / lv.level_count() as f64,
        sources: g.sources().len(),
        sinks: g.sinks().len(),
        max_jump,
        total_flop: g.total_flop(),
    }
}

/// Returns the set of tasks reachable from `start` (excluding `start`
/// itself), i.e. all its transitive descendants.
pub fn descendants(g: &Ptg, start: TaskId) -> Vec<TaskId> {
    let mut seen = vec![false; g.task_count()];
    let mut stack = vec![start];
    let mut out = Vec::new();
    while let Some(v) = stack.pop() {
        for &s in g.successors(v) {
            if !seen[s.index()] {
                seen[s.index()] = true;
                out.push(s);
                stack.push(s);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Returns all transitive ancestors of `start` (excluding `start`).
pub fn ancestors(g: &Ptg, start: TaskId) -> Vec<TaskId> {
    let mut seen = vec![false; g.task_count()];
    let mut stack = vec![start];
    let mut out = Vec::new();
    while let Some(v) = stack.pop() {
        for &p in g.predecessors(v) {
            if !seen[p.index()] {
                seen[p.index()] = true;
                out.push(p);
                stack.push(p);
            }
        }
    }
    out.sort_unstable();
    out
}

/// True if there is a directed path `from ⇝ to` (of length ≥ 1).
pub fn reaches(g: &Ptg, from: TaskId, to: TaskId) -> bool {
    if from == to {
        return false;
    }
    let mut seen = vec![false; g.task_count()];
    let mut stack = vec![from];
    while let Some(v) = stack.pop() {
        for &s in g.successors(v) {
            if s == to {
                return true;
            }
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    false
}

/// Two tasks are *independent* (may run concurrently) iff neither reaches
/// the other.
pub fn independent(g: &Ptg, a: TaskId, b: TaskId) -> bool {
    a != b && !reaches(g, a, b) && !reaches(g, b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::PtgBuilder;

    /// 0 -> 1 -> 3; 0 -> 2; 2 -> 3; plus isolated 4
    fn sample() -> Ptg {
        let mut b = PtgBuilder::new();
        for i in 0..5 {
            b.add_task(format!("t{i}"), 2.0, 0.0);
        }
        b.add_edge(TaskId(0), TaskId(1)).unwrap();
        b.add_edge(TaskId(0), TaskId(2)).unwrap();
        b.add_edge(TaskId(1), TaskId(3)).unwrap();
        b.add_edge(TaskId(2), TaskId(3)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn shape_stats_counts_everything() {
        let s = shape_stats(&sample());
        assert_eq!(s.tasks, 5);
        assert_eq!(s.edges, 4);
        assert_eq!(s.levels, 3);
        assert_eq!(s.sources, 2); // t0 and the isolated t4
        assert_eq!(s.sinks, 2); // t3 and t4
        assert_eq!(s.max_jump, 1);
        assert!((s.total_flop - 10.0).abs() < 1e-12);
    }

    #[test]
    fn shape_stats_width_details() {
        // level 0: {0, 4}, level 1: {1, 2}, level 2: {3}
        let s = shape_stats(&sample());
        assert_eq!(s.max_width, 2);
        assert!((s.mean_width - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn descendants_are_transitive() {
        let g = sample();
        assert_eq!(
            descendants(&g, TaskId(0)),
            vec![TaskId(1), TaskId(2), TaskId(3)]
        );
        assert!(descendants(&g, TaskId(3)).is_empty());
        assert!(descendants(&g, TaskId(4)).is_empty());
    }

    #[test]
    fn ancestors_are_transitive() {
        let g = sample();
        assert_eq!(
            ancestors(&g, TaskId(3)),
            vec![TaskId(0), TaskId(1), TaskId(2)]
        );
        assert!(ancestors(&g, TaskId(0)).is_empty());
    }

    #[test]
    fn reaches_follows_direction() {
        let g = sample();
        assert!(reaches(&g, TaskId(0), TaskId(3)));
        assert!(!reaches(&g, TaskId(3), TaskId(0)));
        assert!(!reaches(&g, TaskId(1), TaskId(2)));
        assert!(!reaches(&g, TaskId(0), TaskId(0)), "trivial path excluded");
    }

    #[test]
    fn independence_is_symmetric_and_irreflexive() {
        let g = sample();
        assert!(independent(&g, TaskId(1), TaskId(2)));
        assert!(independent(&g, TaskId(2), TaskId(1)));
        assert!(!independent(&g, TaskId(0), TaskId(3)));
        assert!(!independent(&g, TaskId(1), TaskId(1)));
        assert!(independent(&g, TaskId(4), TaskId(0)));
    }
}
