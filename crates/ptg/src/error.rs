//! Error type for PTG construction and queries.

use crate::node::TaskId;
use std::fmt;

/// Errors raised while building or querying a PTG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PtgError {
    /// An edge references a task id that was never added.
    UnknownTask(TaskId),
    /// A self-loop `v → v` was requested.
    SelfLoop(TaskId),
    /// The same edge was added twice.
    DuplicateEdge(TaskId, TaskId),
    /// The finished graph contains a cycle; the payload is one task on it.
    Cycle(TaskId),
    /// The graph has no tasks at all.
    Empty,
    /// A task payload failed validation (message from [`Task::validate`]).
    ///
    /// [`Task::validate`]: crate::node::Task::validate
    InvalidTask(String),
}

impl fmt::Display for PtgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PtgError::UnknownTask(id) => write!(f, "unknown task id {id}"),
            PtgError::SelfLoop(id) => write!(f, "self loop on task {id}"),
            PtgError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            PtgError::Cycle(id) => write!(f, "graph contains a cycle through {id}"),
            PtgError::Empty => write!(f, "graph contains no tasks"),
            PtgError::InvalidTask(msg) => write!(f, "invalid task: {msg}"),
        }
    }
}

impl std::error::Error for PtgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_the_offender() {
        assert!(PtgError::UnknownTask(TaskId(3)).to_string().contains("v3"));
        assert!(PtgError::SelfLoop(TaskId(1)).to_string().contains("v1"));
        assert!(PtgError::DuplicateEdge(TaskId(0), TaskId(2))
            .to_string()
            .contains("v0 -> v2"));
        assert!(PtgError::Cycle(TaskId(5)).to_string().contains("v5"));
        assert!(PtgError::Empty.to_string().contains("no tasks"));
    }
}
