//! Task identifiers and task payloads.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a task within its [`Ptg`](crate::Ptg).
///
/// Identifiers are dense: a graph with `n` tasks uses ids `0..n`. They are
/// only meaningful relative to the graph that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The id as a `usize` index into per-task arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `TaskId` from a `usize` index.
    ///
    /// # Panics
    /// Panics if `idx` does not fit in `u32` (graphs that large are far
    /// outside the problem sizes considered here).
    #[inline]
    pub fn from_index(idx: usize) -> Self {
        // lint:allow(src-panic-reach) -- documented panic; reaching it needs a graph with more than u32::MAX tasks
        TaskId(u32::try_from(idx).expect("task index exceeds u32::MAX"))
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A moldable parallel task.
///
/// The cost is expressed in floating-point operations, matching the paper's
/// simulator ("Every task of the PTG has associated costs, measured in number
/// of floating point operations"). `alpha` is the fraction of
/// non-parallelizable work used by Amdahl-style models, `0 ≤ alpha ≤ 1`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Human-readable label (used by DOT export and Gantt charts).
    pub name: String,
    /// Computational cost in FLOP.
    pub flop: f64,
    /// Non-parallelizable fraction of the task (Amdahl's `alpha`).
    pub alpha: f64,
}

impl Task {
    /// Creates a task, validating the cost and `alpha` ranges.
    pub fn new(name: impl Into<String>, flop: f64, alpha: f64) -> Self {
        let task = Task {
            name: name.into(),
            flop,
            alpha,
        };
        task.validate()
            .unwrap_or_else(|e| panic!("invalid task: {e}"));
        task
    }

    /// Checks the invariants `flop > 0` (finite) and `alpha ∈ [0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        if !self.flop.is_finite() || self.flop <= 0.0 {
            return Err(format!(
                "task {:?}: flop must be positive and finite, got {}",
                self.name, self.flop
            ));
        }
        if !self.alpha.is_finite() || !(0.0..=1.0).contains(&self.alpha) {
            return Err(format!(
                "task {:?}: alpha must lie in [0, 1], got {}",
                self.name, self.alpha
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_id_round_trips_through_index() {
        let id = TaskId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, TaskId(42));
    }

    #[test]
    fn task_id_displays_with_v_prefix() {
        assert_eq!(TaskId(7).to_string(), "v7");
    }

    #[test]
    fn valid_task_passes_validation() {
        let t = Task::new("mm", 1e9, 0.1);
        assert!(t.validate().is_ok());
        assert_eq!(t.name, "mm");
    }

    #[test]
    fn zero_flop_is_rejected() {
        let t = Task {
            name: "bad".into(),
            flop: 0.0,
            alpha: 0.1,
        };
        assert!(t.validate().is_err());
    }

    #[test]
    fn negative_flop_is_rejected() {
        let t = Task {
            name: "bad".into(),
            flop: -1.0,
            alpha: 0.1,
        };
        assert!(t.validate().is_err());
    }

    #[test]
    fn alpha_outside_unit_interval_is_rejected() {
        for alpha in [-0.1, 1.1, f64::NAN] {
            let t = Task {
                name: "bad".into(),
                flop: 1.0,
                alpha,
            };
            assert!(t.validate().is_err(), "alpha = {alpha} should be invalid");
        }
    }

    #[test]
    #[should_panic(expected = "invalid task")]
    fn constructor_panics_on_invalid_input() {
        let _ = Task::new("bad", f64::INFINITY, 0.0);
    }
}
