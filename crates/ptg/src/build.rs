//! Incremental construction of validated PTGs.

use crate::error::PtgError;
use crate::graph::Ptg;
use crate::node::{Task, TaskId};
use crate::topo;

/// Builder for [`Ptg`].
///
/// Tasks receive dense ids in insertion order. `build` validates every task
/// payload, rejects duplicate edges and self-loops eagerly, and finally
/// verifies acyclicity while computing a topological order.
///
/// ```
/// use ptg::{PtgBuilder, TaskId};
///
/// let mut b = PtgBuilder::new();
/// let a = b.add_task("produce", 2e9, 0.05);
/// let c = b.add_task("consume", 1e9, 0.10);
/// b.add_edge(a, c).unwrap();
/// let g = b.build().unwrap();
/// assert_eq!(g.task_count(), 2);
/// assert_eq!(g.sources(), vec![a]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct PtgBuilder {
    tasks: Vec<Task>,
    succ: Vec<Vec<TaskId>>,
    pred: Vec<Vec<TaskId>>,
    edge_count: usize,
}

impl PtgBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity for `n` tasks.
    pub fn with_capacity(n: usize) -> Self {
        PtgBuilder {
            tasks: Vec::with_capacity(n),
            succ: Vec::with_capacity(n),
            pred: Vec::with_capacity(n),
            edge_count: 0,
        }
    }

    /// Number of tasks added so far.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Adds a task and returns its id.
    pub fn add_task(&mut self, name: impl Into<String>, flop: f64, alpha: f64) -> TaskId {
        self.push_task(Task {
            name: name.into(),
            flop,
            alpha,
        })
    }

    /// Adds a pre-built [`Task`] and returns its id.
    pub fn push_task(&mut self, task: Task) -> TaskId {
        let id = TaskId::from_index(self.tasks.len());
        self.tasks.push(task);
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        id
    }

    /// Adds the dependency edge `from → to`.
    pub fn add_edge(&mut self, from: TaskId, to: TaskId) -> Result<(), PtgError> {
        let n = self.tasks.len();
        if from.index() >= n {
            return Err(PtgError::UnknownTask(from));
        }
        if to.index() >= n {
            return Err(PtgError::UnknownTask(to));
        }
        if from == to {
            return Err(PtgError::SelfLoop(from));
        }
        if self.succ[from.index()].contains(&to) {
            return Err(PtgError::DuplicateEdge(from, to));
        }
        self.succ[from.index()].push(to);
        self.pred[to.index()].push(from);
        self.edge_count += 1;
        Ok(())
    }

    /// Adds `from → to` unless it already exists; returns whether it was new.
    pub fn add_edge_dedup(&mut self, from: TaskId, to: TaskId) -> Result<bool, PtgError> {
        match self.add_edge(from, to) {
            Ok(()) => Ok(true),
            Err(PtgError::DuplicateEdge(..)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Finalizes the graph, validating tasks and acyclicity.
    pub fn build(self) -> Result<Ptg, PtgError> {
        if self.tasks.is_empty() {
            return Err(PtgError::Empty);
        }
        for t in &self.tasks {
            t.validate().map_err(PtgError::InvalidTask)?;
        }
        let topo = topo::topological_order(&self.succ, &self.pred)?;
        debug_assert_eq!(topo.len(), self.tasks.len());
        Ok(Ptg {
            tasks: self.tasks,
            succ: self.succ,
            pred: self.pred,
            topo,
            edge_count: self.edge_count,
            csr: std::sync::OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_is_rejected() {
        assert_eq!(PtgBuilder::new().build().unwrap_err(), PtgError::Empty);
    }

    #[test]
    fn unknown_endpoint_is_rejected() {
        let mut b = PtgBuilder::new();
        let a = b.add_task("a", 1.0, 0.0);
        assert_eq!(
            b.add_edge(a, TaskId(9)).unwrap_err(),
            PtgError::UnknownTask(TaskId(9))
        );
        assert_eq!(
            b.add_edge(TaskId(9), a).unwrap_err(),
            PtgError::UnknownTask(TaskId(9))
        );
    }

    #[test]
    fn self_loop_is_rejected() {
        let mut b = PtgBuilder::new();
        let a = b.add_task("a", 1.0, 0.0);
        assert_eq!(b.add_edge(a, a).unwrap_err(), PtgError::SelfLoop(a));
    }

    #[test]
    fn duplicate_edge_is_rejected() {
        let mut b = PtgBuilder::new();
        let a = b.add_task("a", 1.0, 0.0);
        let c = b.add_task("c", 1.0, 0.0);
        b.add_edge(a, c).unwrap();
        assert_eq!(b.add_edge(a, c).unwrap_err(), PtgError::DuplicateEdge(a, c));
    }

    #[test]
    fn add_edge_dedup_reports_novelty() {
        let mut b = PtgBuilder::new();
        let a = b.add_task("a", 1.0, 0.0);
        let c = b.add_task("c", 1.0, 0.0);
        assert!(b.add_edge_dedup(a, c).unwrap());
        assert!(!b.add_edge_dedup(a, c).unwrap());
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn cycle_is_detected_at_build_time() {
        let mut b = PtgBuilder::new();
        let a = b.add_task("a", 1.0, 0.0);
        let c = b.add_task("c", 1.0, 0.0);
        let d = b.add_task("d", 1.0, 0.0);
        b.add_edge(a, c).unwrap();
        b.add_edge(c, d).unwrap();
        b.add_edge(d, a).unwrap();
        assert!(matches!(b.build().unwrap_err(), PtgError::Cycle(_)));
    }

    #[test]
    fn invalid_task_payload_is_caught_at_build() {
        let mut b = PtgBuilder::new();
        b.push_task(Task {
            name: "bad".into(),
            flop: -5.0,
            alpha: 0.0,
        });
        assert!(matches!(b.build().unwrap_err(), PtgError::InvalidTask(_)));
    }

    #[test]
    fn single_task_graph_builds() {
        let mut b = PtgBuilder::new();
        b.add_task("only", 1.0, 0.0);
        let g = b.build().unwrap();
        assert_eq!(g.task_count(), 1);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.sources(), g.sinks());
    }

    #[test]
    fn ids_are_dense_and_sequential() {
        let mut b = PtgBuilder::new();
        for i in 0..5 {
            let id = b.add_task(format!("t{i}"), 1.0, 0.0);
            assert_eq!(id.index(), i);
        }
    }
}
