//! Graphviz DOT export for PTGs.

use crate::graph::Ptg;
use std::fmt;

/// Options controlling DOT output.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name used in the `digraph` header.
    pub name: String,
    /// Include each task's FLOP cost and alpha in the node label.
    pub show_costs: bool,
    /// Rank tasks of equal precedence level on the same row.
    pub rank_by_level: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "ptg".into(),
            show_costs: true,
            rank_by_level: false,
        }
    }
}

/// Writes the PTG in Graphviz DOT format to any [`fmt::Write`] sink,
/// propagating write errors instead of panicking.
pub fn write_dot<W: fmt::Write>(out: &mut W, g: &Ptg, opts: &DotOptions) -> fmt::Result {
    writeln!(out, "digraph {} {{", sanitize(&opts.name))?;
    writeln!(out, "  rankdir=TB;")?;
    writeln!(out, "  node [shape=box];")?;
    for v in g.task_ids() {
        let t = g.task(v);
        let label = if opts.show_costs {
            format!(
                "{}\\n{:.3} GFLOP, a={:.2}",
                escape(&t.name),
                t.flop / 1e9,
                t.alpha
            )
        } else {
            escape(&t.name)
        };
        writeln!(out, "  n{} [label=\"{}\"];", v.0, label)?;
    }
    for (a, b) in g.edges() {
        writeln!(out, "  n{} -> n{};", a.0, b.0)?;
    }
    if opts.rank_by_level {
        let lv = crate::levels::PrecedenceLevels::compute(g);
        for (_, tasks) in lv.iter() {
            let ids: Vec<String> = tasks.iter().map(|t| format!("n{}", t.0)).collect();
            writeln!(out, "  {{ rank=same; {}; }}", ids.join("; "))?;
        }
    }
    writeln!(out, "}}")?;
    Ok(())
}

/// Renders the PTG in Graphviz DOT format.
pub fn to_dot(g: &Ptg, opts: &DotOptions) -> String {
    let mut out = String::new();
    // Writing to a String cannot fail.
    let _ = write_dot(&mut out, g, opts);
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("g{cleaned}")
    } else if cleaned.is_empty() {
        "ptg".into()
    } else {
        cleaned
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::PtgBuilder;
    use crate::node::TaskId;

    fn tiny() -> Ptg {
        let mut b = PtgBuilder::new();
        b.add_task("src", 1e9, 0.1);
        b.add_task("dst", 2e9, 0.2);
        b.add_edge(TaskId(0), TaskId(1)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dot_lists_all_nodes_and_edges() {
        let dot = to_dot(&tiny(), &DotOptions::default());
        assert!(dot.starts_with("digraph ptg {"));
        assert!(dot.contains("n0 ["));
        assert!(dot.contains("n1 ["));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn costs_can_be_hidden() {
        let dot = to_dot(
            &tiny(),
            &DotOptions {
                show_costs: false,
                ..DotOptions::default()
            },
        );
        assert!(!dot.contains("GFLOP"));
        assert!(dot.contains("label=\"src\""));
    }

    #[test]
    fn rank_by_level_emits_rank_groups() {
        let dot = to_dot(
            &tiny(),
            &DotOptions {
                rank_by_level: true,
                ..DotOptions::default()
            },
        );
        assert!(dot.contains("rank=same"));
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize("my graph!"), "my_graph_");
        assert_eq!(sanitize("1abc"), "g1abc");
        assert_eq!(sanitize(""), "ptg");
    }

    #[test]
    fn labels_are_escaped() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
