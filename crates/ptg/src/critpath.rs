//! Bottom levels, top levels and critical paths.
//!
//! All functions take the per-task execution times as a slice `times[v]`
//! (seconds under the *current allocation* of each task) so that this crate
//! stays independent of any particular execution-time model. The paper's
//! definitions:
//!
//! * bottom level `bl(v)` — length of the longest path from `v` to a sink of
//!   the PTG **including** `v`'s own execution time,
//! * top level `tl(v)` — length of the longest path from a source to `v`
//!   **excluding** `v`'s own execution time (a standard companion notion used
//!   by the mapper and analyses),
//! * critical path — a path realizing `max_v bl(v)`.

use crate::graph::Ptg;
use crate::node::TaskId;

/// Computes the bottom level of every task in O(V + E).
///
/// # Panics
/// Panics if `times.len() != g.task_count()`.
pub fn bottom_levels(g: &Ptg, times: &[f64]) -> Vec<f64> {
    let mut bl = Vec::new();
    bottom_levels_into(g, times, &mut bl);
    bl
}

/// Like [`bottom_levels`], but writes into `out` (cleared first) so hot
/// loops can reuse one buffer across evaluations instead of allocating.
///
/// # Panics
/// Panics if `times.len() != g.task_count()`.
pub fn bottom_levels_into(g: &Ptg, times: &[f64], out: &mut Vec<f64>) {
    assert_eq!(
        times.len(),
        g.task_count(),
        "one execution time per task required"
    );
    out.clear();
    out.resize(g.task_count(), 0.0);
    for &v in g.topo_order().iter().rev() {
        let down = g
            .successors(v)
            .iter()
            .map(|&s| out[s.index()])
            .fold(0.0f64, f64::max);
        out[v.index()] = times[v.index()] + down;
    }
}

/// Computes the top level of every task in O(V + E).
///
/// # Panics
/// Panics if `times.len() != g.task_count()`.
pub fn top_levels(g: &Ptg, times: &[f64]) -> Vec<f64> {
    assert_eq!(
        times.len(),
        g.task_count(),
        "one execution time per task required"
    );
    let mut tl = vec![0.0f64; g.task_count()];
    for &v in g.topo_order() {
        let up = g
            .predecessors(v)
            .iter()
            .map(|&p| tl[p.index()] + times[p.index()])
            .fold(0.0f64, f64::max);
        tl[v.index()] = up;
    }
    tl
}

/// The critical-path length `T_CP = max_v bl(v)`; the lower bound on any
/// schedule's makespan under the given execution times.
pub fn critical_path_length(g: &Ptg, times: &[f64]) -> f64 {
    bottom_levels(g, times).into_iter().fold(0.0, f64::max)
}

/// Extracts one critical path as a source→sink task sequence.
///
/// Starts from the source with the largest bottom level and repeatedly moves
/// to the successor whose bottom level dominates. Ties break toward the
/// smallest task id, so the result is deterministic.
pub fn critical_path(g: &Ptg, times: &[f64]) -> Vec<TaskId> {
    let bl = bottom_levels(g, times);
    let start = g
        .sources()
        .into_iter()
        .max_by(|&a, &b| {
            bl[a.index()]
                .partial_cmp(&bl[b.index()])
                .expect("bottom levels are finite")
                .then(b.cmp(&a)) // prefer the smaller id on ties
        })
        .expect("non-empty graph has a source");
    let mut path = vec![start];
    let mut cur = start;
    while !g.successors(cur).is_empty() {
        let next = g
            .successors(cur)
            .iter()
            .copied()
            .max_by(|&a, &b| {
                bl[a.index()]
                    .partial_cmp(&bl[b.index()])
                    .expect("bottom levels are finite")
                    .then(b.cmp(&a))
            })
            .expect("non-sink has a successor");
        path.push(next);
        cur = next;
    }
    path
}

/// Tasks whose bottom level is within `delta` of the global maximum:
/// `{v | bl(v) ≥ delta · max_i bl(i)}` — the Δ-critical set (Suter).
pub fn delta_critical(g: &Ptg, times: &[f64], delta: f64) -> Vec<TaskId> {
    assert!(
        (0.0..=1.0).contains(&delta),
        "delta must lie in [0, 1], got {delta}"
    );
    let bl = bottom_levels(g, times);
    let max = bl.iter().copied().fold(0.0f64, f64::max);
    g.task_ids()
        .filter(|v| bl[v.index()] >= delta * max)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::PtgBuilder;

    /// 0(3s) -> 1(5s) -> 3(1s); 0 -> 2(2s) -> 3
    fn weighted_diamond() -> (Ptg, Vec<f64>) {
        let mut b = PtgBuilder::new();
        for i in 0..4 {
            b.add_task(format!("t{i}"), 1.0, 0.0);
        }
        b.add_edge(TaskId(0), TaskId(1)).unwrap();
        b.add_edge(TaskId(0), TaskId(2)).unwrap();
        b.add_edge(TaskId(1), TaskId(3)).unwrap();
        b.add_edge(TaskId(2), TaskId(3)).unwrap();
        (b.build().unwrap(), vec![3.0, 5.0, 2.0, 1.0])
    }

    #[test]
    fn bottom_levels_include_own_time() {
        let (g, t) = weighted_diamond();
        let bl = bottom_levels(&g, &t);
        assert_eq!(bl[3], 1.0);
        assert_eq!(bl[1], 6.0);
        assert_eq!(bl[2], 3.0);
        assert_eq!(bl[0], 9.0); // 3 + max(6, 3)
    }

    #[test]
    fn top_levels_exclude_own_time() {
        let (g, t) = weighted_diamond();
        let tl = top_levels(&g, &t);
        assert_eq!(tl[0], 0.0);
        assert_eq!(tl[1], 3.0);
        assert_eq!(tl[2], 3.0);
        assert_eq!(tl[3], 8.0); // via task 1
    }

    #[test]
    fn cp_length_is_max_bottom_level() {
        let (g, t) = weighted_diamond();
        assert_eq!(critical_path_length(&g, &t), 9.0);
    }

    #[test]
    fn critical_path_follows_heavy_branch() {
        let (g, t) = weighted_diamond();
        assert_eq!(critical_path(&g, &t), vec![TaskId(0), TaskId(1), TaskId(3)]);
    }

    #[test]
    fn tl_plus_bl_is_cp_length_exactly_on_the_path() {
        let (g, t) = weighted_diamond();
        let bl = bottom_levels(&g, &t);
        let tl = top_levels(&g, &t);
        let cp = critical_path_length(&g, &t);
        for v in critical_path(&g, &t) {
            assert!((tl[v.index()] + bl[v.index()] - cp).abs() < 1e-12);
        }
        // off-path task 2: 3 + 3 = 6 < 9
        assert!(tl[2] + bl[2] < cp);
    }

    #[test]
    fn delta_one_selects_only_the_critical_entry() {
        let (g, t) = weighted_diamond();
        assert_eq!(delta_critical(&g, &t, 1.0), vec![TaskId(0)]);
    }

    #[test]
    fn delta_zero_selects_everything() {
        let (g, t) = weighted_diamond();
        assert_eq!(delta_critical(&g, &t, 0.0).len(), g.task_count());
    }

    #[test]
    fn delta_middle_is_monotone() {
        let (g, t) = weighted_diamond();
        let d9 = delta_critical(&g, &t, 0.9).len();
        let d5 = delta_critical(&g, &t, 0.5).len();
        let d1 = delta_critical(&g, &t, 0.1).len();
        assert!(d9 <= d5 && d5 <= d1);
    }

    #[test]
    fn bottom_levels_into_reuses_buffer_and_matches() {
        let (g, t) = weighted_diamond();
        let mut buf = vec![99.0; 10]; // stale, wrong-sized buffer
        bottom_levels_into(&g, &t, &mut buf);
        assert_eq!(buf, bottom_levels(&g, &t));
        assert_eq!(buf.len(), g.task_count());
    }

    #[test]
    #[should_panic(expected = "one execution time per task")]
    fn mismatched_times_length_panics() {
        let (g, _) = weighted_diamond();
        let _ = bottom_levels(&g, &[1.0]);
    }

    #[test]
    fn chain_bottom_levels_accumulate() {
        let mut b = PtgBuilder::new();
        let ids: Vec<_> = (0..4)
            .map(|i| b.add_task(format!("t{i}"), 1.0, 0.0))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        let g = b.build().unwrap();
        let bl = bottom_levels(&g, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(bl, vec![10.0, 9.0, 7.0, 4.0]);
    }
}
