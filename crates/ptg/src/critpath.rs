//! Bottom levels, top levels and critical paths.
//!
//! All functions take the per-task execution times as a slice `times[v]`
//! (seconds under the *current allocation* of each task) so that this crate
//! stays independent of any particular execution-time model. The paper's
//! definitions:
//!
//! * bottom level `bl(v)` — length of the longest path from `v` to a sink of
//!   the PTG **including** `v`'s own execution time,
//! * top level `tl(v)` — length of the longest path from a source to `v`
//!   **excluding** `v`'s own execution time (a standard companion notion used
//!   by the mapper and analyses),
//! * critical path — a path realizing `max_v bl(v)`.

use crate::graph::Ptg;
use crate::node::TaskId;

/// Computes the bottom level of every task in O(V + E).
///
/// # Panics
/// Panics if `times.len() != g.task_count()`.
pub fn bottom_levels(g: &Ptg, times: &[f64]) -> Vec<f64> {
    let mut bl = Vec::new();
    bottom_levels_into(g, times, &mut bl);
    bl
}

/// Like [`bottom_levels`], but writes into `out` (cleared first) so hot
/// loops can reuse one buffer across evaluations instead of allocating.
///
/// # Panics
/// Panics if `times.len() != g.task_count()`.
// lint:hot-path
pub fn bottom_levels_into(g: &Ptg, times: &[f64], out: &mut Vec<f64>) {
    assert_eq!(
        times.len(),
        g.task_count(),
        "one execution time per task required"
    );
    out.clear();
    out.resize(g.task_count(), 0.0);
    // The CSR view walks each successor list as one contiguous slice; the
    // fold order equals the builder adjacency order, so the f64::max chain —
    // and therefore every produced bit pattern — matches the Vec<Vec> walk.
    let csr = g.csr();
    for &v in g.topo_order().iter().rev() {
        let down = csr
            .successors(v.0)
            .iter()
            .map(|&s| out[s as usize])
            .fold(0.0f64, f64::max);
        out[v.index()] = times[v.index()] + down;
    }
}

/// Computes the top level of every task in O(V + E).
///
/// # Panics
/// Panics if `times.len() != g.task_count()`.
pub fn top_levels(g: &Ptg, times: &[f64]) -> Vec<f64> {
    assert_eq!(
        times.len(),
        g.task_count(),
        "one execution time per task required"
    );
    let mut tl = vec![0.0f64; g.task_count()];
    for &v in g.topo_order() {
        let up = g
            .predecessors(v)
            .iter()
            .map(|&p| tl[p.index()] + times[p.index()])
            .fold(0.0f64, f64::max);
        tl[v.index()] = up;
    }
    tl
}

/// The critical-path length `T_CP = max_v bl(v)`; the lower bound on any
/// schedule's makespan under the given execution times.
pub fn critical_path_length(g: &Ptg, times: &[f64]) -> f64 {
    bottom_levels(g, times).into_iter().fold(0.0, f64::max)
}

/// Extracts one critical path as a source→sink task sequence.
///
/// Starts from the source with the largest bottom level and repeatedly moves
/// to the successor whose bottom level dominates. Ties break toward the
/// smallest task id, so the result is deterministic.
pub fn critical_path(g: &Ptg, times: &[f64]) -> Vec<TaskId> {
    let bl = bottom_levels(g, times);
    let start = g
        .sources()
        .into_iter()
        .max_by(|&a, &b| {
            bl[a.index()]
                .partial_cmp(&bl[b.index()])
                .expect("bottom levels are finite")
                .then(b.cmp(&a)) // prefer the smaller id on ties
        })
        .expect("non-empty graph has a source");
    let mut path = vec![start];
    let mut cur = start;
    while !g.successors(cur).is_empty() {
        let next = g
            .successors(cur)
            .iter()
            .copied()
            .max_by(|&a, &b| {
                bl[a.index()]
                    .partial_cmp(&bl[b.index()])
                    .expect("bottom levels are finite")
                    .then(b.cmp(&a))
            })
            .expect("non-sink has a successor");
        path.push(next);
        cur = next;
    }
    path
}

/// Incremental bottom-level repair after a sparse change of task times.
///
/// A mutated allocation changes the execution time of a handful of tasks;
/// only those tasks and their ancestors can see a different bottom level.
/// `repair` propagates the change backwards through the graph, visiting a
/// task at most once (a max-heap over topological positions guarantees all
/// successors are final before a task recomputes), and stops each branch as
/// soon as a recomputed value is **bitwise** identical to the stored one.
///
/// The result is exactly [`bottom_levels_into`] run from scratch: `bl(v) =
/// times(v) + max_s bl(s)` combines its inputs the same way in both
/// traversal orders, because `f64::max` over a fixed successor list is
/// evaluated in the identical (adjacency) order here and there.
///
/// The repairer owns all per-graph buffers, so repeated repairs on the same
/// graph perform no allocations beyond heap growth on first use.
#[derive(Debug, Clone)]
pub struct BlRepairer {
    /// Position of each task in the graph's topological order.
    topo_pos: Vec<u32>,
    /// Whether a task currently sits in `heap`.
    queued: Vec<bool>,
    /// Pending recomputations, deepest (largest topo position) first.
    heap: std::collections::BinaryHeap<(u32, TaskId)>,
    /// Tasks whose bottom level changed during the last `repair`.
    changed: Vec<TaskId>,
}

impl BlRepairer {
    /// Builds a repairer for `g` (O(V) setup, reusable for any number of
    /// repairs on the same graph).
    pub fn new(g: &Ptg) -> Self {
        let mut topo_pos = vec![0u32; g.task_count()];
        for (i, &v) in g.topo_order().iter().enumerate() {
            topo_pos[v.index()] = i as u32;
        }
        BlRepairer {
            topo_pos,
            queued: vec![false; g.task_count()],
            heap: std::collections::BinaryHeap::with_capacity(g.task_count()),
            changed: Vec::new(),
        }
    }

    /// Repairs `bl` in place after `times` changed at the tasks in `dirty`,
    /// and returns the tasks whose bottom level is no longer bitwise equal
    /// to its previous value.
    ///
    /// `bl` must hold the bottom levels of the *previous* times vector,
    /// which may differ from `times` only at `dirty` (duplicates allowed).
    ///
    /// # Panics
    /// Panics if the buffer lengths do not match the graph the repairer was
    /// built for.
    pub fn repair(
        &mut self,
        g: &Ptg,
        times: &[f64],
        bl: &mut [f64],
        dirty: &[TaskId],
    ) -> &[TaskId] {
        assert_eq!(
            self.topo_pos.len(),
            g.task_count(),
            "repairer/graph mismatch"
        );
        assert_eq!(times.len(), g.task_count(), "one execution time per task");
        assert_eq!(bl.len(), g.task_count(), "one bottom level per task");
        self.changed.clear();
        for &v in dirty {
            if !self.queued[v.index()] {
                self.queued[v.index()] = true;
                self.heap.push((self.topo_pos[v.index()], v));
            }
        }
        // Successors always carry larger topo positions, so popping deepest
        // first means every successor's bl is final when a task recomputes,
        // and each task is processed at most once. The CSR walk preserves
        // adjacency order, keeping the f64::max folds bit-identical.
        let csr = g.csr();
        while let Some((_, v)) = self.heap.pop() {
            self.queued[v.index()] = false;
            let down = csr
                .successors(v.0)
                .iter()
                .map(|&s| bl[s as usize])
                .fold(0.0f64, f64::max);
            let new = times[v.index()] + down;
            if new.to_bits() != bl[v.index()].to_bits() {
                bl[v.index()] = new;
                self.changed.push(v);
                for &p in csr.predecessors(v.0) {
                    if !self.queued[p as usize] {
                        self.queued[p as usize] = true;
                        self.heap.push((self.topo_pos[p as usize], TaskId(p)));
                    }
                }
            }
        }
        &self.changed
    }
}

/// Tasks whose bottom level is within `delta` of the global maximum:
/// `{v | bl(v) ≥ delta · max_i bl(i)}` — the Δ-critical set (Suter).
pub fn delta_critical(g: &Ptg, times: &[f64], delta: f64) -> Vec<TaskId> {
    assert!(
        (0.0..=1.0).contains(&delta),
        "delta must lie in [0, 1], got {delta}"
    );
    let bl = bottom_levels(g, times);
    let max = bl.iter().copied().fold(0.0f64, f64::max);
    g.task_ids()
        .filter(|v| bl[v.index()] >= delta * max)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::PtgBuilder;

    /// 0(3s) -> 1(5s) -> 3(1s); 0 -> 2(2s) -> 3
    fn weighted_diamond() -> (Ptg, Vec<f64>) {
        let mut b = PtgBuilder::new();
        for i in 0..4 {
            b.add_task(format!("t{i}"), 1.0, 0.0);
        }
        b.add_edge(TaskId(0), TaskId(1)).unwrap();
        b.add_edge(TaskId(0), TaskId(2)).unwrap();
        b.add_edge(TaskId(1), TaskId(3)).unwrap();
        b.add_edge(TaskId(2), TaskId(3)).unwrap();
        (b.build().unwrap(), vec![3.0, 5.0, 2.0, 1.0])
    }

    #[test]
    fn bottom_levels_include_own_time() {
        let (g, t) = weighted_diamond();
        let bl = bottom_levels(&g, &t);
        assert_eq!(bl[3], 1.0);
        assert_eq!(bl[1], 6.0);
        assert_eq!(bl[2], 3.0);
        assert_eq!(bl[0], 9.0); // 3 + max(6, 3)
    }

    #[test]
    fn top_levels_exclude_own_time() {
        let (g, t) = weighted_diamond();
        let tl = top_levels(&g, &t);
        assert_eq!(tl[0], 0.0);
        assert_eq!(tl[1], 3.0);
        assert_eq!(tl[2], 3.0);
        assert_eq!(tl[3], 8.0); // via task 1
    }

    #[test]
    fn cp_length_is_max_bottom_level() {
        let (g, t) = weighted_diamond();
        assert_eq!(critical_path_length(&g, &t), 9.0);
    }

    #[test]
    fn critical_path_follows_heavy_branch() {
        let (g, t) = weighted_diamond();
        assert_eq!(critical_path(&g, &t), vec![TaskId(0), TaskId(1), TaskId(3)]);
    }

    #[test]
    fn tl_plus_bl_is_cp_length_exactly_on_the_path() {
        let (g, t) = weighted_diamond();
        let bl = bottom_levels(&g, &t);
        let tl = top_levels(&g, &t);
        let cp = critical_path_length(&g, &t);
        for v in critical_path(&g, &t) {
            assert!((tl[v.index()] + bl[v.index()] - cp).abs() < 1e-12);
        }
        // off-path task 2: 3 + 3 = 6 < 9
        assert!(tl[2] + bl[2] < cp);
    }

    #[test]
    fn delta_one_selects_only_the_critical_entry() {
        let (g, t) = weighted_diamond();
        assert_eq!(delta_critical(&g, &t, 1.0), vec![TaskId(0)]);
    }

    #[test]
    fn delta_zero_selects_everything() {
        let (g, t) = weighted_diamond();
        assert_eq!(delta_critical(&g, &t, 0.0).len(), g.task_count());
    }

    #[test]
    fn delta_middle_is_monotone() {
        let (g, t) = weighted_diamond();
        let d9 = delta_critical(&g, &t, 0.9).len();
        let d5 = delta_critical(&g, &t, 0.5).len();
        let d1 = delta_critical(&g, &t, 0.1).len();
        assert!(d9 <= d5 && d5 <= d1);
    }

    #[test]
    fn bottom_levels_into_reuses_buffer_and_matches() {
        let (g, t) = weighted_diamond();
        let mut buf = vec![99.0; 10]; // stale, wrong-sized buffer
        bottom_levels_into(&g, &t, &mut buf);
        assert_eq!(buf, bottom_levels(&g, &t));
        assert_eq!(buf.len(), g.task_count());
    }

    #[test]
    #[should_panic(expected = "one execution time per task")]
    fn mismatched_times_length_panics() {
        let (g, _) = weighted_diamond();
        let _ = bottom_levels(&g, &[1.0]);
    }

    #[test]
    fn repairer_matches_full_recompute_on_diamond() {
        let (g, t) = weighted_diamond();
        let mut rep = BlRepairer::new(&g);
        let mut times = t.clone();
        let mut bl = bottom_levels(&g, &times);
        // Change the mid task on the heavy branch: 1's time 5 → 2.
        times[1] = 2.0;
        let changed = rep.repair(&g, &times, &mut bl, &[TaskId(1)]).to_vec();
        assert_eq!(bl, bottom_levels(&g, &times));
        // Task 1 and its ancestor 0 changed; 2 and 3 did not.
        assert!(changed.contains(&TaskId(1)));
        assert!(changed.contains(&TaskId(0)));
        assert_eq!(changed.len(), 2);
    }

    #[test]
    fn repairer_stops_when_change_is_masked() {
        // 0 -> {1, 2} -> 3 with bl(1) = 6 dominating bl(2) = 3: growing
        // task 2's time to 3.5 changes bl(2) but not bl(0) (6 still wins),
        // so propagation must stop at task 2.
        let (g, t) = weighted_diamond();
        let mut rep = BlRepairer::new(&g);
        let mut times = t.clone();
        let mut bl = bottom_levels(&g, &times);
        times[2] = 3.5;
        let changed = rep.repair(&g, &times, &mut bl, &[TaskId(2)]).to_vec();
        assert_eq!(bl, bottom_levels(&g, &times));
        assert_eq!(changed, vec![TaskId(2)]);
    }

    #[test]
    fn repairer_handles_noop_and_duplicate_dirty_sets() {
        let (g, t) = weighted_diamond();
        let mut rep = BlRepairer::new(&g);
        let mut bl = bottom_levels(&g, &t);
        // Times unchanged: nothing may be reported, bl must be untouched.
        let before = bl.clone();
        let changed = rep
            .repair(&g, &t, &mut bl, &[TaskId(1), TaskId(1), TaskId(3)])
            .to_vec();
        assert!(changed.is_empty());
        assert_eq!(bl, before);
    }

    #[test]
    fn repairer_is_bitwise_identical_on_random_graphs_and_dirty_sets() {
        // Pseudo-random layered DAGs and dirty sets via a local xorshift —
        // every repair must land bitwise on the from-scratch recompute.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..10 {
            let n = 20 + (next() % 30) as usize;
            let mut b = PtgBuilder::new();
            for i in 0..n {
                b.add_task(format!("t{i}"), 1.0, 0.0);
            }
            for v in 1..n {
                // Each task gets 1–3 predecessors among earlier tasks.
                for _ in 0..=(next() % 3) {
                    let p = (next() % v as u64) as u32;
                    let _ = b.add_edge(TaskId(p), TaskId(v as u32));
                }
            }
            let g = b.build().unwrap();
            let mut times: Vec<f64> = (0..n).map(|_| 1.0 + (next() % 100) as f64 / 7.0).collect();
            let mut bl = bottom_levels(&g, &times);
            let mut rep = BlRepairer::new(&g);
            for _ in 0..8 {
                let k = 1 + (next() % 4) as usize;
                let dirty: Vec<TaskId> =
                    (0..k).map(|_| TaskId((next() % n as u64) as u32)).collect();
                for &d in &dirty {
                    times[d.index()] = 1.0 + (next() % 100) as f64 / 7.0;
                }
                let changed: Vec<TaskId> = rep.repair(&g, &times, &mut bl, &dirty).to_vec();
                let fresh = bottom_levels(&g, &times);
                for v in 0..n {
                    assert_eq!(bl[v].to_bits(), fresh[v].to_bits(), "task {v}");
                }
                // The changed list is exactly the set of tasks whose value
                // moved (we can't see the pre-repair values here, but every
                // reported task must at least be a dirty task or an ancestor
                // of one).
                for &c in &changed {
                    assert!(
                        dirty.iter().any(|&d| c == d || reaches(&g, c, d)),
                        "{c} is not an ancestor of any dirty task"
                    );
                }
            }
        }
    }

    /// True if `to` is reachable from `from` along successor edges.
    fn reaches(g: &Ptg, from: TaskId, to: TaskId) -> bool {
        let mut stack = vec![from];
        let mut seen = vec![false; g.task_count()];
        while let Some(v) = stack.pop() {
            if v == to {
                return true;
            }
            if seen[v.index()] {
                continue;
            }
            seen[v.index()] = true;
            stack.extend(g.successors(v).iter().copied());
        }
        false
    }

    #[test]
    fn chain_bottom_levels_accumulate() {
        let mut b = PtgBuilder::new();
        let ids: Vec<_> = (0..4)
            .map(|i| b.add_task(format!("t{i}"), 1.0, 0.0))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        let g = b.build().unwrap();
        let bl = bottom_levels(&g, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(bl, vec![10.0, 9.0, 7.0, 4.0]);
    }
}
