//! The immutable, validated PTG.

use crate::node::{Task, TaskId};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Flat compressed-sparse-row view of a graph's adjacency.
///
/// The schedulers' inner loops walk successor/predecessor lists for every
/// placement; the builder's `Vec<Vec<TaskId>>` representation costs one
/// pointer chase (and one potential cache miss) per task. This view packs
/// all lists into two arenas — one `u32` target array plus one offset array
/// per direction — so a task's neighbours are a contiguous `&[u32]` slice
/// and the whole adjacency of a 100-task graph fits in a few cache lines.
///
/// List *order is preserved* from the builder adjacency: every fold over
/// successors (bottom levels, data-ready propagation) visits neighbours in
/// the identical order, which keeps `f64::max` chains bit-identical to the
/// pointer-chasing code paths.
#[derive(Debug, Clone)]
pub struct CsrAdjacency {
    /// Successor arena: targets of task `v` are
    /// `succ[succ_off[v] as usize .. succ_off[v + 1] as usize]`.
    succ: Vec<u32>,
    /// `task_count + 1` offsets into `succ`.
    succ_off: Vec<u32>,
    /// Predecessor arena, same layout as `succ`.
    pred: Vec<u32>,
    /// `task_count + 1` offsets into `pred`.
    pred_off: Vec<u32>,
    /// Per-task in-degree (`pred` run lengths, pre-extracted so schedulers
    /// can seed their dependency counters with one memcpy).
    in_deg: Vec<u32>,
    /// Tasks with no predecessors, ascending.
    sources: Vec<u32>,
}

impl CsrAdjacency {
    // lint:allow(src-hot-path-alloc-transitive) -- builds once per graph behind OnceCell; hot-path callers of Ptg::csr hit the cached view
    fn build(succ: &[Vec<TaskId>], pred: &[Vec<TaskId>], edge_count: usize) -> Self {
        let n = succ.len();
        let mut csr = CsrAdjacency {
            succ: Vec::with_capacity(edge_count),
            succ_off: Vec::with_capacity(n + 1),
            pred: Vec::with_capacity(edge_count),
            pred_off: Vec::with_capacity(n + 1),
            in_deg: Vec::with_capacity(n),
            sources: Vec::new(),
        };
        csr.succ_off.push(0);
        csr.pred_off.push(0);
        for v in 0..n {
            csr.succ.extend(succ[v].iter().map(|t| t.0));
            csr.succ_off.push(csr.succ.len() as u32);
            csr.pred.extend(pred[v].iter().map(|t| t.0));
            csr.pred_off.push(csr.pred.len() as u32);
            csr.in_deg.push(pred[v].len() as u32);
            if pred[v].is_empty() {
                csr.sources.push(v as u32);
            }
        }
        csr
    }

    /// Successors of task index `v` as raw `u32` ids, builder order.
    // lint:hot-path
    #[inline]
    pub fn successors(&self, v: u32) -> &[u32] {
        &self.succ[self.succ_off[v as usize] as usize..self.succ_off[v as usize + 1] as usize]
    }

    /// Predecessors of task index `v` as raw `u32` ids, builder order.
    // lint:hot-path
    #[inline]
    pub fn predecessors(&self, v: u32) -> &[u32] {
        &self.pred[self.pred_off[v as usize] as usize..self.pred_off[v as usize + 1] as usize]
    }

    /// Per-task in-degrees, indexed by task id.
    #[inline]
    pub fn in_degrees(&self) -> &[u32] {
        &self.in_deg
    }

    /// Task ids with no predecessors, ascending.
    #[inline]
    pub fn sources(&self) -> &[u32] {
        &self.sources
    }
}

/// An immutable parallel task graph.
///
/// Built through [`PtgBuilder`](crate::PtgBuilder), which guarantees:
///
/// * the graph is non-empty and acyclic,
/// * `topo_order` is a valid topological order of all tasks,
/// * adjacency lists are deduplicated and free of self-loops.
///
/// Per-task data (`tasks`, adjacency) is indexed by [`TaskId::index`].
#[derive(Debug, Clone)]
pub struct Ptg {
    pub(crate) tasks: Vec<Task>,
    pub(crate) succ: Vec<Vec<TaskId>>,
    pub(crate) pred: Vec<Vec<TaskId>>,
    pub(crate) topo: Vec<TaskId>,
    pub(crate) edge_count: usize,
    /// Lazily-built flat adjacency (see [`CsrAdjacency`]). Derived state:
    /// excluded from the serde wire format and rebuilt on first use after
    /// deserialization.
    pub(crate) csr: OnceLock<CsrAdjacency>,
}

// Hand-written serde impls: the wire format is exactly what the field
// derive produced before the `csr` cache existed (the five persistent
// fields, declaration order), so committed artifacts keep round-tripping.
impl Serialize for Ptg {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("tasks".to_string(), self.tasks.to_value()),
            ("succ".to_string(), self.succ.to_value()),
            ("pred".to_string(), self.pred.to_value()),
            ("topo".to_string(), self.topo.to_value()),
            ("edge_count".to_string(), self.edge_count.to_value()),
        ])
    }
}

impl Deserialize for Ptg {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::DeError::expected("object", "Ptg"))?;
        Ok(Ptg {
            tasks: serde::de_field(obj, "tasks", "Ptg")?,
            succ: serde::de_field(obj, "succ", "Ptg")?,
            pred: serde::de_field(obj, "pred", "Ptg")?,
            topo: serde::de_field(obj, "topo", "Ptg")?,
            edge_count: serde::de_field(obj, "edge_count", "Ptg")?,
            csr: OnceLock::new(),
        })
    }
}

impl Ptg {
    /// Number of tasks `V`.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of edges `E`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The task payload for `id`.
    #[inline]
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// All task payloads, indexed by [`TaskId::index`].
    #[inline]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Iterator over all task ids in increasing order.
    pub fn task_ids(&self) -> impl ExactSizeIterator<Item = TaskId> + '_ {
        (0..self.tasks.len()).map(TaskId::from_index)
    }

    /// Direct successors of `id` (tasks depending on it).
    #[inline]
    pub fn successors(&self, id: TaskId) -> &[TaskId] {
        &self.succ[id.index()]
    }

    /// Direct predecessors of `id` (tasks it depends on).
    #[inline]
    pub fn predecessors(&self, id: TaskId) -> &[TaskId] {
        &self.pred[id.index()]
    }

    /// In-degree of `id`.
    #[inline]
    pub fn in_degree(&self, id: TaskId) -> usize {
        self.pred[id.index()].len()
    }

    /// Out-degree of `id`.
    #[inline]
    pub fn out_degree(&self, id: TaskId) -> usize {
        self.succ[id.index()].len()
    }

    /// A topological order computed at build time (sources first).
    #[inline]
    pub fn topo_order(&self) -> &[TaskId] {
        &self.topo
    }

    /// Tasks with no predecessors.
    pub fn sources(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|&v| self.in_degree(v) == 0)
            .collect()
    }

    /// Tasks with no successors.
    pub fn sinks(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|&v| self.out_degree(v) == 0)
            .collect()
    }

    /// True if the graph contains the edge `a → b`.
    pub fn has_edge(&self, a: TaskId, b: TaskId) -> bool {
        self.succ[a.index()].contains(&b)
    }

    /// Iterator over all edges `(from, to)`.
    pub fn edges(&self) -> impl Iterator<Item = (TaskId, TaskId)> + '_ {
        self.task_ids()
            .flat_map(move |v| self.successors(v).iter().map(move |&w| (v, w)))
    }

    /// Total work of the graph in FLOP.
    pub fn total_flop(&self) -> f64 {
        self.tasks.iter().map(|t| t.flop).sum()
    }

    /// The flat CSR adjacency view, built once per graph on first use.
    ///
    /// The schedulers' hot loops use this instead of
    /// [`Self::successors`]/[`Self::predecessors`] to avoid one pointer
    /// chase per visited task; neighbour order is identical, so either view
    /// produces bit-identical schedules.
    #[inline]
    pub fn csr(&self) -> &CsrAdjacency {
        self.csr
            .get_or_init(|| CsrAdjacency::build(&self.succ, &self.pred, self.edge_count))
    }
}

#[cfg(test)]
mod tests {
    use crate::build::PtgBuilder;
    use crate::node::TaskId;

    fn diamond() -> crate::Ptg {
        // 0 -> {1, 2} -> 3
        let mut b = PtgBuilder::new();
        for i in 0..4 {
            b.add_task(format!("t{i}"), 1e9, 0.1);
        }
        b.add_edge(TaskId(0), TaskId(1)).unwrap();
        b.add_edge(TaskId(0), TaskId(2)).unwrap();
        b.add_edge(TaskId(1), TaskId(3)).unwrap();
        b.add_edge(TaskId(2), TaskId(3)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn counts_match_construction() {
        let g = diamond();
        assert_eq!(g.task_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.edges().count(), 4);
    }

    #[test]
    fn adjacency_is_consistent_both_ways() {
        let g = diamond();
        for (a, b) in g.edges() {
            assert!(g.successors(a).contains(&b));
            assert!(g.predecessors(b).contains(&a));
        }
    }

    #[test]
    fn sources_and_sinks_of_diamond() {
        let g = diamond();
        assert_eq!(g.sources(), vec![TaskId(0)]);
        assert_eq!(g.sinks(), vec![TaskId(3)]);
    }

    #[test]
    fn degrees_of_diamond() {
        let g = diamond();
        assert_eq!(g.out_degree(TaskId(0)), 2);
        assert_eq!(g.in_degree(TaskId(3)), 2);
        assert_eq!(g.in_degree(TaskId(0)), 0);
        assert_eq!(g.out_degree(TaskId(3)), 0);
    }

    #[test]
    fn has_edge_checks_direction() {
        let g = diamond();
        assert!(g.has_edge(TaskId(0), TaskId(1)));
        assert!(!g.has_edge(TaskId(1), TaskId(0)));
        assert!(!g.has_edge(TaskId(1), TaskId(2)));
    }

    #[test]
    fn total_flop_sums_all_tasks() {
        let g = diamond();
        assert!((g.total_flop() - 4e9).abs() < 1e-6);
    }

    #[test]
    fn csr_view_matches_pointer_adjacency() {
        let g = diamond();
        let csr = g.csr();
        for v in g.task_ids() {
            let succ: Vec<u32> = g.successors(v).iter().map(|t| t.0).collect();
            assert_eq!(csr.successors(v.0), succ.as_slice(), "{v}");
            let pred: Vec<u32> = g.predecessors(v).iter().map(|t| t.0).collect();
            assert_eq!(csr.predecessors(v.0), pred.as_slice(), "{v}");
            assert_eq!(csr.in_degrees()[v.index()] as usize, g.in_degree(v));
        }
        assert_eq!(csr.sources(), &[0]);
        // The view survives clone and serde round trips (rebuilt lazily).
        let cloned = g.clone();
        assert_eq!(cloned.csr().successors(0), csr.successors(0));
        let json = serde_json::to_string(&g).unwrap();
        let back: crate::Ptg = serde_json::from_str(&json).unwrap();
        assert_eq!(back.csr().predecessors(3), csr.predecessors(3));
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let pos: Vec<usize> = {
            let mut pos = vec![0usize; g.task_count()];
            for (i, &v) in g.topo_order().iter().enumerate() {
                pos[v.index()] = i;
            }
            pos
        };
        for (a, b) in g.edges() {
            assert!(pos[a.index()] < pos[b.index()], "{a} must precede {b}");
        }
    }
}
