//! The immutable, validated PTG.

use crate::node::{Task, TaskId};
use serde::{Deserialize, Serialize};

/// An immutable parallel task graph.
///
/// Built through [`PtgBuilder`](crate::PtgBuilder), which guarantees:
///
/// * the graph is non-empty and acyclic,
/// * `topo_order` is a valid topological order of all tasks,
/// * adjacency lists are deduplicated and free of self-loops.
///
/// Per-task data (`tasks`, adjacency) is indexed by [`TaskId::index`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ptg {
    pub(crate) tasks: Vec<Task>,
    pub(crate) succ: Vec<Vec<TaskId>>,
    pub(crate) pred: Vec<Vec<TaskId>>,
    pub(crate) topo: Vec<TaskId>,
    pub(crate) edge_count: usize,
}

impl Ptg {
    /// Number of tasks `V`.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of edges `E`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The task payload for `id`.
    #[inline]
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// All task payloads, indexed by [`TaskId::index`].
    #[inline]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Iterator over all task ids in increasing order.
    pub fn task_ids(&self) -> impl ExactSizeIterator<Item = TaskId> + '_ {
        (0..self.tasks.len()).map(TaskId::from_index)
    }

    /// Direct successors of `id` (tasks depending on it).
    #[inline]
    pub fn successors(&self, id: TaskId) -> &[TaskId] {
        &self.succ[id.index()]
    }

    /// Direct predecessors of `id` (tasks it depends on).
    #[inline]
    pub fn predecessors(&self, id: TaskId) -> &[TaskId] {
        &self.pred[id.index()]
    }

    /// In-degree of `id`.
    #[inline]
    pub fn in_degree(&self, id: TaskId) -> usize {
        self.pred[id.index()].len()
    }

    /// Out-degree of `id`.
    #[inline]
    pub fn out_degree(&self, id: TaskId) -> usize {
        self.succ[id.index()].len()
    }

    /// A topological order computed at build time (sources first).
    #[inline]
    pub fn topo_order(&self) -> &[TaskId] {
        &self.topo
    }

    /// Tasks with no predecessors.
    pub fn sources(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|&v| self.in_degree(v) == 0)
            .collect()
    }

    /// Tasks with no successors.
    pub fn sinks(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|&v| self.out_degree(v) == 0)
            .collect()
    }

    /// True if the graph contains the edge `a → b`.
    pub fn has_edge(&self, a: TaskId, b: TaskId) -> bool {
        self.succ[a.index()].contains(&b)
    }

    /// Iterator over all edges `(from, to)`.
    pub fn edges(&self) -> impl Iterator<Item = (TaskId, TaskId)> + '_ {
        self.task_ids()
            .flat_map(move |v| self.successors(v).iter().map(move |&w| (v, w)))
    }

    /// Total work of the graph in FLOP.
    pub fn total_flop(&self) -> f64 {
        self.tasks.iter().map(|t| t.flop).sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::build::PtgBuilder;
    use crate::node::TaskId;

    fn diamond() -> crate::Ptg {
        // 0 -> {1, 2} -> 3
        let mut b = PtgBuilder::new();
        for i in 0..4 {
            b.add_task(format!("t{i}"), 1e9, 0.1);
        }
        b.add_edge(TaskId(0), TaskId(1)).unwrap();
        b.add_edge(TaskId(0), TaskId(2)).unwrap();
        b.add_edge(TaskId(1), TaskId(3)).unwrap();
        b.add_edge(TaskId(2), TaskId(3)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn counts_match_construction() {
        let g = diamond();
        assert_eq!(g.task_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.edges().count(), 4);
    }

    #[test]
    fn adjacency_is_consistent_both_ways() {
        let g = diamond();
        for (a, b) in g.edges() {
            assert!(g.successors(a).contains(&b));
            assert!(g.predecessors(b).contains(&a));
        }
    }

    #[test]
    fn sources_and_sinks_of_diamond() {
        let g = diamond();
        assert_eq!(g.sources(), vec![TaskId(0)]);
        assert_eq!(g.sinks(), vec![TaskId(3)]);
    }

    #[test]
    fn degrees_of_diamond() {
        let g = diamond();
        assert_eq!(g.out_degree(TaskId(0)), 2);
        assert_eq!(g.in_degree(TaskId(3)), 2);
        assert_eq!(g.in_degree(TaskId(0)), 0);
        assert_eq!(g.out_degree(TaskId(3)), 0);
    }

    #[test]
    fn has_edge_checks_direction() {
        let g = diamond();
        assert!(g.has_edge(TaskId(0), TaskId(1)));
        assert!(!g.has_edge(TaskId(1), TaskId(0)));
        assert!(!g.has_edge(TaskId(1), TaskId(2)));
    }

    #[test]
    fn total_flop_sums_all_tasks() {
        let g = diamond();
        assert!((g.total_flop() - 4e9).abs() < 1e-6);
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let pos: Vec<usize> = {
            let mut pos = vec![0usize; g.task_count()];
            for (i, &v) in g.topo_order().iter().enumerate() {
                pos[v.index()] = i;
            }
            pos
        };
        for (a, b) in g.edges() {
            assert!(pos[a.index()] < pos[b.index()], "{a} must precede {b}");
        }
    }
}
