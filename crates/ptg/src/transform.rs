//! Graph transformations.
//!
//! * [`transitive_reduction`] — drop edges implied by longer paths. Random
//!   generators (and real workflow exports) often carry redundant edges;
//!   reducing them shrinks the mapper's working set without changing any
//!   schedule's feasibility.
//! * [`merge_series`] — collapse chains of unit-fan nodes into single
//!   tasks, a standard preprocessing step that preserves makespans when the
//!   merged tasks share an allocation.
//! * [`compose_serial`] / [`compose_parallel`] — combine PTGs the way
//!   workflow engines do (run A then B; run A beside B).

use crate::build::PtgBuilder;
use crate::graph::Ptg;
use crate::node::TaskId;

/// Returns a copy of `g` without transitively redundant edges: an edge
/// `a → b` is dropped iff a path `a ⇝ b` of length ≥ 2 exists.
///
/// O(V · E) via one DFS per task — fine for the ≤ 100-task graphs of this
/// workspace.
pub fn transitive_reduction(g: &Ptg) -> Ptg {
    let mut b = PtgBuilder::with_capacity(g.task_count());
    for v in g.task_ids() {
        b.push_task(g.task(v).clone());
    }
    for a in g.task_ids() {
        for &c in g.successors(a) {
            if !reachable_without_edge(g, a, c) {
                b.add_edge(a, c).expect("subset of an acyclic edge set");
            }
        }
    }
    b.build().expect("subgraph of a DAG is a DAG")
}

/// Is `to` reachable from `from` without using the direct edge `from → to`?
fn reachable_without_edge(g: &Ptg, from: TaskId, to: TaskId) -> bool {
    let mut seen = vec![false; g.task_count()];
    let mut stack: Vec<TaskId> = g
        .successors(from)
        .iter()
        .copied()
        .filter(|&s| s != to)
        .collect();
    while let Some(v) = stack.pop() {
        if v == to {
            return true;
        }
        if !seen[v.index()] {
            seen[v.index()] = true;
            stack.extend(g.successors(v).iter().copied());
        }
    }
    false
}

/// Serial composition: every sink of `first` precedes every source of
/// `second`. Task ids of `second` are shifted by `first.task_count()`.
pub fn compose_serial(first: &Ptg, second: &Ptg) -> Ptg {
    let offset = first.task_count();
    let mut b = PtgBuilder::with_capacity(offset + second.task_count());
    for v in first.task_ids() {
        b.push_task(first.task(v).clone());
    }
    for v in second.task_ids() {
        b.push_task(second.task(v).clone());
    }
    for (a, c) in first.edges() {
        b.add_edge(a, c).expect("copied edge");
    }
    let shift = |v: TaskId| TaskId::from_index(v.index() + offset);
    for (a, c) in second.edges() {
        b.add_edge(shift(a), shift(c)).expect("copied edge");
    }
    for sink in first.sinks() {
        for src in second.sources() {
            b.add_edge(sink, shift(src)).expect("bridge edge");
        }
    }
    b.build().expect("serial composition of DAGs is a DAG")
}

/// Collapses maximal series chains into single tasks.
///
/// A *series pair* is an edge `a → b` where `a` has exactly one successor
/// and `b` exactly one predecessor: the two tasks always run back to back,
/// so replacing them with one task of cost `flop_a + flop_b` and
/// work-weighted serial fraction
/// `α = (α_a·flop_a + α_b·flop_b) / (flop_a + flop_b)` preserves the
/// combined Amdahl execution time at every shared processor count exactly
/// (the formula is linear in `(flop, α·flop)`).
///
/// Returns the contracted graph plus, for each new task, the original task
/// ids it absorbed (in execution order).
pub fn merge_series(g: &Ptg) -> (Ptg, Vec<Vec<TaskId>>) {
    // Walk in topological order; start a new group at every task whose
    // predecessor situation breaks a chain.
    let mut group_of = vec![usize::MAX; g.task_count()];
    let mut groups: Vec<Vec<TaskId>> = Vec::new();
    for &v in g.topo_order() {
        let mergeable_into_pred = g.in_degree(v) == 1 && {
            let p = g.predecessors(v)[0];
            g.out_degree(p) == 1
        };
        if mergeable_into_pred {
            let p = g.predecessors(v)[0];
            let gi = group_of[p.index()];
            group_of[v.index()] = gi;
            groups[gi].push(v);
        } else {
            group_of[v.index()] = groups.len();
            groups.push(vec![v]);
        }
    }

    let mut b = PtgBuilder::with_capacity(groups.len());
    for members in &groups {
        let flop: f64 = members.iter().map(|&v| g.task(v).flop).sum();
        let alpha_work: f64 = members
            .iter()
            .map(|&v| g.task(v).alpha * g.task(v).flop)
            .sum();
        let name = members
            .iter()
            .map(|&v| g.task(v).name.as_str())
            .collect::<Vec<_>>()
            .join("+");
        b.add_task(name, flop, alpha_work / flop);
    }
    for (a, c) in g.edges() {
        let (ga, gc) = (group_of[a.index()], group_of[c.index()]);
        if ga != gc {
            let _ = b
                .add_edge_dedup(TaskId::from_index(ga), TaskId::from_index(gc))
                .expect("group edges follow topological order");
        }
    }
    (b.build().expect("contraction of a DAG is a DAG"), groups)
}

/// Parallel composition: the two graphs side by side, no new edges.
pub fn compose_parallel(left: &Ptg, right: &Ptg) -> Ptg {
    let offset = left.task_count();
    let mut b = PtgBuilder::with_capacity(offset + right.task_count());
    for v in left.task_ids() {
        b.push_task(left.task(v).clone());
    }
    for v in right.task_ids() {
        b.push_task(right.task(v).clone());
    }
    for (a, c) in left.edges() {
        b.add_edge(a, c).expect("copied edge");
    }
    for (a, c) in right.edges() {
        b.add_edge(
            TaskId::from_index(a.index() + offset),
            TaskId::from_index(c.index() + offset),
        )
        .expect("copied edge");
    }
    b.build().expect("disjoint union of DAGs is a DAG")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 → 1 → 2 plus the redundant shortcut 0 → 2.
    fn with_shortcut() -> Ptg {
        let mut b = PtgBuilder::new();
        for i in 0..3 {
            b.add_task(format!("t{i}"), 1.0, 0.0);
        }
        b.add_edge(TaskId(0), TaskId(1)).unwrap();
        b.add_edge(TaskId(1), TaskId(2)).unwrap();
        b.add_edge(TaskId(0), TaskId(2)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn reduction_drops_only_redundant_edges() {
        let g = with_shortcut();
        let r = transitive_reduction(&g);
        assert_eq!(r.edge_count(), 2);
        assert!(r.has_edge(TaskId(0), TaskId(1)));
        assert!(r.has_edge(TaskId(1), TaskId(2)));
        assert!(!r.has_edge(TaskId(0), TaskId(2)));
    }

    #[test]
    fn reduction_is_idempotent() {
        let g = with_shortcut();
        let once = transitive_reduction(&g);
        let twice = transitive_reduction(&once);
        assert_eq!(once.edge_count(), twice.edge_count());
        assert!(once.edges().eq(twice.edges()));
    }

    #[test]
    fn reduction_preserves_reachability() {
        let g = with_shortcut();
        let r = transitive_reduction(&g);
        for a in g.task_ids() {
            for b in g.task_ids() {
                assert_eq!(
                    crate::analysis::reaches(&g, a, b),
                    crate::analysis::reaches(&r, a, b),
                    "{a} ⇝ {b}"
                );
            }
        }
    }

    #[test]
    fn diamond_is_already_reduced() {
        let mut b = PtgBuilder::new();
        for i in 0..4 {
            b.add_task(format!("t{i}"), 1.0, 0.0);
        }
        b.add_edge(TaskId(0), TaskId(1)).unwrap();
        b.add_edge(TaskId(0), TaskId(2)).unwrap();
        b.add_edge(TaskId(1), TaskId(3)).unwrap();
        b.add_edge(TaskId(2), TaskId(3)).unwrap();
        let g = b.build().unwrap();
        assert_eq!(transitive_reduction(&g).edge_count(), 4);
    }

    #[test]
    fn serial_composition_bridges_sinks_to_sources() {
        let g = with_shortcut();
        let h = with_shortcut();
        let s = compose_serial(&g, &h);
        assert_eq!(s.task_count(), 6);
        // one sink (t2) × one source (t0 shifted) bridge edge
        assert_eq!(s.edge_count(), 3 + 3 + 1);
        assert!(s.has_edge(TaskId(2), TaskId(3)));
        assert_eq!(s.sources(), vec![TaskId(0)]);
        assert_eq!(s.sinks(), vec![TaskId(5)]);
    }

    #[test]
    fn parallel_composition_is_a_disjoint_union() {
        let g = with_shortcut();
        let h = with_shortcut();
        let p = compose_parallel(&g, &h);
        assert_eq!(p.task_count(), 6);
        assert_eq!(p.edge_count(), 6);
        assert_eq!(p.sources().len(), 2);
        assert_eq!(p.sinks().len(), 2);
        assert!(!crate::analysis::reaches(&p, TaskId(0), TaskId(3)));
    }

    #[test]
    fn merge_series_collapses_a_pure_chain_to_one_task() {
        let mut b = PtgBuilder::new();
        let ids: Vec<TaskId> = (0..4)
            .map(|i| b.add_task(format!("t{i}"), 2.0 * (i + 1) as f64, 0.1 * i as f64))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        let g = b.build().unwrap();
        let (merged, groups) = merge_series(&g);
        assert_eq!(merged.task_count(), 1);
        assert_eq!(merged.edge_count(), 0);
        assert_eq!(groups[0], ids);
        // flop sums: 2+4+6+8 = 20; alpha is work-weighted:
        // (0·2 + 0.1·4 + 0.2·6 + 0.3·8)/20 = 0.2
        let t = merged.task(TaskId(0));
        assert!((t.flop - 20.0).abs() < 1e-12);
        assert!((t.alpha - 0.2).abs() < 1e-12);
    }

    #[test]
    fn merge_series_preserves_amdahl_times_at_shared_widths() {
        // t(chain, p) must equal t(merged, p) for every p under Amdahl:
        // sum over members of (α_i + (1−α_i)/p)·flop_i/s
        let mut b = PtgBuilder::new();
        let a = b.add_task("a", 6e9, 0.3);
        let c = b.add_task("c", 2e9, 0.05);
        b.add_edge(a, c).unwrap();
        let g = b.build().unwrap();
        let (merged, _) = merge_series(&g);
        let speed = 1e9;
        for p in [1u32, 2, 5, 16] {
            let direct: f64 = g
                .task_ids()
                .map(|v| {
                    let t = g.task(v);
                    (t.alpha + (1.0 - t.alpha) / p as f64) * t.flop / speed
                })
                .sum();
            let m = merged.task(TaskId(0));
            let combined = (m.alpha + (1.0 - m.alpha) / p as f64) * m.flop / speed;
            assert!((direct - combined).abs() < 1e-9, "p = {p}");
        }
    }

    #[test]
    fn merge_series_keeps_branching_structure() {
        // diamond with a 2-chain on one branch: only the chain merges.
        let mut b = PtgBuilder::new();
        let s = b.add_task("s", 1.0, 0.0);
        let x1 = b.add_task("x1", 1.0, 0.0);
        let x2 = b.add_task("x2", 1.0, 0.0);
        let y = b.add_task("y", 1.0, 0.0);
        let t = b.add_task("t", 1.0, 0.0);
        b.add_edge(s, x1).unwrap();
        b.add_edge(x1, x2).unwrap();
        b.add_edge(x2, t).unwrap();
        b.add_edge(s, y).unwrap();
        b.add_edge(y, t).unwrap();
        let g = b.build().unwrap();
        let (merged, groups) = merge_series(&g);
        // s, y, t stay; x1+x2 merge → 4 tasks.
        assert_eq!(merged.task_count(), 4);
        assert!(groups.iter().any(|grp| grp == &vec![x1, x2]));
        assert_eq!(merged.sources().len(), 1);
        assert_eq!(merged.sinks().len(), 1);
    }

    #[test]
    fn merge_series_on_a_diamond_is_identity_shaped() {
        let mut b = PtgBuilder::new();
        for i in 0..4 {
            b.add_task(format!("t{i}"), 1.0, 0.0);
        }
        b.add_edge(TaskId(0), TaskId(1)).unwrap();
        b.add_edge(TaskId(0), TaskId(2)).unwrap();
        b.add_edge(TaskId(1), TaskId(3)).unwrap();
        b.add_edge(TaskId(2), TaskId(3)).unwrap();
        let g = b.build().unwrap();
        let (merged, _) = merge_series(&g);
        assert_eq!(merged.task_count(), 4);
        assert_eq!(merged.edge_count(), 4);
    }

    #[test]
    fn composition_preserves_task_payloads() {
        let g = with_shortcut();
        let s = compose_serial(&g, &g);
        assert_eq!(s.task(TaskId(4)).name, g.task(TaskId(1)).name);
        assert_eq!(s.task(TaskId(4)).flop, g.task(TaskId(1)).flop);
    }
}
