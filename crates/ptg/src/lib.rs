//! Parallel task graph (PTG) substrate.
//!
//! A PTG is a directed acyclic graph whose nodes are *moldable* parallel
//! tasks: the number of processors used by a task is chosen before it starts
//! and stays fixed while it runs. Nodes carry a computational cost (FLOP) and
//! a parallelization parameter `alpha` (the non-parallelizable fraction used
//! by Amdahl-style execution-time models); edges encode data or control
//! dependencies.
//!
//! This crate provides the graph representation used by every other crate of
//! the workspace:
//!
//! * [`PtgBuilder`] / [`Ptg`] — construction and validated immutable graphs,
//! * [`topo`] — topological orders and cycle detection,
//! * [`levels`] — precedence levels (depth from the sources),
//! * [`critpath`] — bottom/top levels and critical paths for a given vector
//!   of task execution times,
//! * [`analysis`] — shape statistics (width, sources/sinks, reachability),
//! * [`dot`] — Graphviz export,
//! * [`transform`] — transitive reduction and serial/parallel composition.
//!
//! The graph is deliberately self-contained (no external graph crate): the
//! schedulers only need forward/backward adjacency, topological traversal and
//! longest-path computations, all of which live here.

pub mod analysis;
pub mod build;
pub mod critpath;
pub mod dot;
pub mod error;
pub mod graph;
pub mod levels;
pub mod node;
pub mod topo;
pub mod transform;

pub use build::PtgBuilder;
pub use error::PtgError;
pub use graph::Ptg;
pub use node::{Task, TaskId};
