//! Property-based tests for the PTG substrate.
//!
//! Strategy: generate random "forward" edge sets over `n` tasks (only edges
//! `i → j` with `i < j`), which are acyclic by construction, and check that
//! every derived structure (topological order, precedence levels, bottom
//! levels, reachability) satisfies its defining invariants.

use proptest::prelude::*;
use ptg::critpath::{bottom_levels, critical_path, critical_path_length, top_levels};
use ptg::levels::PrecedenceLevels;
use ptg::topo::is_valid_topological_order;
use ptg::{Ptg, PtgBuilder, TaskId};

/// Builds a PTG from a task count and a set of forward edge pairs.
fn build_graph(n: usize, edges: &[(usize, usize)], times_seed: u64) -> (Ptg, Vec<f64>) {
    let mut b = PtgBuilder::with_capacity(n);
    for i in 0..n {
        // Cheap deterministic pseudo-random costs derived from the seed.
        let flop = 1e9 * (1.0 + ((times_seed.wrapping_mul(i as u64 + 1) % 97) as f64));
        b.add_task(format!("t{i}"), flop, 0.1);
    }
    for &(i, j) in edges {
        let _ = b.add_edge_dedup(TaskId::from_index(i), TaskId::from_index(j));
    }
    let g = b.build().expect("forward edges are acyclic");
    let times: Vec<f64> = g.tasks().iter().map(|t| t.flop / 1e9).collect();
    (g, times)
}

/// Strategy producing (n, forward edges).
fn dag_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0usize..n, 0usize..n).prop_filter_map("forward edge", |(a, b)| {
            if a < b {
                Some((a, b))
            } else if b < a {
                Some((b, a))
            } else {
                None
            }
        });
        (Just(n), proptest::collection::vec(edge, 0..(n * 3)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn topo_order_is_always_valid((n, edges) in dag_strategy(), seed in 1u64..1000) {
        let (g, _) = build_graph(n, &edges, seed);
        prop_assert!(is_valid_topological_order(&g, g.topo_order()));
    }

    #[test]
    fn edge_and_task_counts_are_consistent((n, edges) in dag_strategy(), seed in 1u64..1000) {
        let (g, _) = build_graph(n, &edges, seed);
        prop_assert_eq!(g.task_count(), n);
        prop_assert_eq!(g.edges().count(), g.edge_count());
        let back_edges: usize = g.task_ids().map(|v| g.predecessors(v).len()).sum();
        prop_assert_eq!(back_edges, g.edge_count());
    }

    #[test]
    fn levels_strictly_increase_along_edges((n, edges) in dag_strategy(), seed in 1u64..1000) {
        let (g, _) = build_graph(n, &edges, seed);
        let lv = PrecedenceLevels::compute(&g);
        for (a, b) in g.edges() {
            prop_assert!(lv.level_of(a) < lv.level_of(b));
        }
        // every non-source has a predecessor exactly one level up
        for v in g.task_ids() {
            if lv.level_of(v) > 0 {
                prop_assert!(!g.predecessors(v).is_empty());
                let best = g.predecessors(v).iter().map(|&p| lv.level_of(p)).max().unwrap();
                prop_assert_eq!(best + 1, lv.level_of(v));
            }
        }
    }

    #[test]
    fn bottom_levels_dominate_successors((n, edges) in dag_strategy(), seed in 1u64..1000) {
        let (g, times) = build_graph(n, &edges, seed);
        let bl = bottom_levels(&g, &times);
        for (a, b) in g.edges() {
            // bl(a) >= t(a) + bl(b)
            prop_assert!(bl[a.index()] >= times[a.index()] + bl[b.index()] - 1e-9);
        }
        for v in g.task_ids() {
            prop_assert!(bl[v.index()] >= times[v.index()]);
        }
    }

    #[test]
    fn critical_path_realizes_cp_length((n, edges) in dag_strategy(), seed in 1u64..1000) {
        let (g, times) = build_graph(n, &edges, seed);
        let cp = critical_path(&g, &times);
        let len: f64 = cp.iter().map(|v| times[v.index()]).sum();
        let cp_len = critical_path_length(&g, &times);
        prop_assert!((len - cp_len).abs() < 1e-6 * cp_len.max(1.0),
            "path sum {} vs cp length {}", len, cp_len);
        // consecutive path elements must be actual edges
        for w in cp.windows(2) {
            prop_assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn top_plus_bottom_bounded_by_cp((n, edges) in dag_strategy(), seed in 1u64..1000) {
        let (g, times) = build_graph(n, &edges, seed);
        let bl = bottom_levels(&g, &times);
        let tl = top_levels(&g, &times);
        let cp = critical_path_length(&g, &times);
        for v in g.task_ids() {
            prop_assert!(tl[v.index()] + bl[v.index()] <= cp + 1e-6 * cp.max(1.0));
        }
    }

    #[test]
    fn descendants_and_ancestors_are_duals((n, edges) in dag_strategy(), seed in 1u64..1000) {
        let (g, _) = build_graph(n, &edges, seed);
        for v in g.task_ids() {
            for d in ptg::analysis::descendants(&g, v) {
                prop_assert!(ptg::analysis::ancestors(&g, d).contains(&v));
                prop_assert!(ptg::analysis::reaches(&g, v, d));
            }
        }
    }
}
