//! The two Grid'5000 clusters used throughout the paper's evaluation.

use crate::cluster::Cluster;

/// Chti (Lille): 20 nodes of 4.3 GFLOPS — the paper's *small* platform.
///
/// "The smaller cluster named Chti is located in Lille and comprises 20
/// computational nodes with a computing speed of 4.3 GFLOPS" (§IV-A). Peak
/// speeds were measured by the authors with HP-LinPACK/ACML.
pub fn chti() -> Cluster {
    Cluster::new("Chti", 20, 4.3)
}

/// Grelon (Nancy): 120 nodes of 3.1 GFLOPS — the paper's *large* platform.
pub fn grelon() -> Cluster {
    Cluster::new("Grelon", 120, 3.1)
}

/// Both paper platforms, small first (the order figures use).
pub fn paper_platforms() -> Vec<Cluster> {
    vec![chti(), grelon()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chti_matches_paper() {
        let c = chti();
        assert_eq!(c.processors, 20);
        assert!((c.speed_gflops - 4.3).abs() < 1e-12);
    }

    #[test]
    fn grelon_matches_paper() {
        let c = grelon();
        assert_eq!(c.processors, 120);
        assert!((c.speed_gflops - 3.1).abs() < 1e-12);
    }

    #[test]
    fn paper_platforms_ordered_small_to_large() {
        let ps = paper_platforms();
        assert_eq!(ps.len(), 2);
        assert!(ps[0].processors < ps[1].processors);
    }
}
