//! Multi-cluster grids (extension).
//!
//! The paper schedules onto a *single* homogeneous cluster, but its HCPA
//! baseline was designed for multi-cluster platforms like Grid'5000
//! (N'Takpé & Suter, ICPADS 2006). A [`Grid`] is a set of homogeneous
//! clusters, each internally uniform but differing in size and speed —
//! heterogeneity *between* clusters, homogeneity *within* them. Tasks run
//! inside one cluster (moldable tasks do not span the wide-area network).

use crate::cluster::Cluster;
use serde::{Deserialize, Serialize};

/// A multi-cluster platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    /// Grid name (for reports).
    pub name: String,
    /// The member clusters, in a fixed order (cluster ids are indices).
    pub clusters: Vec<Cluster>,
}

impl Grid {
    /// Creates a grid from at least one cluster.
    pub fn new(name: impl Into<String>, clusters: Vec<Cluster>) -> Self {
        assert!(!clusters.is_empty(), "a grid needs at least one cluster");
        Grid {
            name: name.into(),
            clusters,
        }
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Total processor count across all clusters.
    pub fn total_processors(&self) -> u32 {
        self.clusters.iter().map(|c| c.processors).sum()
    }

    /// The highest per-processor speed in the grid (the natural reference
    /// speed for equivalent-processor computations).
    pub fn reference_speed_gflops(&self) -> f64 {
        self.clusters
            .iter()
            .map(|c| c.speed_gflops)
            .fold(0.0, f64::max)
    }

    /// The grid's aggregate compute expressed in *equivalent processors* of
    /// the reference speed: `Σ_k n_k · s_k / s_ref` (rounded down, ≥ 1).
    pub fn equivalent_processors(&self) -> u32 {
        let s_ref = self.reference_speed_gflops();
        let eq: f64 = self
            .clusters
            .iter()
            .map(|c| c.processors as f64 * c.speed_gflops / s_ref)
            .sum();
        (eq.floor() as u32).max(1)
    }

    /// Aggregate peak performance in GFLOPS.
    pub fn peak_gflops(&self) -> f64 {
        self.clusters.iter().map(Cluster::peak_gflops).sum()
    }
}

/// The two-paper-cluster Grid'5000 excerpt: Chti (20 × 4.3) + Grelon
/// (120 × 3.1).
pub fn grid5000_pair() -> Grid {
    Grid::new(
        "Grid5000-pair",
        vec![crate::presets::chti(), crate::presets::grelon()],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_preset_aggregates_correctly() {
        let g = grid5000_pair();
        assert_eq!(g.cluster_count(), 2);
        assert_eq!(g.total_processors(), 140);
        assert_eq!(g.reference_speed_gflops(), 4.3);
        assert!((g.peak_gflops() - (20.0 * 4.3 + 120.0 * 3.1)).abs() < 1e-9);
    }

    #[test]
    fn equivalent_processors_normalize_by_reference_speed() {
        let g = grid5000_pair();
        // 20 · 1.0 + 120 · (3.1/4.3) ≈ 20 + 86.5 → 106
        assert_eq!(g.equivalent_processors(), 106);
    }

    #[test]
    fn single_cluster_grid_is_the_identity_case() {
        let g = Grid::new("solo", vec![crate::presets::chti()]);
        assert_eq!(g.equivalent_processors(), 20);
        assert_eq!(g.total_processors(), 20);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn empty_grid_is_rejected() {
        let _ = Grid::new("empty", vec![]);
    }
}
