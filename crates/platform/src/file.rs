//! Plain-text platform files.
//!
//! The paper's simulator "reads a platform file, containing the processors'
//! speed". Our format is a minimal line-oriented description:
//!
//! ```text
//! # comment lines start with '#'
//! name chti
//! processors 20
//! speed_gflops 4.3
//! ```
//!
//! Keys may appear in any order; `name` is optional (defaults to
//! `"cluster"`). Unknown keys are rejected to catch typos.

use crate::cluster::Cluster;
use std::fmt;

/// Errors from [`parse_platform`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformFileError {
    /// Line did not split into `key value`.
    Malformed { line: usize, content: String },
    /// Unrecognized key.
    UnknownKey { line: usize, key: String },
    /// Value failed to parse for the key.
    BadValue {
        line: usize,
        key: String,
        value: String,
    },
    /// A required key never appeared.
    Missing(&'static str),
    /// Same key given twice.
    Duplicate { line: usize, key: String },
}

impl fmt::Display for PlatformFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformFileError::Malformed { line, content } => {
                write!(f, "line {line}: expected 'key value', got {content:?}")
            }
            PlatformFileError::UnknownKey { line, key } => {
                write!(f, "line {line}: unknown key {key:?}")
            }
            PlatformFileError::BadValue { line, key, value } => {
                write!(f, "line {line}: bad value {value:?} for key {key:?}")
            }
            PlatformFileError::Missing(key) => write!(f, "missing required key {key:?}"),
            PlatformFileError::Duplicate { line, key } => {
                write!(f, "line {line}: duplicate key {key:?}")
            }
        }
    }
}

impl std::error::Error for PlatformFileError {}

/// Parses the platform-file format described in the module docs.
pub fn parse_platform(input: &str) -> Result<Cluster, PlatformFileError> {
    let mut name: Option<String> = None;
    let mut processors: Option<u32> = None;
    let mut speed: Option<f64> = None;
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) =
            line.split_once(char::is_whitespace)
                .ok_or_else(|| PlatformFileError::Malformed {
                    line: line_no,
                    content: line.to_string(),
                })?;
        let value = value.trim();
        match key {
            "name" => {
                if name.replace(value.to_string()).is_some() {
                    return Err(PlatformFileError::Duplicate {
                        line: line_no,
                        key: key.into(),
                    });
                }
            }
            "processors" => {
                // Validated here (not left to `Cluster::new`'s asserts):
                // a file is user input, so a zero processor count must
                // surface as an error, never a panic.
                let v: u32 = value.parse().ok().filter(|&v| v >= 1).ok_or_else(|| {
                    PlatformFileError::BadValue {
                        line: line_no,
                        key: key.into(),
                        value: value.into(),
                    }
                })?;
                if processors.replace(v).is_some() {
                    return Err(PlatformFileError::Duplicate {
                        line: line_no,
                        key: key.into(),
                    });
                }
            }
            "speed_gflops" => {
                let v: f64 = value
                    .parse()
                    .ok()
                    .filter(|&v: &f64| v.is_finite() && v > 0.0)
                    .ok_or_else(|| PlatformFileError::BadValue {
                        line: line_no,
                        key: key.into(),
                        value: value.into(),
                    })?;
                if speed.replace(v).is_some() {
                    return Err(PlatformFileError::Duplicate {
                        line: line_no,
                        key: key.into(),
                    });
                }
            }
            other => {
                return Err(PlatformFileError::UnknownKey {
                    line: line_no,
                    key: other.into(),
                })
            }
        }
    }
    let processors = processors.ok_or(PlatformFileError::Missing("processors"))?;
    let speed = speed.ok_or(PlatformFileError::Missing("speed_gflops"))?;
    Ok(Cluster::new(
        name.unwrap_or_else(|| "cluster".into()),
        processors,
        speed,
    ))
}

/// Renders a cluster in the platform-file format (round-trips through
/// [`parse_platform`]).
pub fn render_platform(c: &Cluster) -> String {
    format!(
        "name {}\nprocessors {}\nspeed_gflops {}\n",
        c.name, c.processors, c.speed_gflops
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::chti;

    #[test]
    fn parses_the_documented_example() {
        let c =
            parse_platform("# Grid'5000\nname Chti\nprocessors 20\nspeed_gflops 4.3\n").unwrap();
        assert_eq!(c, chti());
    }

    #[test]
    fn name_is_optional() {
        let c = parse_platform("processors 8\nspeed_gflops 1.0").unwrap();
        assert_eq!(c.name, "cluster");
    }

    #[test]
    fn round_trip() {
        let c = chti();
        assert_eq!(parse_platform(&render_platform(&c)).unwrap(), c);
    }

    #[test]
    fn missing_keys_are_reported() {
        assert_eq!(
            parse_platform("processors 8").unwrap_err(),
            PlatformFileError::Missing("speed_gflops")
        );
        assert_eq!(
            parse_platform("speed_gflops 2.0").unwrap_err(),
            PlatformFileError::Missing("processors")
        );
    }

    #[test]
    fn unknown_key_is_an_error() {
        assert!(matches!(
            parse_platform("cores 4").unwrap_err(),
            PlatformFileError::UnknownKey { key, .. } if key == "cores"
        ));
    }

    #[test]
    fn bad_value_is_reported_with_position() {
        let err = parse_platform("processors many\nspeed_gflops 1").unwrap_err();
        assert!(matches!(err, PlatformFileError::BadValue { line: 1, .. }));
    }

    #[test]
    fn out_of_domain_values_are_errors_not_panics() {
        // These parse as numbers but violate the cluster's invariants; a
        // platform file is user input, so they must surface as typed
        // errors (Cluster::new would assert).
        for bad in [
            "processors 0\nspeed_gflops 1",
            "processors 4\nspeed_gflops 0",
            "processors 4\nspeed_gflops -2.5",
            "processors 4\nspeed_gflops inf",
            "processors 4\nspeed_gflops NaN",
        ] {
            assert!(
                matches!(
                    parse_platform(bad).unwrap_err(),
                    PlatformFileError::BadValue { .. }
                ),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let err = parse_platform("processors 1\nprocessors 2\nspeed_gflops 1").unwrap_err();
        assert!(matches!(err, PlatformFileError::Duplicate { line: 2, .. }));
    }

    #[test]
    fn malformed_line_is_rejected() {
        assert!(matches!(
            parse_platform("justoneword").unwrap_err(),
            PlatformFileError::Malformed { line: 1, .. }
        ));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let c = parse_platform("\n# hi\n\nprocessors 2\n# mid\nspeed_gflops 3\n\n").unwrap();
        assert_eq!(c.processors, 2);
    }
}
