//! Homogeneous cluster platform model.
//!
//! The paper runs all experiments on models of two Grid'5000 production
//! clusters — **Chti** (Lille, 20 nodes × 4.3 GFLOPS) and **Grelon** (Nancy,
//! 120 nodes × 3.1 GFLOPS) — captured here as a processor count and a
//! per-processor speed. Processors are identical and fully connected;
//! communication costs are not modeled (they belong to the task execution
//! time model, per the paper).

pub mod cluster;
pub mod file;
pub mod grid;
pub mod presets;

pub use cluster::Cluster;
pub use grid::Grid;
pub use presets::{chti, grelon};
