//! The cluster type.

use serde::{Deserialize, Serialize};

/// A homogeneous cluster: `processors` identical processors of
/// `speed_gflops` each, fully interconnected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Cluster name (for reports).
    pub name: String,
    /// Number of processors `P ≥ 1`.
    pub processors: u32,
    /// Per-processor speed in GFLOPS (10⁹ FLOP per second).
    pub speed_gflops: f64,
}

impl Cluster {
    /// Creates a cluster, validating the parameters.
    pub fn new(name: impl Into<String>, processors: u32, speed_gflops: f64) -> Self {
        assert!(processors >= 1, "a cluster needs at least one processor");
        assert!(
            speed_gflops > 0.0 && speed_gflops.is_finite(),
            "processor speed must be positive, got {speed_gflops}"
        );
        Cluster {
            name: name.into(),
            processors,
            speed_gflops,
        }
    }

    /// Per-processor speed in FLOP/s (what execution-time models take).
    #[inline]
    pub fn speed_flops(&self) -> f64 {
        self.speed_gflops * 1e9
    }

    /// Aggregate peak performance in GFLOPS.
    pub fn peak_gflops(&self) -> f64 {
        self.speed_gflops * self.processors as f64
    }

    /// Time to execute `flop` operations on one processor, in seconds.
    pub fn seq_time(&self, flop: f64) -> f64 {
        flop / self.speed_flops()
    }
}

impl std::fmt::Display for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} × {:.1} GFLOPS)",
            self.name, self.processors, self.speed_gflops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_conversion_to_flops() {
        let c = Cluster::new("c", 4, 2.5);
        assert_eq!(c.speed_flops(), 2.5e9);
    }

    #[test]
    fn peak_is_count_times_speed() {
        let c = Cluster::new("c", 20, 4.3);
        assert!((c.peak_gflops() - 86.0).abs() < 1e-9);
    }

    #[test]
    fn seq_time_divides_by_speed() {
        let c = Cluster::new("c", 1, 2.0);
        assert_eq!(c.seq_time(4e9), 2.0);
    }

    #[test]
    fn display_is_informative() {
        let c = Cluster::new("chti", 20, 4.3);
        assert_eq!(c.to_string(), "chti (20 × 4.3 GFLOPS)");
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let _ = Cluster::new("bad", 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn negative_speed_rejected() {
        let _ = Cluster::new("bad", 1, -1.0);
    }
}
