//! End-to-end experiment pipeline: platform + PTG + algorithm → report.

use crate::executor::{execute_obs, SimReport};
use crate::faults::{FaultSpec, FaultSummary};
use emts::{ConvergenceTrace, Emts, EmtsConfig};
use exec_model::{ExecutionTimeModel, TimeMatrix};
use heuristics::{Allocator, Cpa, DeltaCritical, Hcpa, Mcpa, Mcpa2};
use obs::{NoopRecorder, Recorder};
use platform::Cluster;
use ptg::Ptg;
use sched::{Allocation, ListScheduler, Mapper, RescheduleError, Schedule};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Every scheduling algorithm the simulator can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// Plain CPA allocation.
    Cpa,
    /// HCPA allocation (single-cluster specialization).
    Hcpa,
    /// MCPA allocation with per-level bounds.
    Mcpa,
    /// MCPA2 allocation with work-proportional per-level bounds.
    Mcpa2,
    /// The Δ-critical sharing heuristic with Δ = 0.9.
    DeltaCritical,
    /// EMTS with the (5+25)-ES, 5 generations.
    Emts5,
    /// EMTS with the (10+100)-ES, 10 generations.
    Emts10,
}

impl Algorithm {
    /// All algorithms, heuristics first.
    pub const ALL: [Algorithm; 7] = [
        Algorithm::Cpa,
        Algorithm::Hcpa,
        Algorithm::Mcpa,
        Algorithm::Mcpa2,
        Algorithm::DeltaCritical,
        Algorithm::Emts5,
        Algorithm::Emts10,
    ];

    /// Canonical name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Cpa => "CPA",
            Algorithm::Hcpa => "HCPA",
            Algorithm::Mcpa => "MCPA",
            Algorithm::Mcpa2 => "MCPA2",
            Algorithm::DeltaCritical => "DeltaCritical",
            Algorithm::Emts5 => "EMTS5",
            Algorithm::Emts10 => "EMTS10",
        }
    }

    /// Parses a (case-insensitive) algorithm name.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "cpa" => Some(Algorithm::Cpa),
            "hcpa" => Some(Algorithm::Hcpa),
            "mcpa" => Some(Algorithm::Mcpa),
            "mcpa2" => Some(Algorithm::Mcpa2),
            "delta" | "deltacritical" | "delta-critical" => Some(Algorithm::DeltaCritical),
            "emts5" => Some(Algorithm::Emts5),
            "emts10" => Some(Algorithm::Emts10),
            _ => None,
        }
    }

    /// Computes the allocation for `g`. EMTS variants derive their RNG from
    /// `seed`; heuristics are deterministic and ignore it.
    pub fn allocate(self, g: &Ptg, matrix: &TimeMatrix, seed: u64) -> Allocation {
        self.allocate_obs(g, matrix, seed, &NoopRecorder).0
    }

    /// [`Algorithm::allocate`] with telemetry. EMTS variants thread the
    /// recorder through the evolutionary loop and also return their
    /// convergence trace; heuristics return `None`.
    pub fn allocate_obs<R: Recorder>(
        self,
        g: &Ptg,
        matrix: &TimeMatrix,
        seed: u64,
        rec: &R,
    ) -> (Allocation, Option<ConvergenceTrace>) {
        self.allocate_obs_workers(g, matrix, seed, None, rec)
    }

    /// [`Algorithm::allocate_obs`] with an explicit EMTS worker count.
    /// `Some(w)` pins the evaluation pool to `w` worker threads (so a
    /// flight-recorder export shows one lane per worker even on a
    /// single-core machine); `None` keeps the machine-derived default.
    /// Heuristics ignore the knob. Results are bit-identical either way.
    pub fn allocate_obs_workers<R: Recorder>(
        self,
        g: &Ptg,
        matrix: &TimeMatrix,
        seed: u64,
        workers: Option<usize>,
        rec: &R,
    ) -> (Allocation, Option<ConvergenceTrace>) {
        let emts = |cfg: EmtsConfig| {
            let emts = Emts::new(cfg);
            let r = match workers {
                Some(w) => emts.run_with_workers(g, matrix, seed, w, rec),
                None => emts.run_recorded(g, matrix, seed, rec),
            };
            (r.best, Some(r.trace))
        };
        match self {
            Algorithm::Cpa => (Cpa::default().allocate(g, matrix), None),
            Algorithm::Hcpa => (Hcpa.allocate(g, matrix), None),
            Algorithm::Mcpa => (Mcpa.allocate(g, matrix), None),
            Algorithm::Mcpa2 => (Mcpa2.allocate(g, matrix), None),
            Algorithm::DeltaCritical => (DeltaCritical::default().allocate(g, matrix), None),
            Algorithm::Emts5 => emts(EmtsConfig::emts5()),
            Algorithm::Emts10 => emts(EmtsConfig::emts10()),
        }
    }
}

/// A complete run record: the allocation, the schedule's makespan, the
/// replayed simulation report and wall-clock timings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Algorithm that produced the schedule.
    pub algorithm: String,
    /// Platform name.
    pub platform: String,
    /// Execution-time model name.
    pub model: String,
    /// Number of tasks of the PTG.
    pub tasks: usize,
    /// Final per-task allocation.
    pub allocation: Vec<u32>,
    /// Makespan reported by the mapper.
    pub makespan: f64,
    /// Replay report from the discrete-event executor.
    pub sim: SimReport,
    /// Seconds spent computing the allocation (the paper's §V-B timing).
    pub allocation_seconds: f64,
    /// Seconds spent mapping the final allocation.
    pub mapping_seconds: f64,
    /// Makespan-degradation distribution under fault injection (`None` —
    /// serialized as JSON `null` — outside `--faults` runs).
    pub faults: Option<FaultSummary>,
}

/// Runs `algorithm` for `g` on `cluster` under `model`, replays the
/// schedule in the discrete-event executor and cross-checks the makespan.
///
/// # Panics
/// Panics if the replayed makespan disagrees with the mapper's, or the
/// schedule fails dynamic validation — both indicate an internal bug, never
/// bad user input.
pub fn run<M: ExecutionTimeModel + ?Sized>(
    algorithm: Algorithm,
    g: &Ptg,
    cluster: &Cluster,
    model: &M,
    seed: u64,
) -> (RunReport, Schedule) {
    let (report, schedule, _) = run_obs(algorithm, g, cluster, model, seed, &NoopRecorder);
    (report, schedule)
}

/// [`run`] with telemetry: wraps the pipeline stages in `matrix` /
/// `allocate` / `map` / `replay` spans and surfaces the EMTS convergence
/// trace (if the algorithm is an EMTS variant) alongside the report.
pub fn run_obs<M: ExecutionTimeModel + ?Sized, R: Recorder>(
    algorithm: Algorithm,
    g: &Ptg,
    cluster: &Cluster,
    model: &M,
    seed: u64,
    rec: &R,
) -> (RunReport, Schedule, Option<ConvergenceTrace>) {
    run_obs_workers(algorithm, g, cluster, model, seed, None, rec)
}

/// [`run_obs`] with an explicit EMTS worker count (see
/// [`Algorithm::allocate_obs_workers`]); `None` keeps the default.
pub fn run_obs_workers<M: ExecutionTimeModel + ?Sized, R: Recorder>(
    algorithm: Algorithm,
    g: &Ptg,
    cluster: &Cluster,
    model: &M,
    seed: u64,
    workers: Option<usize>,
    rec: &R,
) -> (RunReport, Schedule, Option<ConvergenceTrace>) {
    let matrix = rec.time("matrix", || {
        TimeMatrix::compute(g, model, cluster.speed_flops(), cluster.processors)
    });
    // lint:allow(src-timing) -- runner reports wall-clock phase timings.
    let t0 = Instant::now();
    let (alloc, trace) = {
        let _span = rec.span("allocate");
        algorithm.allocate_obs_workers(g, &matrix, seed, workers, rec)
    };
    let allocation_seconds = t0.elapsed().as_secs_f64();
    // lint:allow(src-timing)
    let t1 = Instant::now();
    let schedule = rec.time("map", || ListScheduler.map(g, &matrix, &alloc));
    let mapping_seconds = t1.elapsed().as_secs_f64();
    let makespan = schedule.makespan();
    let sim = {
        let _span = rec.span("replay");
        execute_obs(g, &schedule, rec).expect("mapper emits executable schedules")
    };
    if R::ENABLED {
        rec.gauge("run.makespan", makespan);
    }
    assert!(
        (sim.makespan - makespan).abs() <= 1e-9 * makespan.max(1.0),
        "simulator ({}) and mapper ({}) disagree",
        sim.makespan,
        makespan
    );
    (
        RunReport {
            algorithm: algorithm.name().to_string(),
            platform: cluster.name.clone(),
            model: model.name().to_string(),
            tasks: g.task_count(),
            allocation: alloc.as_slice().to_vec(),
            makespan,
            sim,
            allocation_seconds,
            mapping_seconds,
            faults: None,
        },
        schedule,
        trace,
    )
}

/// [`run_obs`] followed by `trials` seeded fault-injection replays of the
/// produced schedule; the degradation distribution lands in
/// `report.faults`. Deterministic for a fixed `(algorithm, seed, spec)`.
/// Fails with [`RescheduleError::NoSurvivors`] when a trial kills the
/// whole platform (a `kill_all` spec).
#[allow(clippy::too_many_arguments)] // mirrors run_obs + the fault knobs
pub fn run_with_faults<M: ExecutionTimeModel + ?Sized, R: Recorder>(
    algorithm: Algorithm,
    g: &Ptg,
    cluster: &Cluster,
    model: &M,
    seed: u64,
    spec: &FaultSpec,
    trials: usize,
    rec: &R,
) -> Result<(RunReport, Schedule, Option<ConvergenceTrace>), RescheduleError> {
    run_with_faults_workers(algorithm, g, cluster, model, seed, spec, trials, None, rec)
}

/// [`run_with_faults`] with an explicit EMTS worker count (see
/// [`Algorithm::allocate_obs_workers`]); `None` keeps the default.
#[allow(clippy::too_many_arguments)] // mirrors run_with_faults + workers
pub fn run_with_faults_workers<M: ExecutionTimeModel + ?Sized, R: Recorder>(
    algorithm: Algorithm,
    g: &Ptg,
    cluster: &Cluster,
    model: &M,
    seed: u64,
    spec: &FaultSpec,
    trials: usize,
    workers: Option<usize>,
    rec: &R,
) -> Result<(RunReport, Schedule, Option<ConvergenceTrace>), RescheduleError> {
    let (mut report, schedule, trace) =
        run_obs_workers(algorithm, g, cluster, model, seed, workers, rec);
    let matrix = TimeMatrix::compute(g, model, cluster.speed_flops(), cluster.processors);
    let alloc = Allocation::from_vec(report.allocation.clone());
    let summary = rec.time("faults", || {
        crate::faults::fault_trials_obs(g, &matrix, &schedule, &alloc, spec, trials, rec)
    })?;
    if R::ENABLED {
        rec.add("faults.trials", summary.trials as u64);
        rec.add("faults.retries", summary.retries as u64);
        rec.add("faults.tasks_killed", summary.tasks_killed as u64);
        rec.add(
            "faults.processor_failures",
            summary.processor_failures as u64,
        );
        rec.add("faults.reschedules", summary.reschedules as u64);
        rec.gauge("faults.mean_degradation", summary.mean_degradation);
        rec.gauge("faults.p95_degradation", summary.p95_degradation);
        rec.gauge("faults.worst_degradation", summary.worst_degradation);
        type KindNames = (&'static str, &'static str, &'static str);
        let kind_rows: [(KindNames, crate::faults::KindStat); 4] = [
            (
                (
                    "faults.kind.crash.trials_affected",
                    "faults.kind.crash.events",
                    "faults.kind.crash.mean_degradation",
                ),
                summary.kinds.crash,
            ),
            (
                (
                    "faults.kind.straggler.trials_affected",
                    "faults.kind.straggler.events",
                    "faults.kind.straggler.mean_degradation",
                ),
                summary.kinds.straggler,
            ),
            (
                (
                    "faults.kind.perturb.trials_affected",
                    "faults.kind.perturb.events",
                    "faults.kind.perturb.mean_degradation",
                ),
                summary.kinds.perturb,
            ),
            (
                (
                    "faults.kind.node_failure.trials_affected",
                    "faults.kind.node_failure.events",
                    "faults.kind.node_failure.mean_degradation",
                ),
                summary.kinds.node_failure,
            ),
        ];
        for ((trials_name, events_name, mean_name), stat) in kind_rows {
            rec.add(trials_name, stat.trials_affected as u64);
            rec.add(events_name, stat.events as u64);
            rec.gauge(mean_name, stat.mean_degradation);
        }
    }
    report.faults = Some(summary);
    Ok((report, schedule, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use exec_model::{PaperModel, SyntheticModel};
    use platform::presets::{chti, grelon};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use workloads::{fft::fft_ptg, CostConfig};

    fn graph() -> Ptg {
        fft_ptg(4, &CostConfig::default(), &mut ChaCha8Rng::seed_from_u64(8))
    }

    #[test]
    fn algorithm_names_round_trip() {
        for alg in Algorithm::ALL {
            assert_eq!(Algorithm::parse(alg.name()), Some(alg));
        }
        assert_eq!(Algorithm::parse("emts5"), Some(Algorithm::Emts5));
        assert_eq!(Algorithm::parse("nope"), None);
    }

    #[test]
    fn every_algorithm_produces_a_consistent_report() {
        let g = graph();
        let cluster = chti();
        let model = SyntheticModel::default();
        for alg in Algorithm::ALL {
            let (report, schedule) = run(alg, &g, &cluster, &model, 1);
            assert_eq!(report.algorithm, alg.name());
            assert_eq!(report.tasks, g.task_count());
            assert_eq!(report.allocation.len(), g.task_count());
            assert!((report.sim.makespan - schedule.makespan()).abs() < 1e-9);
            assert!(report.makespan > 0.0);
        }
    }

    #[test]
    fn emts_beats_or_matches_its_seed_heuristics_in_the_pipeline() {
        let g = graph();
        let cluster = grelon();
        let model = SyntheticModel::default();
        let (mcpa, _) = run(Algorithm::Mcpa, &g, &cluster, &model, 1);
        let (hcpa, _) = run(Algorithm::Hcpa, &g, &cluster, &model, 1);
        let (emts, _) = run(Algorithm::Emts5, &g, &cluster, &model, 1);
        assert!(emts.makespan <= mcpa.makespan + 1e-9);
        assert!(emts.makespan <= hcpa.makespan + 1e-9);
    }

    #[test]
    fn report_serializes_to_json() {
        let g = graph();
        let (report, _) = run(
            Algorithm::Mcpa,
            &g,
            &chti(),
            PaperModel::Model1.instantiate().as_ref(),
            1,
        );
        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.algorithm, "MCPA");
        assert_eq!(back.makespan, report.makespan);
    }

    #[test]
    fn fault_runs_attach_a_summary_and_are_reproducible() {
        let g = graph();
        let cluster = chti();
        let model = SyntheticModel::default();
        let spec = crate::faults::FaultSpec::parse("seed=5,perturb=0.3,crash=0.1").unwrap();
        let (a, _, _) = run_with_faults(
            Algorithm::Mcpa,
            &g,
            &cluster,
            &model,
            1,
            &spec,
            8,
            &obs::NoopRecorder,
        )
        .unwrap();
        let fa = a.faults.as_ref().expect("fault summary attached");
        assert_eq!(fa.trials, 8);
        assert!(fa.mean_degradation >= 1.0);
        assert!(fa.worst_degradation >= fa.p95_degradation);
        let (b, _, _) = run_with_faults(
            Algorithm::Mcpa,
            &g,
            &cluster,
            &model,
            1,
            &spec,
            8,
            &obs::NoopRecorder,
        )
        .unwrap();
        assert_eq!(a.faults, b.faults);
        // JSON round-trip keeps the summary; fault-free reports omit it.
        let json = serde_json::to_string(&a).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.faults, a.faults);
        let (plain, _) = run(Algorithm::Mcpa, &g, &cluster, &model, 1);
        let plain_json = serde_json::to_string(&plain).unwrap();
        assert!(plain_json.contains("\"faults\":null"));
        let back: RunReport = serde_json::from_str(&plain_json).unwrap();
        assert_eq!(back.faults, None);
    }

    #[test]
    fn emts_runs_are_seed_reproducible_end_to_end() {
        let g = graph();
        let model = SyntheticModel::default();
        let (a, _) = run(Algorithm::Emts5, &g, &chti(), &model, 77);
        let (b, _) = run(Algorithm::Emts5, &g, &chti(), &model, 77);
        assert_eq!(a.allocation, b.allocation);
        assert_eq!(a.makespan, b.makespan);
    }
}
