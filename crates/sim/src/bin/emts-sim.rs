//! `emts-sim` — the paper's simulator as a command-line tool.
//!
//! Reads a platform file and a PTG file, runs a scheduling algorithm under
//! a chosen execution-time model, replays the schedule in the
//! discrete-event executor, and prints the run report (and optionally a
//! Gantt chart).
//!
//! ```text
//! usage: emts-sim --platform <file> --ptg <file>
//!                 [--algorithm cpa|hcpa|mcpa|delta|emts5|emts10]
//!                 [--model model1|model2] [--seed <u64>]
//!                 [--faults <spec>] [--trials <n>] [--workers <n>]
//!                 [--gantt] [--json] [--report <out.json>]
//!                 [--trace <out.trace.json>]
//! ```
//!
//! `--report` writes a schema-versioned [`obs::RunReport`] (phase spans,
//! counters, histograms, convergence trace) that `emts-report` can
//! pretty-print or diff.
//!
//! `--faults` replays the produced schedule under seeded fault injection
//! (`--trials` independent realizations, default 20) and reports the
//! makespan-degradation distribution; see [`sim::faults::FaultSpec::parse`]
//! for the spec grammar, e.g. `--faults "seed=7,perturb=0.2,crash=0.05"`.
//!
//! `--online` switches to the continuous-operations simulator
//! ([`sim::online`]): no `--ptg` (jobs are drawn from the seeded streaming
//! corpus), a rolling-horizon controller re-optimizes the backlog every
//! `--epoch` simulated seconds within a wall-clock `--epoch-budget-ms`,
//! and `--churn` makes nodes fail/recover/join mid-run. `--reactive-only`
//! runs the no-optimizer baseline; `--sabotage-ring0` deterministically
//! forces watchdog degradation in the listed epochs.
//!
//! `--trace` attaches an [`obs::FlightRecorder`] to the whole run and
//! writes a Chrome Trace Event JSON file (load it at `ui.perfetto.dev` or
//! `chrome://tracing`) with one lane per thread. Combine with
//! `--workers <n>` — which pins the EMTS evaluation pool to `n` worker
//! threads instead of the machine-derived default — to see each pool
//! worker's batches on its own lane. Neither flag changes any result.

use emts::EmtsConfig;
use exec_model::PaperModel;
use obs::{FlightRecorder, Recorder, StatsRecorder, TeeRecorder};
use platform::file::parse_platform;
use serde::Serialize;
use sim::faults::{ChurnSpec, FaultSpec};
use sim::formats::parse_ptg;
use sim::online::{run_online, OnlineConfig, OnlineReport};
use sim::runner::{run_obs_workers, run_with_faults_workers, Algorithm};
use std::time::Duration;

struct Args {
    platform: String,
    ptg: Option<String>,
    algorithm: Algorithm,
    model: PaperModel,
    seed: u64,
    faults: Option<FaultSpec>,
    trials: usize,
    workers: Option<usize>,
    gantt: bool,
    json: bool,
    report: Option<String>,
    trace: Option<String>,
    online: bool,
    jobs: u64,
    arrival_mean: f64,
    epoch: f64,
    epoch_budget_ms: Option<u64>,
    churn: ChurnSpec,
    slo: f64,
    reactive_only: bool,
    sabotage_ring0: Vec<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut platform = None;
    let mut ptg = None;
    let mut algorithm = Algorithm::Emts5;
    let mut model = PaperModel::Model2;
    let mut seed = 2011u64;
    let mut faults = None;
    let mut trials = 20usize;
    let mut workers = None;
    let mut gantt = false;
    let mut json = false;
    let mut report = None;
    let mut trace = None;
    let mut online = false;
    let mut jobs = 8u64;
    let mut arrival_mean = 30.0f64;
    let mut epoch = 60.0f64;
    let mut epoch_budget_ms = None;
    let mut churn = ChurnSpec::default();
    let mut slo = 4.0f64;
    let mut reactive_only = false;
    let mut sabotage_ring0 = Vec::new();
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--platform" => platform = Some(iter.next().ok_or("--platform needs a file")?),
            "--ptg" => ptg = Some(iter.next().ok_or("--ptg needs a file")?),
            "--algorithm" => {
                let v = iter.next().ok_or("--algorithm needs a name")?;
                algorithm =
                    Algorithm::parse(&v).ok_or_else(|| format!("unknown algorithm {v:?}"))?;
            }
            "--model" => {
                let v = iter.next().ok_or("--model needs a name")?;
                model = PaperModel::parse(&v).ok_or_else(|| format!("unknown model {v:?}"))?;
            }
            "--seed" => {
                seed = iter
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "bad --seed value".to_string())?;
            }
            "--faults" => {
                let v = iter.next().ok_or("--faults needs a spec")?;
                faults = Some(FaultSpec::parse(&v).map_err(|e| e.to_string())?);
            }
            "--trials" => {
                trials = iter
                    .next()
                    .ok_or("--trials needs a count")?
                    .parse()
                    .ok()
                    .filter(|&t| t >= 1)
                    .ok_or("bad --trials value (need an integer ≥ 1)")?;
            }
            "--workers" => {
                workers = Some(
                    iter.next()
                        .ok_or("--workers needs a count")?
                        .parse()
                        .map_err(|_| "bad --workers value".to_string())?,
                );
            }
            "--gantt" => gantt = true,
            "--json" => json = true,
            "--report" => report = Some(iter.next().ok_or("--report needs a file")?),
            "--trace" => trace = Some(iter.next().ok_or("--trace needs a file")?),
            "--online" => online = true,
            "--jobs" => {
                jobs = iter
                    .next()
                    .ok_or("--jobs needs a count")?
                    .parse()
                    .map_err(|_| "bad --jobs value".to_string())?;
            }
            "--arrival-mean" => {
                arrival_mean = iter
                    .next()
                    .ok_or("--arrival-mean needs seconds")?
                    .parse()
                    .ok()
                    .filter(|&x: &f64| x.is_finite() && x >= 0.0)
                    .ok_or("bad --arrival-mean value (need seconds ≥ 0)")?;
            }
            "--epoch" => {
                epoch = iter
                    .next()
                    .ok_or("--epoch needs seconds")?
                    .parse()
                    .ok()
                    .filter(|&x: &f64| x.is_finite() && x > 0.0)
                    .ok_or("bad --epoch value (need seconds > 0)")?;
            }
            "--epoch-budget-ms" => {
                epoch_budget_ms = Some(
                    iter.next()
                        .ok_or("--epoch-budget-ms needs milliseconds")?
                        .parse()
                        .ok()
                        .filter(|&ms| ms >= 1u64)
                        .ok_or("bad --epoch-budget-ms value (need an integer ≥ 1)")?,
                );
            }
            "--churn" => {
                let v = iter.next().ok_or("--churn needs a spec")?;
                churn = ChurnSpec::parse(&v).map_err(|e| e.to_string())?;
            }
            "--slo" => {
                slo = iter
                    .next()
                    .ok_or("--slo needs a factor")?
                    .parse()
                    .ok()
                    .filter(|&x: &f64| x.is_finite() && x > 0.0)
                    .ok_or("bad --slo value (need a factor > 0)")?;
            }
            "--reactive-only" => reactive_only = true,
            "--sabotage-ring0" => {
                let v = iter.next().ok_or("--sabotage-ring0 needs epoch indices")?;
                sabotage_ring0 = v
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| "bad --sabotage-ring0 value (comma-separated epochs)")?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if online {
        if ptg.is_some() {
            return Err("--online draws jobs from the streaming corpus; drop --ptg".into());
        }
        if faults.is_some() || gantt {
            return Err("--online is incompatible with --faults and --gantt (use --churn)".into());
        }
    }
    Ok(Args {
        platform: platform.ok_or("--platform is required")?,
        ptg: if online {
            None
        } else {
            Some(ptg.ok_or("--ptg is required")?)
        },
        algorithm,
        model,
        seed,
        faults,
        trials,
        workers,
        gantt,
        json,
        report,
        trace,
        online,
        jobs,
        arrival_mean,
        epoch,
        epoch_budget_ms,
        churn,
        slo,
        reactive_only,
        sabotage_ring0,
    })
}

/// Builds the [`OnlineConfig`] for `--online` from the parsed flags.
fn online_config(args: &Args) -> Result<OnlineConfig, String> {
    let emts = if args.reactive_only {
        None
    } else {
        match args.algorithm {
            Algorithm::Emts5 => Some(EmtsConfig::emts5()),
            Algorithm::Emts10 => Some(EmtsConfig::emts10()),
            other => {
                return Err(format!(
                    "--online needs an EMTS algorithm for ring 0 (got {}); \
                     pass --algorithm emts5|emts10 or --reactive-only",
                    other.name()
                ))
            }
        }
    };
    Ok(OnlineConfig {
        seed: args.seed,
        jobs: args.jobs,
        arrival_mean: args.arrival_mean,
        epoch: args.epoch,
        epoch_budget: args.epoch_budget_ms.map(Duration::from_millis),
        churn: args.churn.clone(),
        slo_factor: args.slo,
        emts,
        sabotage_ring0: args.sabotage_ring0.clone(),
        ..OnlineConfig::default()
    })
}

/// Runs the online control loop under `rec` and prints its report.
fn run_online_mode<R: Recorder>(
    args: &Args,
    cluster: &platform::Cluster,
    model: &dyn exec_model::ExecutionTimeModel,
    cfg: &OnlineConfig,
    rec: &R,
) -> OnlineReport {
    let report = run_online(cluster, model, cfg, rec).unwrap_or_else(|e| {
        // One line, non-zero exit: the cluster died for good mid-run.
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("reports serialize")
        );
    } else {
        let t = &report.totals;
        println!(
            "online {} on {}: {} jobs, makespan {:.3} s",
            report.mode, cluster, t.jobs, t.makespan
        );
        println!(
            "queue wait mean {:.3} s, stretch mean {:.3} (p95 {:.3}), \
             utilization {:.1} %, SLO attainment {:.1} %",
            t.queue_wait_mean,
            t.stretch_mean,
            t.stretch_p95,
            100.0 * t.utilization,
            100.0 * t.slo_attainment
        );
        println!(
            "epochs: {} decisions (ring0 {}, ring1 {}, ring2 {}), {} idle, \
             {} overruns, {} degraded, {} reactive replans",
            t.decision_epochs,
            t.ring0_epochs,
            t.ring1_epochs,
            t.ring2_epochs,
            t.idle_epochs,
            t.deadline_overruns,
            t.watchdog_degraded,
            t.reactive_replans
        );
        println!(
            "churn [{}]: {} failures, {} recoveries, {} joins, {} tasks killed",
            report.churn, t.node_failures, t.node_recoveries, t.node_joins, t.tasks_killed
        );
    }
    report
}

/// Runs the pipeline under `rec` — generic so the same code path serves
/// the plain [`StatsRecorder`] and the `--trace` tee into a
/// [`FlightRecorder`].
fn run_recorded<R: Recorder>(
    args: &Args,
    graph: &ptg::Ptg,
    cluster: &platform::Cluster,
    model: &dyn exec_model::ExecutionTimeModel,
    rec: &R,
) -> (
    sim::RunReport,
    sched::Schedule,
    Option<emts::ConvergenceTrace>,
) {
    match &args.faults {
        Some(spec) => run_with_faults_workers(
            args.algorithm,
            graph,
            cluster,
            model,
            args.seed,
            spec,
            args.trials,
            args.workers,
            rec,
        )
        .unwrap_or_else(|e| {
            // One line, non-zero exit: a kill_all trial left no platform.
            eprintln!("error: {e}");
            std::process::exit(1);
        }),
        None => run_obs_workers(
            args.algorithm,
            graph,
            cluster,
            model,
            args.seed,
            args.workers,
            rec,
        ),
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: emts-sim --platform <file> --ptg <file> \
                 [--algorithm cpa|hcpa|mcpa|delta|emts5|emts10] \
                 [--model model1|model2] [--seed <u64>] \
                 [--faults <spec>] [--trials <n>] [--workers <n>] \
                 [--gantt] [--json] [--report <out.json>] \
                 [--trace <out.trace.json>]\n\
                 \x20      emts-sim --platform <file> --online [--jobs <n>] \
                 [--arrival-mean <s>] [--epoch <s>] [--epoch-budget-ms <ms>] \
                 [--churn <spec>] [--slo <factor>] [--reactive-only] \
                 [--sabotage-ring0 <e,e,...>] [--seed <u64>] [--json] \
                 [--report <out.json>] [--trace <out.trace.json>]"
            );
            std::process::exit(2);
        }
    };
    let platform_text = std::fs::read_to_string(&args.platform).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", args.platform);
        std::process::exit(1);
    });
    let cluster = parse_platform(&platform_text).unwrap_or_else(|e| {
        eprintln!("{}: {e}", args.platform);
        std::process::exit(1);
    });
    let model = args.model.instantiate();
    let rec = StatsRecorder::new();
    let flight = args.trace.as_ref().map(|_| FlightRecorder::new());

    if args.online {
        let cfg = online_config(&args).unwrap_or_else(|msg| {
            eprintln!("error: {msg}");
            std::process::exit(2);
        });
        let online_report = match &flight {
            Some(f) => {
                run_online_mode(&args, &cluster, model.as_ref(), &cfg, &TeeRecorder(&rec, f))
            }
            None => run_online_mode(&args, &cluster, model.as_ref(), &cfg, &rec),
        };
        if let (Some(path), Some(f)) = (&args.trace, &flight) {
            if let Err(e) = std::fs::write(path, f.chrome_trace_json()) {
                eprintln!("cannot write trace {path}: {e}");
                std::process::exit(1);
            }
        }
        if let Some(path) = &args.report {
            let mut obs_report = rec.report("emts-sim-online");
            obs_report.meta.insert("mode".into(), online_report.mode);
            obs_report.meta.insert("seed".into(), args.seed.to_string());
            obs_report.meta.insert("jobs".into(), args.jobs.to_string());
            obs_report
                .meta
                .insert("churn".into(), args.churn.canonical());
            if let Err(e) = obs_report.save(std::path::Path::new(path)) {
                eprintln!("cannot write report {path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let ptg_path = args.ptg.as_deref().expect("one-shot mode has a PTG");
    let ptg_text = std::fs::read_to_string(ptg_path).unwrap_or_else(|e| {
        eprintln!("cannot read {ptg_path}: {e}");
        std::process::exit(1);
    });
    let graph = parse_ptg(&ptg_text).unwrap_or_else(|e| {
        eprintln!("{ptg_path}: {e}");
        std::process::exit(1);
    });
    let (report, schedule, trace) = match &flight {
        Some(f) => run_recorded(
            &args,
            &graph,
            &cluster,
            model.as_ref(),
            &TeeRecorder(&rec, f),
        ),
        None => run_recorded(&args, &graph, &cluster, model.as_ref(), &rec),
    };

    if let (Some(path), Some(f)) = (&args.trace, &flight) {
        if let Err(e) = std::fs::write(path, f.chrome_trace_json()) {
            eprintln!("cannot write trace {path}: {e}");
            std::process::exit(1);
        }
    }

    if let Some(path) = &args.report {
        let mut obs_report = rec.report("emts-sim");
        obs_report
            .meta
            .insert("algorithm".into(), report.algorithm.clone());
        obs_report
            .meta
            .insert("platform".into(), report.platform.clone());
        obs_report.meta.insert("model".into(), report.model.clone());
        obs_report.meta.insert("seed".into(), args.seed.to_string());
        obs_report
            .meta
            .insert("tasks".into(), report.tasks.to_string());
        if let Some(w) = args.workers {
            obs_report.meta.insert("workers".into(), w.to_string());
        }
        obs_report.convergence = trace.as_ref().map(|t| t.to_value());
        if let Err(e) = obs_report.save(std::path::Path::new(path)) {
            eprintln!("cannot write report {path}: {e}");
            std::process::exit(1);
        }
    }

    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("reports serialize")
        );
    } else {
        println!(
            "{} on {} under {}: {} tasks, makespan {:.3} s, utilization {:.1} %",
            report.algorithm,
            cluster,
            report.model,
            report.tasks,
            report.makespan,
            100.0 * report.sim.utilization()
        );
        println!("allocation: {:?}", report.allocation);
        println!(
            "allocation step {:.1} ms, mapping step {:.2} ms",
            report.allocation_seconds * 1e3,
            report.mapping_seconds * 1e3
        );
        if let Some(f) = &report.faults {
            println!(
                "faults [{}] over {} trials: degradation mean {:.4}x, p95 {:.4}x, worst {:.4}x \
                 ({} retries, {} kills, {} processor failures, {} reschedules)",
                f.spec,
                f.trials,
                f.mean_degradation,
                f.p95_degradation,
                f.worst_degradation,
                f.retries,
                f.tasks_killed,
                f.processor_failures,
                f.reschedules
            );
        }
    }
    if args.gantt {
        println!("\n{}", sched::gantt::ascii_gantt(&schedule, 100));
    }
}
