//! `emts-sim` — the paper's simulator as a command-line tool.
//!
//! Reads a platform file and a PTG file, runs a scheduling algorithm under
//! a chosen execution-time model, replays the schedule in the
//! discrete-event executor, and prints the run report (and optionally a
//! Gantt chart).
//!
//! ```text
//! usage: emts-sim --platform <file> --ptg <file>
//!                 [--algorithm cpa|hcpa|mcpa|delta|emts5|emts10]
//!                 [--model model1|model2] [--seed <u64>]
//!                 [--faults <spec>] [--trials <n>] [--workers <n>]
//!                 [--gantt] [--json] [--report <out.json>]
//!                 [--trace <out.trace.json>]
//! ```
//!
//! `--report` writes a schema-versioned [`obs::RunReport`] (phase spans,
//! counters, histograms, convergence trace) that `emts-report` can
//! pretty-print or diff.
//!
//! `--faults` replays the produced schedule under seeded fault injection
//! (`--trials` independent realizations, default 20) and reports the
//! makespan-degradation distribution; see [`sim::faults::FaultSpec::parse`]
//! for the spec grammar, e.g. `--faults "seed=7,perturb=0.2,crash=0.05"`.
//!
//! `--trace` attaches an [`obs::FlightRecorder`] to the whole run and
//! writes a Chrome Trace Event JSON file (load it at `ui.perfetto.dev` or
//! `chrome://tracing`) with one lane per thread. Combine with
//! `--workers <n>` — which pins the EMTS evaluation pool to `n` worker
//! threads instead of the machine-derived default — to see each pool
//! worker's batches on its own lane. Neither flag changes any result.

use exec_model::PaperModel;
use obs::{FlightRecorder, Recorder, StatsRecorder, TeeRecorder};
use platform::file::parse_platform;
use serde::Serialize;
use sim::faults::FaultSpec;
use sim::formats::parse_ptg;
use sim::runner::{run_obs_workers, run_with_faults_workers, Algorithm};

struct Args {
    platform: String,
    ptg: String,
    algorithm: Algorithm,
    model: PaperModel,
    seed: u64,
    faults: Option<FaultSpec>,
    trials: usize,
    workers: Option<usize>,
    gantt: bool,
    json: bool,
    report: Option<String>,
    trace: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut platform = None;
    let mut ptg = None;
    let mut algorithm = Algorithm::Emts5;
    let mut model = PaperModel::Model2;
    let mut seed = 2011u64;
    let mut faults = None;
    let mut trials = 20usize;
    let mut workers = None;
    let mut gantt = false;
    let mut json = false;
    let mut report = None;
    let mut trace = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--platform" => platform = Some(iter.next().ok_or("--platform needs a file")?),
            "--ptg" => ptg = Some(iter.next().ok_or("--ptg needs a file")?),
            "--algorithm" => {
                let v = iter.next().ok_or("--algorithm needs a name")?;
                algorithm =
                    Algorithm::parse(&v).ok_or_else(|| format!("unknown algorithm {v:?}"))?;
            }
            "--model" => {
                let v = iter.next().ok_or("--model needs a name")?;
                model = PaperModel::parse(&v).ok_or_else(|| format!("unknown model {v:?}"))?;
            }
            "--seed" => {
                seed = iter
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "bad --seed value".to_string())?;
            }
            "--faults" => {
                let v = iter.next().ok_or("--faults needs a spec")?;
                faults = Some(FaultSpec::parse(&v).map_err(|e| e.to_string())?);
            }
            "--trials" => {
                trials = iter
                    .next()
                    .ok_or("--trials needs a count")?
                    .parse()
                    .ok()
                    .filter(|&t| t >= 1)
                    .ok_or("bad --trials value (need an integer ≥ 1)")?;
            }
            "--workers" => {
                workers = Some(
                    iter.next()
                        .ok_or("--workers needs a count")?
                        .parse()
                        .map_err(|_| "bad --workers value".to_string())?,
                );
            }
            "--gantt" => gantt = true,
            "--json" => json = true,
            "--report" => report = Some(iter.next().ok_or("--report needs a file")?),
            "--trace" => trace = Some(iter.next().ok_or("--trace needs a file")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(Args {
        platform: platform.ok_or("--platform is required")?,
        ptg: ptg.ok_or("--ptg is required")?,
        algorithm,
        model,
        seed,
        faults,
        trials,
        workers,
        gantt,
        json,
        report,
        trace,
    })
}

/// Runs the pipeline under `rec` — generic so the same code path serves
/// the plain [`StatsRecorder`] and the `--trace` tee into a
/// [`FlightRecorder`].
fn run_recorded<R: Recorder>(
    args: &Args,
    graph: &ptg::Ptg,
    cluster: &platform::Cluster,
    model: &dyn exec_model::ExecutionTimeModel,
    rec: &R,
) -> (
    sim::RunReport,
    sched::Schedule,
    Option<emts::ConvergenceTrace>,
) {
    match &args.faults {
        Some(spec) => run_with_faults_workers(
            args.algorithm,
            graph,
            cluster,
            model,
            args.seed,
            spec,
            args.trials,
            args.workers,
            rec,
        ),
        None => run_obs_workers(
            args.algorithm,
            graph,
            cluster,
            model,
            args.seed,
            args.workers,
            rec,
        ),
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: emts-sim --platform <file> --ptg <file> \
                 [--algorithm cpa|hcpa|mcpa|delta|emts5|emts10] \
                 [--model model1|model2] [--seed <u64>] \
                 [--faults <spec>] [--trials <n>] [--workers <n>] \
                 [--gantt] [--json] [--report <out.json>] \
                 [--trace <out.trace.json>]"
            );
            std::process::exit(2);
        }
    };
    let platform_text = std::fs::read_to_string(&args.platform).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", args.platform);
        std::process::exit(1);
    });
    let cluster = parse_platform(&platform_text).unwrap_or_else(|e| {
        eprintln!("{}: {e}", args.platform);
        std::process::exit(1);
    });
    let ptg_text = std::fs::read_to_string(&args.ptg).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", args.ptg);
        std::process::exit(1);
    });
    let graph = parse_ptg(&ptg_text).unwrap_or_else(|e| {
        eprintln!("{}: {e}", args.ptg);
        std::process::exit(1);
    });

    let model = args.model.instantiate();
    let rec = StatsRecorder::new();
    let flight = args.trace.as_ref().map(|_| FlightRecorder::new());
    let (report, schedule, trace) = match &flight {
        Some(f) => run_recorded(
            &args,
            &graph,
            &cluster,
            model.as_ref(),
            &TeeRecorder(&rec, f),
        ),
        None => run_recorded(&args, &graph, &cluster, model.as_ref(), &rec),
    };

    if let (Some(path), Some(f)) = (&args.trace, &flight) {
        if let Err(e) = std::fs::write(path, f.chrome_trace_json()) {
            eprintln!("cannot write trace {path}: {e}");
            std::process::exit(1);
        }
    }

    if let Some(path) = &args.report {
        let mut obs_report = rec.report("emts-sim");
        obs_report
            .meta
            .insert("algorithm".into(), report.algorithm.clone());
        obs_report
            .meta
            .insert("platform".into(), report.platform.clone());
        obs_report.meta.insert("model".into(), report.model.clone());
        obs_report.meta.insert("seed".into(), args.seed.to_string());
        obs_report
            .meta
            .insert("tasks".into(), report.tasks.to_string());
        if let Some(w) = args.workers {
            obs_report.meta.insert("workers".into(), w.to_string());
        }
        obs_report.convergence = trace.as_ref().map(|t| t.to_value());
        if let Err(e) = obs_report.save(std::path::Path::new(path)) {
            eprintln!("cannot write report {path}: {e}");
            std::process::exit(1);
        }
    }

    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("reports serialize")
        );
    } else {
        println!(
            "{} on {} under {}: {} tasks, makespan {:.3} s, utilization {:.1} %",
            report.algorithm,
            cluster,
            report.model,
            report.tasks,
            report.makespan,
            100.0 * report.sim.utilization()
        );
        println!("allocation: {:?}", report.allocation);
        println!(
            "allocation step {:.1} ms, mapping step {:.2} ms",
            report.allocation_seconds * 1e3,
            report.mapping_seconds * 1e3
        );
        if let Some(f) = &report.faults {
            println!(
                "faults [{}] over {} trials: degradation mean {:.4}x, p95 {:.4}x, worst {:.4}x \
                 ({} retries, {} kills, {} processor failures, {} reschedules)",
                f.spec,
                f.trials,
                f.mean_degradation,
                f.p95_degradation,
                f.worst_degradation,
                f.retries,
                f.tasks_killed,
                f.processor_failures,
                f.reschedules
            );
        }
    }
    if args.gantt {
        println!("\n{}", sched::gantt::ascii_gantt(&schedule, 100));
    }
}
