//! Persisting experiment corpora to disk.
//!
//! A corpus directory holds one `.ptg` text file per instance (the format
//! of [`crate::formats`]) plus a `manifest.json` with per-instance
//! metadata (class, size, name). Freezing the generated corpus makes runs
//! auditable and lets external tools consume the exact same instances.

use crate::formats::{parse_ptg, render_ptg, PtgFileError};
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::{Path, PathBuf};
use workloads::{Corpus, CorpusEntry, PtgClass};

/// Per-instance record of the manifest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Instance name (also the `.ptg` file stem).
    pub name: String,
    /// PTG class.
    pub class: PtgClass,
    /// Task count.
    pub n: usize,
}

/// Errors from corpus persistence.
#[derive(Debug)]
pub enum CorpusIoError {
    /// Filesystem failure on a specific path — the path is part of the
    /// error so a failing batch run names the offending file, not just
    /// "No such file or directory".
    Io {
        path: PathBuf,
        error: std::io::Error,
    },
    /// Manifest (de)serialization failure.
    Manifest(serde_json::Error),
    /// A `.ptg` file failed to parse.
    Ptg { name: String, error: PtgFileError },
}

impl CorpusIoError {
    fn io(path: &Path, error: std::io::Error) -> Self {
        CorpusIoError::Io {
            path: path.to_path_buf(),
            error,
        }
    }
}

impl std::fmt::Display for CorpusIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusIoError::Io { path, error } => write!(f, "{}: {error}", path.display()),
            CorpusIoError::Manifest(e) => write!(f, "manifest error: {e}"),
            CorpusIoError::Ptg { name, error } => write!(f, "{name}: {error}"),
        }
    }
}

impl std::error::Error for CorpusIoError {}

/// Writes `corpus` into `dir` (created if missing). Returns the number of
/// instances written.
pub fn save_corpus(dir: &Path, corpus: &Corpus) -> Result<usize, CorpusIoError> {
    fs::create_dir_all(dir).map_err(|e| CorpusIoError::io(dir, e))?;
    let manifest: Vec<ManifestEntry> = corpus
        .entries
        .iter()
        .map(|e| ManifestEntry {
            name: e.name.clone(),
            class: e.class,
            n: e.n,
        })
        .collect();
    let manifest_json = serde_json::to_string_pretty(&manifest).map_err(CorpusIoError::Manifest)?;
    let manifest_path = dir.join("manifest.json");
    fs::write(&manifest_path, manifest_json).map_err(|e| CorpusIoError::io(&manifest_path, e))?;
    for entry in &corpus.entries {
        let path = dir.join(format!("{}.ptg", entry.name));
        fs::write(&path, render_ptg(&entry.ptg)).map_err(|e| CorpusIoError::io(&path, e))?;
    }
    Ok(corpus.entries.len())
}

/// Loads a corpus previously written by [`save_corpus`].
pub fn load_corpus(dir: &Path) -> Result<Corpus, CorpusIoError> {
    let manifest_path = dir.join("manifest.json");
    let manifest_json =
        fs::read_to_string(&manifest_path).map_err(|e| CorpusIoError::io(&manifest_path, e))?;
    let manifest: Vec<ManifestEntry> =
        serde_json::from_str(&manifest_json).map_err(CorpusIoError::Manifest)?;
    let mut entries = Vec::with_capacity(manifest.len());
    for m in manifest {
        let path = dir.join(format!("{}.ptg", m.name));
        let text = fs::read_to_string(&path).map_err(|e| CorpusIoError::io(&path, e))?;
        let ptg = parse_ptg(&text).map_err(|error| CorpusIoError::Ptg {
            name: m.name.clone(),
            error,
        })?;
        entries.push(CorpusEntry {
            ptg,
            class: m.class,
            n: m.n,
            name: m.name,
        });
    }
    Ok(Corpus { entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use workloads::CostConfig;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("emts_corpus_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_corpus() -> Corpus {
        Corpus::paper(
            0.01,
            &CostConfig::default(),
            &mut ChaCha8Rng::seed_from_u64(5),
        )
    }

    #[test]
    fn save_then_load_round_trips() {
        let dir = tmp_dir("roundtrip");
        let corpus = small_corpus();
        let written = save_corpus(&dir, &corpus).unwrap();
        assert_eq!(written, corpus.len());
        let loaded = load_corpus(&dir).unwrap();
        assert_eq!(loaded.len(), corpus.len());
        for (a, b) in corpus.entries.iter().zip(&loaded.entries) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.class, b.class);
            assert_eq!(a.n, b.n);
            assert_eq!(a.ptg.task_count(), b.ptg.task_count());
            assert_eq!(a.ptg.edge_count(), b.ptg.edge_count());
            assert!(a.ptg.edges().eq(b.ptg.edges()));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn loaded_costs_match_within_float_printing() {
        let dir = tmp_dir("costs");
        let corpus = small_corpus();
        save_corpus(&dir, &corpus).unwrap();
        let loaded = load_corpus(&dir).unwrap();
        for (a, b) in corpus.entries.iter().zip(&loaded.entries) {
            for (ta, tb) in a.ptg.tasks().iter().zip(b.ptg.tasks()) {
                assert!((ta.flop - tb.flop).abs() <= 1e-9 * ta.flop);
                assert!((ta.alpha - tb.alpha).abs() <= 1e-12);
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_errors_cleanly_and_names_the_path() {
        let err = load_corpus(Path::new("/nonexistent/emts_corpus")).unwrap_err();
        assert!(matches!(err, CorpusIoError::Io { .. }));
        assert!(
            err.to_string().contains("/nonexistent/emts_corpus"),
            "error must name the offending path: {err}"
        );
    }

    #[test]
    fn truncated_manifest_is_a_manifest_error() {
        let dir = tmp_dir("truncated");
        let corpus = small_corpus();
        save_corpus(&dir, &corpus).unwrap();
        // Chop the manifest mid-array, as a partial write would.
        let manifest = fs::read_to_string(dir.join("manifest.json")).unwrap();
        fs::write(dir.join("manifest.json"), &manifest[..manifest.len() / 2]).unwrap();
        let err = load_corpus(&dir).unwrap_err();
        assert!(matches!(err, CorpusIoError::Manifest(_)), "got {err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_ptg_file_names_the_missing_path() {
        let dir = tmp_dir("missing_ptg");
        let corpus = small_corpus();
        save_corpus(&dir, &corpus).unwrap();
        let victim = &corpus.entries[0].name;
        fs::remove_file(dir.join(format!("{victim}.ptg"))).unwrap();
        let err = load_corpus(&dir).unwrap_err();
        assert!(matches!(err, CorpusIoError::Io { .. }));
        assert!(err.to_string().contains(victim.as_str()), "got {err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_ptg_file_is_reported_by_name() {
        let dir = tmp_dir("corrupt");
        let corpus = small_corpus();
        save_corpus(&dir, &corpus).unwrap();
        let victim = &corpus.entries[0].name;
        fs::write(dir.join(format!("{victim}.ptg")), "garbage line\n").unwrap();
        let err = load_corpus(&dir).unwrap_err();
        match err {
            CorpusIoError::Ptg { name, .. } => assert_eq!(&name, victim),
            other => panic!("unexpected error {other}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
