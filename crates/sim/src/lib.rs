//! Discrete-event cluster simulator and experiment runner.
//!
//! The paper evaluates every algorithm inside a simulator that "reads a
//! platform file, containing the processors' speed, […] reads the
//! description of the PTG and executes the scheduling algorithm" (§IV).
//! This crate is that simulator:
//!
//! * [`executor`] — a discrete-event replay engine that executes a
//!   [`sched::Schedule`] against the platform, enforcing dependency and
//!   processor-capacity constraints *dynamically* and re-deriving the
//!   makespan independently of the mapper (the static checks live in
//!   [`sched::validate`]; agreement of the two is asserted in tests),
//! * [`formats`] — a line-oriented PTG text format plus JSON (serde)
//!   round-tripping for graphs, schedules and reports,
//! * [`runner`] — the end-to-end pipeline: platform + PTG + algorithm name
//!   + model → allocation, schedule, simulation report,
//! * [`trace`] — the replay's event log as data (occupancy profiles,
//!   human-readable timelines),
//! * [`corpus_io`] — freezing generated corpora to disk for auditable
//!   experiment runs.

pub mod corpus_io;
pub mod event;
pub mod executor;
pub mod faults;
pub mod formats;
pub mod online;
pub mod runner;
pub mod trace;

pub use executor::{ExecutionError, SimReport};
pub use faults::{
    execute_with_faults, fault_trials, fault_trials_obs, ChurnEvent, ChurnEventKind, ChurnSpec,
    ChurnStream, FaultKindBreakdown, FaultPlan, FaultSpec, FaultSpecError, FaultSummary,
    FaultyReport, KindStat,
};
pub use online::{run_online, OnlineConfig, OnlineError, OnlineReport};
pub use runner::{run_with_faults, run_with_faults_workers, Algorithm, RunReport};
