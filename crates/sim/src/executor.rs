//! Discrete-event replay of a schedule.
//!
//! The executor walks the schedule's planned start/finish events in time
//! order, maintaining live processor ownership and per-task completion
//! state. Any dynamic inconsistency — a task starting before a predecessor
//! finished, or on a processor still owned by another task — aborts the
//! replay. On success the report carries an independently re-derived
//! makespan and per-processor busy accounting, which tests cross-check
//! against the mapper's own numbers.

use crate::event::{Event, EventKind, EventQueue};
use obs::{NoopRecorder, Recorder};
use ptg::{Ptg, TaskId};
use sched::Schedule;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a replay failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecutionError {
    /// Task started although a predecessor had not finished.
    PredecessorUnfinished { task: TaskId, pred: TaskId },
    /// Task started on a processor still owned by another task.
    ProcessorBusy {
        task: TaskId,
        processor: u32,
        owner: TaskId,
    },
    /// Schedule and PTG disagree on the number of tasks.
    TaskCountMismatch { expected: usize, actual: usize },
}

impl fmt::Display for ExecutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutionError::PredecessorUnfinished { task, pred } => {
                write!(f, "{task} started before predecessor {pred} finished")
            }
            ExecutionError::ProcessorBusy {
                task,
                processor,
                owner,
            } => write!(
                f,
                "{task} started on processor {processor} still owned by {owner}"
            ),
            ExecutionError::TaskCountMismatch { expected, actual } => {
                write!(f, "schedule has {actual} tasks, PTG has {expected}")
            }
        }
    }
}

impl std::error::Error for ExecutionError {}

/// Result of a successful replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Independently re-derived makespan (time of the last finish event).
    pub makespan: f64,
    /// Number of start/finish event pairs processed (= task count).
    pub tasks_executed: usize,
    /// Per-processor busy seconds.
    pub busy_seconds: Vec<f64>,
    /// Peak number of simultaneously running tasks.
    pub peak_parallel_tasks: usize,
    /// Peak number of simultaneously busy processors.
    pub peak_busy_processors: u32,
}

impl SimReport {
    /// Overall utilization: busy area over `P × makespan`.
    pub fn utilization(&self) -> f64 {
        let busy: f64 = self.busy_seconds.iter().sum();
        let capacity = self.busy_seconds.len() as f64 * self.makespan;
        if capacity > 0.0 {
            busy / capacity
        } else {
            0.0
        }
    }
}

/// Tolerance for "at the same instant" comparisons, relative to the times
/// involved.
const REL_TOL: f64 = 1e-9;

/// Replays `schedule` for `g` and returns the execution report.
pub fn execute(g: &Ptg, schedule: &Schedule) -> Result<SimReport, ExecutionError> {
    execute_obs(g, schedule, &NoopRecorder)
}

/// [`execute`] with telemetry: counts processed events (`sim.events`) and
/// publishes the replay's headline numbers as gauges. With
/// [`NoopRecorder`] this compiles down to the plain replay loop.
pub fn execute_obs<R: Recorder>(
    g: &Ptg,
    schedule: &Schedule,
    rec: &R,
) -> Result<SimReport, ExecutionError> {
    if schedule.task_count() != g.task_count() {
        return Err(ExecutionError::TaskCountMismatch {
            expected: g.task_count(),
            actual: schedule.task_count(),
        });
    }
    let p_total = schedule.processors as usize;
    let mut queue = EventQueue::new();
    for pl in &schedule.placements {
        queue.push(Event {
            time: pl.start,
            kind: EventKind::Start,
            task: pl.task,
        });
        queue.push(Event {
            time: pl.finish,
            kind: EventKind::Finish,
            task: pl.task,
        });
    }

    let mut finished = vec![false; g.task_count()];
    let mut owner: Vec<Option<TaskId>> = vec![None; p_total];
    let mut busy_seconds = vec![0.0f64; p_total];
    let mut running = 0usize;
    let mut busy_procs = 0u32;
    let mut peak_parallel_tasks = 0usize;
    let mut peak_busy_processors = 0u32;
    let mut makespan = 0.0f64;
    let mut executed = 0usize;

    while let Some(event) = queue.pop() {
        let pl = schedule.placement(event.task);
        match event.kind {
            EventKind::Start => {
                for &p in g.predecessors(event.task) {
                    // Touching start == predecessor finish is legal; the
                    // queue orders finishes first, so `finished` is already
                    // set in that case.
                    if !finished[p.index()] {
                        return Err(ExecutionError::PredecessorUnfinished {
                            task: event.task,
                            pred: p,
                        });
                    }
                }
                for &q in &pl.processors {
                    if let Some(current) = owner[q as usize] {
                        return Err(ExecutionError::ProcessorBusy {
                            task: event.task,
                            processor: q,
                            owner: current,
                        });
                    }
                    owner[q as usize] = Some(event.task);
                }
                running += 1;
                busy_procs += pl.width();
                peak_parallel_tasks = peak_parallel_tasks.max(running);
                peak_busy_processors = peak_busy_processors.max(busy_procs);
            }
            EventKind::Finish => {
                debug_assert!(
                    !finished[event.task.index()],
                    "double finish for {}",
                    event.task
                );
                finished[event.task.index()] = true;
                for &q in &pl.processors {
                    debug_assert_eq!(owner[q as usize], Some(event.task));
                    owner[q as usize] = None;
                    busy_seconds[q as usize] += pl.duration();
                }
                running -= 1;
                busy_procs -= pl.width();
                makespan = makespan.max(event.time);
                executed += 1;
            }
        }
    }
    debug_assert!(finished.iter().all(|&f| f));
    let _ = REL_TOL;
    let report = SimReport {
        makespan,
        tasks_executed: executed,
        busy_seconds,
        peak_parallel_tasks,
        peak_busy_processors,
    };
    if R::ENABLED {
        rec.add("sim.events", 2 * executed as u64);
        rec.gauge("sim.utilization", report.utilization());
        rec.gauge("sim.peak_parallel_tasks", peak_parallel_tasks as f64);
        rec.gauge("sim.peak_busy_processors", peak_busy_processors as f64);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exec_model::{Amdahl, TimeMatrix};
    use ptg::PtgBuilder;
    use sched::{Allocation, ListScheduler, Mapper, Placement};

    fn diamond() -> Ptg {
        let mut b = PtgBuilder::new();
        for i in 0..4 {
            b.add_task(format!("t{i}"), 2e9, 0.0);
        }
        b.add_edge(TaskId(0), TaskId(1)).unwrap();
        b.add_edge(TaskId(0), TaskId(2)).unwrap();
        b.add_edge(TaskId(1), TaskId(3)).unwrap();
        b.add_edge(TaskId(2), TaskId(3)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn replay_agrees_with_mapper_makespan() {
        let g = diamond();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 4);
        let alloc = Allocation::from_vec(vec![2, 1, 2, 4]);
        let s = ListScheduler.map(&g, &m, &alloc);
        let report = execute(&g, &s).unwrap();
        assert!((report.makespan - s.makespan()).abs() < 1e-9);
        assert_eq!(report.tasks_executed, 4);
    }

    #[test]
    fn busy_seconds_match_schedule_area() {
        let g = diamond();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 4);
        let s = ListScheduler.map(&g, &m, &Allocation::ones(4));
        let report = execute(&g, &s).unwrap();
        let total_busy: f64 = report.busy_seconds.iter().sum();
        assert!((total_busy - s.busy_area()).abs() < 1e-9);
        assert!(report.utilization() > 0.0 && report.utilization() <= 1.0);
    }

    #[test]
    fn concurrency_peaks_are_observed() {
        let g = diamond();
        let m = TimeMatrix::compute(&g, &Amdahl, 1e9, 4);
        // Middles run concurrently on 2 procs each.
        let s = ListScheduler.map(&g, &m, &Allocation::from_vec(vec![4, 2, 2, 4]));
        let report = execute(&g, &s).unwrap();
        assert_eq!(report.peak_parallel_tasks, 2);
        assert_eq!(report.peak_busy_processors, 4);
    }

    #[test]
    fn dependency_violation_is_caught_dynamically() {
        let g = diamond();
        let bad = Schedule::new(
            4,
            vec![
                Placement {
                    task: TaskId(0),
                    start: 0.0,
                    finish: 2.0,
                    processors: vec![0],
                },
                Placement {
                    task: TaskId(1),
                    start: 1.0,
                    finish: 3.0,
                    processors: vec![1],
                },
                Placement {
                    task: TaskId(2),
                    start: 2.0,
                    finish: 4.0,
                    processors: vec![2],
                },
                Placement {
                    task: TaskId(3),
                    start: 4.0,
                    finish: 6.0,
                    processors: vec![3],
                },
            ],
        );
        assert_eq!(
            execute(&g, &bad).unwrap_err(),
            ExecutionError::PredecessorUnfinished {
                task: TaskId(1),
                pred: TaskId(0)
            }
        );
    }

    #[test]
    fn processor_conflict_is_caught_dynamically() {
        let mut b = PtgBuilder::new();
        b.add_task("a", 2e9, 0.0);
        b.add_task("b", 2e9, 0.0);
        let g = b.build().unwrap();
        let bad = Schedule::new(
            2,
            vec![
                Placement {
                    task: TaskId(0),
                    start: 0.0,
                    finish: 2.0,
                    processors: vec![0],
                },
                Placement {
                    task: TaskId(1),
                    start: 1.0,
                    finish: 3.0,
                    processors: vec![0],
                },
            ],
        );
        assert_eq!(
            execute(&g, &bad).unwrap_err(),
            ExecutionError::ProcessorBusy {
                task: TaskId(1),
                processor: 0,
                owner: TaskId(0)
            }
        );
    }

    #[test]
    fn back_to_back_tasks_on_one_processor_are_fine() {
        let mut b = PtgBuilder::new();
        let a = b.add_task("a", 2e9, 0.0);
        let c = b.add_task("c", 2e9, 0.0);
        b.add_edge(a, c).unwrap();
        let g = b.build().unwrap();
        let s = Schedule::new(
            1,
            vec![
                Placement {
                    task: TaskId(0),
                    start: 0.0,
                    finish: 2.0,
                    processors: vec![0],
                },
                Placement {
                    task: TaskId(1),
                    start: 2.0,
                    finish: 4.0,
                    processors: vec![0],
                },
            ],
        );
        let report = execute(&g, &s).unwrap();
        assert_eq!(report.makespan, 4.0);
        assert_eq!(report.peak_parallel_tasks, 1);
    }

    #[test]
    fn task_count_mismatch_is_rejected() {
        let g = diamond();
        let s = Schedule::new(
            1,
            vec![Placement {
                task: TaskId(0),
                start: 0.0,
                finish: 1.0,
                processors: vec![0],
            }],
        );
        assert!(matches!(
            execute(&g, &s).unwrap_err(),
            ExecutionError::TaskCountMismatch { .. }
        ));
    }
}
