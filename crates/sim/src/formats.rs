//! File formats: a line-oriented PTG text format and JSON round-tripping.
//!
//! The text format mirrors the paper's simulator inputs ("the simulator
//! reads the description of the PTG"):
//!
//! ```text
//! # FFT PTG, 5 tasks
//! task split 1.2e9 0.05
//! task left  2.0e9 0.10
//! task right 2.0e9 0.12
//! edge 0 1
//! edge 0 2
//! ```
//!
//! Task ids are assigned in file order starting at 0; edges reference those
//! ids. JSON serialization (serde) is available for every structured type
//! of the workspace; helpers here cover the common graph case.

use ptg::{Ptg, PtgBuilder, TaskId};
use std::fmt;

/// Errors from [`parse_ptg`].
#[derive(Debug, Clone, PartialEq)]
pub enum PtgFileError {
    /// A line had the wrong shape or an unknown directive.
    Malformed { line: usize, content: String },
    /// A numeric field failed to parse.
    BadNumber { line: usize, field: &'static str },
    /// A task's numbers parsed but violate the domain (`flop > 0` finite,
    /// `alpha ∈ [0, 1]`) — caught at the offending line rather than left
    /// to surface as a line-less graph error at `build` time.
    BadTask { line: usize, message: String },
    /// Graph construction failed (cycle, bad edge, invalid task, …).
    Graph(String),
}

impl fmt::Display for PtgFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PtgFileError::Malformed { line, content } => {
                write!(f, "line {line}: malformed: {content:?}")
            }
            PtgFileError::BadNumber { line, field } => {
                write!(f, "line {line}: cannot parse {field}")
            }
            PtgFileError::BadTask { line, message } => {
                write!(f, "line {line}: {message}")
            }
            PtgFileError::Graph(msg) => write!(f, "graph error: {msg}"),
        }
    }
}

impl std::error::Error for PtgFileError {}

/// Parses the PTG text format.
pub fn parse_ptg(input: &str) -> Result<Ptg, PtgFileError> {
    let mut b = PtgBuilder::new();
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("task") => {
                let name = parts.next().ok_or_else(|| PtgFileError::Malformed {
                    line: line_no,
                    content: line.into(),
                })?;
                let flop: f64 =
                    parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or(PtgFileError::BadNumber {
                            line: line_no,
                            field: "flop",
                        })?;
                let alpha: f64 =
                    parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or(PtgFileError::BadNumber {
                            line: line_no,
                            field: "alpha",
                        })?;
                let task = ptg::Task {
                    name: name.to_string(),
                    flop,
                    alpha,
                };
                task.validate().map_err(|message| PtgFileError::BadTask {
                    line: line_no,
                    message,
                })?;
                b.push_task(task);
            }
            Some("edge") => {
                let from: u32 =
                    parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or(PtgFileError::BadNumber {
                            line: line_no,
                            field: "edge source",
                        })?;
                let to: u32 =
                    parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or(PtgFileError::BadNumber {
                            line: line_no,
                            field: "edge target",
                        })?;
                b.add_edge(TaskId(from), TaskId(to))
                    .map_err(|e| PtgFileError::Graph(e.to_string()))?;
            }
            _ => {
                return Err(PtgFileError::Malformed {
                    line: line_no,
                    content: line.into(),
                })
            }
        }
        if parts.next().is_some() {
            return Err(PtgFileError::Malformed {
                line: line_no,
                content: line.into(),
            });
        }
    }
    b.build().map_err(|e| PtgFileError::Graph(e.to_string()))
}

/// Writes a PTG in the text format to any [`fmt::Write`] sink, propagating
/// write errors instead of panicking.
pub fn write_ptg<W: fmt::Write>(out: &mut W, g: &Ptg) -> fmt::Result {
    writeln!(out, "# {} tasks, {} edges", g.task_count(), g.edge_count())?;
    for v in g.task_ids() {
        let t = g.task(v);
        // Space-free names keep the format line-parseable.
        let name = t.name.replace(char::is_whitespace, "_");
        writeln!(out, "task {} {} {}", name, t.flop, t.alpha)?;
    }
    for (a, c) in g.edges() {
        writeln!(out, "edge {} {}", a.0, c.0)?;
    }
    Ok(())
}

/// Renders a PTG in the text format ([`parse_ptg`] round-trips it).
pub fn render_ptg(g: &Ptg) -> String {
    let mut out = String::new();
    // Writing to a String cannot fail.
    let _ = write_ptg(&mut out, g);
    out
}

/// JSON-serializes a PTG.
pub fn ptg_to_json(g: &Ptg) -> String {
    serde_json::to_string_pretty(g).expect("PTGs serialize infallibly")
}

/// Parses a PTG from JSON produced by [`ptg_to_json`].
pub fn ptg_from_json(json: &str) -> Result<Ptg, serde_json::Error> {
    serde_json::from_str(json)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "# demo\ntask a 1e9 0.1\ntask b 2e9 0.2\nedge 0 1\n";

    #[test]
    fn parses_and_round_trips_text() {
        let g = parse_ptg(SAMPLE).unwrap();
        assert_eq!(g.task_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.task(TaskId(1)).alpha, 0.2);
        let again = parse_ptg(&render_ptg(&g)).unwrap();
        assert_eq!(again.tasks(), g.tasks());
        assert!(again.edges().eq(g.edges()));
    }

    #[test]
    fn json_round_trip() {
        let g = parse_ptg(SAMPLE).unwrap();
        let back = ptg_from_json(&ptg_to_json(&g)).unwrap();
        assert_eq!(back.tasks(), g.tasks());
        assert!(back.edges().eq(g.edges()));
        assert_eq!(back.topo_order(), g.topo_order());
    }

    #[test]
    fn unknown_directive_is_rejected() {
        assert!(matches!(
            parse_ptg("node a 1 0").unwrap_err(),
            PtgFileError::Malformed { line: 1, .. }
        ));
    }

    #[test]
    fn bad_numbers_are_reported_by_field() {
        assert_eq!(
            parse_ptg("task a x 0.1").unwrap_err(),
            PtgFileError::BadNumber {
                line: 1,
                field: "flop"
            }
        );
        assert_eq!(
            parse_ptg("task a 1e9 0.1\nedge 0 q").unwrap_err(),
            PtgFileError::BadNumber {
                line: 2,
                field: "edge target"
            }
        );
    }

    #[test]
    fn out_of_domain_task_values_are_rejected_at_their_line() {
        for bad in [
            "task a -1e9 0.1",
            "task a 0 0.1",
            "task a inf 0.1",
            "task a NaN 0.1",
            "task a 1e9 -0.1",
            "task a 1e9 1.5",
            "task a 1e9 NaN",
        ] {
            let text = format!("task ok 1e9 0.5\n{bad}\n");
            match parse_ptg(&text).unwrap_err() {
                PtgFileError::BadTask { line, .. } => assert_eq!(line, 2, "{bad:?}"),
                other => panic!("{bad:?}: expected BadTask, got {other}"),
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(matches!(
            parse_ptg("task a 1e9 0.1 extra").unwrap_err(),
            PtgFileError::Malformed { .. }
        ));
    }

    #[test]
    fn cyclic_file_is_rejected_with_graph_error() {
        let cyclic = "task a 1e9 0\ntask b 1e9 0\nedge 0 1\nedge 1 0\n";
        assert!(matches!(
            parse_ptg(cyclic).unwrap_err(),
            PtgFileError::Graph(_)
        ));
    }

    #[test]
    fn names_with_spaces_are_sanitized_on_render() {
        let mut b = PtgBuilder::new();
        b.add_task("my task", 1e9, 0.0);
        let g = b.build().unwrap();
        let text = render_ptg(&g);
        assert!(text.contains("task my_task"));
        assert!(parse_ptg(&text).is_ok());
    }
}
