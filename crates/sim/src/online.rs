//! Online continuous-operations simulator: a rolling-horizon control loop
//! that schedules a *stream* of PTG jobs onto a cluster whose membership
//! changes underneath it.
//!
//! The one-shot pipeline ([`crate::runner`]) answers the paper's question —
//! "how good is this allocation for this graph?" — under the assumption
//! that the platform is empty, static, and patient. Real clusters are none
//! of those things: jobs arrive whenever they arrive, nodes fail and come
//! back, operators bolt on spare capacity, and the scheduler only gets a
//! bounded slice of wall-clock time to think before the next dispatch
//! tick. [`run_online`] simulates exactly that regime, deterministically:
//!
//! * **Workload** — jobs are drawn from the seeded streaming corpus
//!   ([`workloads::stream`]) with exponential inter-arrival times, so one
//!   `(seed, jobs)` pair names one reproducible trace.
//! * **Churn** — node failures/repairs/joins come from a seeded
//!   [`ChurnStream`] (see the `--churn` grammar on [`ChurnSpec`]).
//! * **Control loop** — every `epoch` simulated seconds the controller
//!   re-optimizes the live backlog, under a wall-clock `epoch_budget`,
//!   through three *degradation rings*:
//!
//!   | ring | strategy | cost |
//!   |------|----------|------|
//!   | 0 | full EMTS re-optimization of the backlog union, warm-started from the incumbent allocations, run in anytime mode ([`Emts::run_deadline`]) | dominant |
//!   | 1 | incremental repair: one [`Rescheduler`] pass over the backlog union with the incumbent allocations | cheap |
//!   | 2 | reactive survivors-only FIFO: each job rescheduled alone behind the others' reservations (`busy_until` floors) | trivial |
//!
//!   Ring 2 is always computed first as the safety net; deeper rings are
//!   attempted only while the budget slice allows, so a stuck or slow
//!   optimizer degrades the *answer*, never the *deadline*. Epochs whose
//!   total decision time still exceeds the budget are counted as
//!   `deadline_overruns`. (Decisions are instantaneous in simulated time;
//!   the budget models the real controller's dispatch tick.)
//! * **Replan-only-when-dirty** — an epoch that saw no arrivals and no
//!   membership change reuses the incumbent plan untouched. This is what
//!   makes the degenerate case (one job, zero churn, unbounded budget)
//!   reproduce the one-shot optimizer bit for bit: the job is planned once,
//!   at its admission epoch, by the same EMTS run on the same matrix.
//! * **Failures mid-run** — a node failure kills the tasks running on it
//!   and triggers an immediate *reactive* (ring 2) replan of the backlog,
//!   without waiting for the next epoch. When the last node dies the loop
//!   waits if the churn stream still holds a repair or join, and otherwise
//!   surfaces [`OnlineError::NoSurvivors`] — the same typed error the
//!   fault-injection path reports, one line, non-zero exit.
//!
//! Everything stochastic is seeded and all simulated-time outputs are pure
//! functions of `(config, platform, model)`; only fields named `*_seconds`
//! (wall-clock measurements) differ between runs.

use crate::faults::{ChurnEventKind, ChurnSpec, ChurnStream};
use emts::{Emts, EmtsConfig};
use exec_model::{ExecutionTimeModel, TimeMatrix};
use heuristics::{Allocator, Mcpa};
use obs::Recorder;
use platform::Cluster;
use ptg::{Ptg, PtgBuilder, TaskId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sched::{Allocation, ListScheduler, Mapper, Placement, Rescheduler, ResumeState, RunningTask};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::{Duration, Instant};
use workloads::stream::{item, item_seed};
use workloads::CostConfig;

/// Salt separating the arrival-time RNG from every other stream.
const ARRIVAL_SALT: u64 = 0xA88A_11E5_0D15_EA5E;
/// Salt separating per-epoch EMTS seeds from the workload stream.
const EPOCH_SALT: u64 = 0x0E0C_5EED_BADC_0FFE;

/// Derives the deterministic EMTS seed used by decision epoch `epoch`.
/// Exposed so tests can reproduce a specific epoch's optimizer run
/// out-of-band (the zero-churn identity property does exactly that).
pub fn epoch_seed(seed: u64, epoch: u64) -> u64 {
    item_seed(seed ^ EPOCH_SALT, epoch)
}

/// Configuration of one online run.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Master seed; arrivals, job graphs, churn and per-epoch EMTS seeds
    /// all derive from it on independent streams.
    pub seed: u64,
    /// Number of jobs in the arrival stream.
    pub jobs: u64,
    /// Mean exponential inter-arrival time in simulated seconds
    /// (`0` ⇒ every job arrives at `t = 0`).
    pub arrival_mean: f64,
    /// Decision-epoch period in simulated seconds.
    pub epoch: f64,
    /// Wall-clock budget per decision epoch (`None` ⇒ unbounded: ring 0
    /// always runs to completion).
    pub epoch_budget: Option<Duration>,
    /// Cluster-churn description (see [`ChurnSpec::parse`]).
    pub churn: ChurnSpec,
    /// A job meets its SLO when it completes within
    /// `slo_factor × ideal` seconds of arriving, where *ideal* is its
    /// solo MCPA makespan on the full platform.
    pub slo_factor: f64,
    /// EMTS configuration for ring 0. `None` runs the reactive-only
    /// baseline: every epoch plans with ring 2.
    pub emts: Option<EmtsConfig>,
    /// Maximum number of jobs admitted concurrently; arrivals beyond it
    /// queue until a slot frees up.
    pub max_backlog: usize,
    /// Decision epochs whose ring-0 optimizer is *sabotaged*: treated as
    /// hung, so the watchdog degrades the epoch to ring 1 without burning
    /// wall-clock time. Deterministic stand-in for a stuck optimizer in
    /// tests and CI.
    pub sabotage_ring0: Vec<usize>,
    /// Cost parameters for the generated job graphs.
    pub costs: CostConfig,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            seed: 2011,
            jobs: 8,
            arrival_mean: 30.0,
            epoch: 60.0,
            epoch_budget: None,
            churn: ChurnSpec::default(),
            slo_factor: 4.0,
            emts: Some(EmtsConfig::emts5()),
            max_backlog: 64,
            sabotage_ring0: Vec::new(),
            costs: CostConfig::default(),
        }
    }
}

/// Why an online run could not continue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OnlineError {
    /// Every node is down and the churn stream holds no future repair or
    /// join: the backlog can never drain. Carries the simulated time of
    /// the final failure.
    NoSurvivors(f64),
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineError::NoSurvivors(t) => write!(
                f,
                "t={t:.3}: no surviving processors and no repair or join pending"
            ),
        }
    }
}

impl std::error::Error for OnlineError {}

/// Per-job outcome row of the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Stream index of the job.
    pub job: u64,
    /// Task count of its graph.
    pub tasks: usize,
    /// Simulated arrival time.
    pub arrival: f64,
    /// Simulated admission time (the decision epoch that took it on).
    pub admitted: f64,
    /// First time any of its tasks began executing (killed attempts
    /// count — the machine was busy).
    pub first_start: f64,
    /// Completion time of its last task.
    pub completion: f64,
    /// Solo MCPA makespan on the full platform: the yardstick for
    /// stretch and SLO attainment.
    pub ideal: f64,
    /// `first_start − arrival`.
    pub queue_wait: f64,
    /// `(completion − arrival) / ideal`.
    pub stretch: f64,
    /// `completion ≤ arrival + slo_factor × ideal`.
    pub slo_met: bool,
}

/// One decision epoch that actually replanned.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochOutcome {
    /// Epoch index (time = `epoch × period`).
    pub epoch: usize,
    /// Simulated decision time.
    pub time: f64,
    /// Degradation ring that produced the adopted plan (0 = EMTS,
    /// 1 = union repair, 2 = reactive FIFO).
    pub ring: u8,
    /// Active jobs planned this epoch.
    pub backlog: usize,
    /// Jobs admitted from the queue this epoch.
    pub admitted: usize,
    /// True when a deeper ring was configured but the watchdog/budget
    /// slice forced a shallower one.
    pub degraded: bool,
    /// True when the whole decision overran the wall-clock budget.
    pub overran: bool,
    /// Wall-clock decision time (nondeterministic; excluded from
    /// reproducibility comparisons by the `_seconds` suffix convention).
    pub decision_seconds: f64,
}

/// One entry of the deterministic simulated-time event trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OnlineEventKind {
    /// Job entered the arrival queue.
    Arrive(u64),
    /// Job admitted into the active backlog.
    Admit(u64),
    /// Job completed.
    Done(u64),
    /// A running task of job `.0` (task index `.1`) was killed by a node
    /// failure and will be re-executed.
    Kill(u64, u32),
    /// Node failed.
    Fail(u32),
    /// Node recovered.
    Recover(u32),
    /// Spare node joined (platform index).
    Join(u32),
    /// Catastrophic full-cluster failure.
    FailAll,
    /// Decision epoch `.0` adopted a plan from ring `.1` covering `.2`
    /// jobs.
    Plan(usize, u8, usize),
    /// Failure-triggered reactive replan covering `.0` jobs.
    Reactive(usize),
}

// Hand-written tagged-object serialization (the vendored serde derive
// covers unit-variant enums only): `{"arrive": 3}`, `{"plan": [4, 0, 2]}`.
impl Serialize for OnlineEventKind {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        let int = |x: i128| Value::Int(x);
        let (tag, payload) = match *self {
            OnlineEventKind::Arrive(j) => ("arrive", int(j as i128)),
            OnlineEventKind::Admit(j) => ("admit", int(j as i128)),
            OnlineEventKind::Done(j) => ("done", int(j as i128)),
            OnlineEventKind::Kill(j, t) => {
                ("kill", Value::Array(vec![int(j as i128), int(t as i128)]))
            }
            OnlineEventKind::Fail(q) => ("fail", int(q as i128)),
            OnlineEventKind::Recover(q) => ("recover", int(q as i128)),
            OnlineEventKind::Join(q) => ("join", int(q as i128)),
            OnlineEventKind::FailAll => ("fail_all", Value::Null),
            OnlineEventKind::Plan(e, r, n) => (
                "plan",
                Value::Array(vec![int(e as i128), int(r as i128), int(n as i128)]),
            ),
            OnlineEventKind::Reactive(n) => ("reactive", int(n as i128)),
        };
        Value::Object(vec![(tag.to_string(), payload)])
    }
}

impl Deserialize for OnlineEventKind {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = v
            .as_object()
            .filter(|o| o.len() == 1)
            .ok_or_else(|| serde::DeError::expected("tagged object", "OnlineEventKind"))?;
        let (tag, payload) = &obj[0];
        let err = |e: serde::DeError| serde::DeError::custom(format!("OnlineEventKind: {e}"));
        let arr = |n: usize| -> Result<Vec<u64>, serde::DeError> {
            let xs: Vec<u64> = Vec::from_value(payload).map_err(err)?;
            if xs.len() != n {
                return Err(serde::DeError::expected(
                    &format!("{n}-element array"),
                    "OnlineEventKind",
                ));
            }
            Ok(xs)
        };
        match tag.as_str() {
            "arrive" => Ok(OnlineEventKind::Arrive(
                u64::from_value(payload).map_err(err)?,
            )),
            "admit" => Ok(OnlineEventKind::Admit(
                u64::from_value(payload).map_err(err)?,
            )),
            "done" => Ok(OnlineEventKind::Done(
                u64::from_value(payload).map_err(err)?,
            )),
            "kill" => {
                let xs = arr(2)?;
                Ok(OnlineEventKind::Kill(xs[0], xs[1] as u32))
            }
            "fail" => Ok(OnlineEventKind::Fail(
                u32::from_value(payload).map_err(err)?,
            )),
            "recover" => Ok(OnlineEventKind::Recover(
                u32::from_value(payload).map_err(err)?,
            )),
            "join" => Ok(OnlineEventKind::Join(
                u32::from_value(payload).map_err(err)?,
            )),
            "fail_all" => Ok(OnlineEventKind::FailAll),
            "plan" => {
                let xs = arr(3)?;
                Ok(OnlineEventKind::Plan(
                    xs[0] as usize,
                    xs[1] as u8,
                    xs[2] as usize,
                ))
            }
            "reactive" => Ok(OnlineEventKind::Reactive(
                u64::from_value(payload).map_err(err)? as usize,
            )),
            other => Err(serde::DeError::expected(
                "an online event tag",
                &format!("OnlineEventKind tag `{other}`"),
            )),
        }
    }
}

/// A timestamped [`OnlineEventKind`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineEvent {
    /// Simulated time.
    pub time: f64,
    /// What happened.
    pub kind: OnlineEventKind,
}

/// Aggregates over the whole run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineTotals {
    /// Jobs in the stream.
    pub jobs: u64,
    /// Jobs that completed (always `== jobs` on `Ok`).
    pub completed: u64,
    /// Completion time of the last job.
    pub makespan: f64,
    /// Mean queue wait across jobs.
    pub queue_wait_mean: f64,
    /// Mean stretch across jobs.
    pub stretch_mean: f64,
    /// 95th-percentile stretch.
    pub stretch_p95: f64,
    /// Executed work over alive capacity: busy processor-seconds
    /// (including killed attempts) divided by the integral of the alive
    /// node count from `t = 0` to `makespan`.
    pub utilization: f64,
    /// Fraction of jobs that met their SLO.
    pub slo_attainment: f64,
    /// Epochs that replanned.
    pub decision_epochs: usize,
    /// Epochs skipped because nothing was dirty.
    pub idle_epochs: usize,
    /// Decision epochs adopted from each ring.
    pub ring0_epochs: usize,
    /// Ring-1 adoptions.
    pub ring1_epochs: usize,
    /// Ring-2 adoptions.
    pub ring2_epochs: usize,
    /// Epochs where ring 0 was configured but the watchdog/budget slice
    /// degraded the decision to a shallower ring.
    pub watchdog_degraded: usize,
    /// Decision epochs whose wall-clock time exceeded the budget.
    pub deadline_overruns: usize,
    /// Failure-triggered ring-2 replans outside epoch boundaries.
    pub reactive_replans: usize,
    /// Running tasks killed by node failures.
    pub tasks_killed: u64,
    /// Observed churn events by kind.
    pub node_failures: usize,
    /// Node recoveries.
    pub node_recoveries: usize,
    /// Spare joins.
    pub node_joins: usize,
    /// Total wall-clock time spent deciding (nondeterministic).
    pub decision_wall_seconds: f64,
}

/// Everything [`run_online`] produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineReport {
    /// `"rolling"` (EMTS ring 0 available) or `"reactive"` (ring 2 only).
    pub mode: String,
    /// Master seed.
    pub seed: u64,
    /// Decision period in simulated seconds.
    pub epoch: f64,
    /// Mean inter-arrival time.
    pub arrival_mean: f64,
    /// SLO factor.
    pub slo_factor: f64,
    /// Canonical churn spec.
    pub churn: String,
    /// Base platform size.
    pub processors: u32,
    /// Spare nodes that may join.
    pub spares: u32,
    /// Wall-clock epoch budget, if any (nondeterministic field name kept
    /// out of reproducibility diffs by the `_seconds` suffix).
    pub epoch_budget_seconds: Option<f64>,
    /// Aggregates.
    pub totals: OnlineTotals,
    /// Per-job outcomes, by stream index.
    pub jobs: Vec<JobOutcome>,
    /// Decision epochs that replanned.
    pub epochs: Vec<EpochOutcome>,
    /// Deterministic simulated-time event trace.
    pub events: Vec<OnlineEvent>,
}

/// One job's live state inside the simulator.
struct Job {
    index: u64,
    g: Ptg,
    /// Per-job time matrix at full potential capacity (base + spares).
    matrix: TimeMatrix,
    /// Incumbent allocation (MCPA at admission; evolved by ring 0).
    alloc: Allocation,
    arrival: f64,
    admitted: f64,
    ideal: f64,
    finished: Vec<Option<f64>>,
    /// Absolute-time placements not yet finished (running + pending).
    plan: Vec<Placement>,
    first_start: Option<f64>,
    completion: Option<f64>,
}

impl Job {
    fn done(&self) -> bool {
        self.completion.is_some()
    }

    /// Splits the plan at `now`: placements already executing stay, the
    /// rest are up for replanning.
    fn running_placements(&self, now: f64) -> Vec<Placement> {
        self.plan
            .iter()
            .filter(|p| p.start < now)
            .cloned()
            .collect()
    }
}

/// The backlog union: all active jobs' graphs side by side in one PTG,
/// with per-job task-id offsets, so a single [`Rescheduler`] (or EMTS)
/// pass plans the whole backlog with global knowledge.
struct BacklogUnion {
    g: Ptg,
    matrix: TimeMatrix,
    /// Incumbent allocations, concatenated in offset order.
    alloc: Allocation,
    state: ResumeState,
    /// `(job slot, task offset, task count)` per active job, ascending.
    offsets: Vec<(usize, usize, usize)>,
}

impl BacklogUnion {
    /// Maps union placements back onto per-job placements (running tasks
    /// are *not* in the result — callers keep those).
    fn split(&self, placements: Vec<Placement>) -> Vec<(usize, Vec<Placement>)> {
        let mut per_job: Vec<(usize, Vec<Placement>)> = self
            .offsets
            .iter()
            .map(|&(j, _, _)| (j, Vec::new()))
            .collect();
        for p in placements {
            let t = p.task.index();
            let slot = self
                .offsets
                .iter()
                .position(|&(_, off, len)| t >= off && t < off + len)
                .expect("union placement maps to a job");
            let off = self.offsets[slot].1;
            per_job[slot].1.push(Placement {
                task: TaskId((t - off) as u32),
                ..p
            });
        }
        per_job
    }
}

/// The whole simulator state.
struct Online<'a, R: Recorder> {
    cfg: &'a OnlineConfig,
    model: &'a dyn ExecutionTimeModel,
    rec: &'a R,
    speed: f64,
    /// Base platform size (spares live at indices `processors..p_total`).
    processors: u32,
    p_total: u32,
    now: f64,
    alive: Vec<bool>,
    churn: ChurnStream,
    /// Precomputed arrival times, ascending; `next_arrival` indexes it.
    arrivals: Vec<f64>,
    next_arrival: usize,
    /// Arrived-but-not-admitted stream indices, FIFO.
    queue: Vec<u64>,
    jobs: Vec<Job>,
    /// True when arrivals/churn invalidated the incumbent plans since the
    /// last decision.
    dirty: bool,
    /// Integral of the alive node count up to `now`.
    alive_seconds: f64,
    /// Executed processor-seconds (killed attempts included).
    busy_seconds: f64,
    makespan: f64,
    events: Vec<OnlineEvent>,
    epochs: Vec<EpochOutcome>,
    totals: OnlineTotals,
}

impl<'a, R: Recorder> Online<'a, R> {
    fn survivors(&self) -> u32 {
        self.alive.iter().filter(|&&a| a).count() as u32
    }

    fn push_event(&mut self, kind: OnlineEventKind) {
        self.events.push(OnlineEvent {
            time: self.now,
            kind,
        });
    }

    /// Advances the alive-capacity integral to `t` (no-op once every job
    /// finished — utilization is measured over `[0, makespan]`).
    fn integrate_to(&mut self, t: f64) {
        if self.totals.completed < self.cfg.jobs || self.queue_busy() {
            self.alive_seconds += self.survivors() as f64 * (t - self.now);
        }
    }

    fn queue_busy(&self) -> bool {
        !self.queue.is_empty() || self.next_arrival < self.arrivals.len()
    }

    /// Earliest unfinished placement finish across active jobs.
    fn next_finish(&self) -> Option<f64> {
        self.jobs
            .iter()
            .filter(|j| !j.done())
            .flat_map(|j| j.plan.iter().map(|p| p.finish))
            .min_by(|a, b| a.partial_cmp(b).expect("finish times are finite"))
    }

    /// Marks every placement finishing at exactly `t` as done and
    /// completes jobs whose last task just finished.
    fn settle_finishes_at(&mut self, t: f64) {
        let mut done_jobs = Vec::new();
        let mut busy_acc = 0.0;
        for (slot, job) in self.jobs.iter_mut().enumerate() {
            if job.done() {
                continue;
            }
            let mut settled_busy = 0.0;
            job.plan.retain(|p| {
                if p.finish <= t {
                    job.finished[p.task.index()] = Some(p.finish);
                    let fs = job.first_start.get_or_insert(p.start);
                    *fs = fs.min(p.start);
                    settled_busy += p.width() as f64 * (p.finish - p.start);
                    false
                } else {
                    true
                }
            });
            busy_acc += settled_busy;
            if job.finished.iter().all(|f| f.is_some()) {
                let completion = job
                    .finished
                    .iter()
                    .map(|f| f.expect("all finished"))
                    .fold(0.0, f64::max);
                job.completion = Some(completion);
                done_jobs.push((slot, completion));
            }
        }
        self.busy_seconds += busy_acc;
        for (slot, completion) in done_jobs {
            let index = self.jobs[slot].index;
            self.makespan = self.makespan.max(completion);
            self.totals.completed += 1;
            self.events.push(OnlineEvent {
                time: completion,
                kind: OnlineEventKind::Done(index),
            });
        }
    }

    /// Applies one churn event at `self.now` and, on failures, kills the
    /// affected running tasks and reactively replans the backlog.
    fn apply_churn(&mut self, kind: ChurnEventKind) -> Result<(), OnlineError> {
        let dead: Vec<u32> = match kind {
            ChurnEventKind::Fail(q) => {
                self.alive[q as usize] = false;
                self.totals.node_failures += 1;
                self.push_event(OnlineEventKind::Fail(q));
                self.rec.add("online.churn.failures", 1);
                vec![q]
            }
            ChurnEventKind::FailAll => {
                let all: Vec<u32> = (0..self.p_total)
                    .filter(|&q| self.alive[q as usize])
                    .collect();
                for &q in &all {
                    self.alive[q as usize] = false;
                }
                self.totals.node_failures += all.len();
                self.push_event(OnlineEventKind::FailAll);
                self.rec.add("online.churn.failures", all.len() as u64);
                all
            }
            ChurnEventKind::Recover(q) => {
                self.alive[q as usize] = true;
                self.totals.node_recoveries += 1;
                self.push_event(OnlineEventKind::Recover(q));
                self.rec.add("online.churn.recoveries", 1);
                self.dirty = true;
                return Ok(());
            }
            ChurnEventKind::Join(k) => {
                let q = self.processors + k;
                assert!(q < self.p_total, "join beyond the spare pool");
                self.alive[q as usize] = true;
                self.totals.node_joins += 1;
                self.push_event(OnlineEventKind::Join(q));
                self.rec.add("online.churn.joins", 1);
                self.dirty = true;
                return Ok(());
            }
        };

        // Kill running work on the dead nodes and drop every pending
        // placement — the reactive replan below re-issues them.
        let now = self.now;
        let mut kills = Vec::new();
        let mut busy_acc = 0.0;
        for job in self.jobs.iter_mut().filter(|j| !j.done()) {
            let index = job.index;
            let first_start = &mut job.first_start;
            job.plan.retain(|p| {
                let started = p.start < now;
                let on_dead = p.processors.iter().any(|q| dead.contains(q));
                if started && on_dead {
                    kills.push((index, p.task.0));
                    busy_acc += p.width() as f64 * (now - p.start);
                    let fs = first_start.get_or_insert(p.start);
                    *fs = fs.min(p.start);
                    false
                } else {
                    started && !on_dead
                }
            });
        }
        self.busy_seconds += busy_acc;
        self.totals.tasks_killed += kills.len() as u64;
        self.rec.add("online.tasks_killed", kills.len() as u64);
        for (job, task) in kills {
            self.push_event(OnlineEventKind::Kill(job, task));
        }
        self.dirty = true;

        if self.survivors() == 0 {
            if self.active_slots().is_empty() && !self.queue_busy() {
                return Ok(()); // nothing left to run anyway
            }
            if self.churn.capacity_pending() {
                // Total outage, but a repair or join is scheduled: stall
                // until capacity returns (next epoch replans the backlog).
                return Ok(());
            }
            return Err(OnlineError::NoSurvivors(self.now));
        }

        // Immediate reactive replan of the surviving backlog.
        let active = self.active_slots();
        if !active.is_empty() {
            self.plan_ring2(&active);
            self.totals.reactive_replans += 1;
            self.rec.add("online.reactive_replans", 1);
            self.push_event(OnlineEventKind::Reactive(active.len()));
        }
        Ok(())
    }

    /// Slots of admitted, unfinished jobs, in admission (stream) order.
    fn active_slots(&self) -> Vec<usize> {
        (0..self.jobs.len())
            .filter(|&s| !self.jobs[s].done())
            .collect()
    }

    /// Advances simulated time to `target`, dispatching every task
    /// finish, churn event and arrival on the way (ties in that order).
    fn advance_to(&mut self, target: f64) -> Result<(), OnlineError> {
        loop {
            let finish_t = self.next_finish().filter(|&t| t <= target);
            let churn_t = self.churn.peek_time().filter(|&t| t <= target);
            let arrival_t = self
                .arrivals
                .get(self.next_arrival)
                .copied()
                .filter(|&t| t <= target);
            let t_ev = [finish_t, churn_t, arrival_t]
                .into_iter()
                .flatten()
                .fold(f64::INFINITY, f64::min);
            if !t_ev.is_finite() {
                self.integrate_to(target);
                self.now = target;
                return Ok(());
            }
            self.integrate_to(t_ev);
            self.now = t_ev;
            if finish_t == Some(t_ev) {
                self.settle_finishes_at(t_ev);
            } else if churn_t == Some(t_ev) {
                // `None` means the event was consumed as a no-op (a
                // failure drawn during a total outage); keep advancing.
                if let Some(ev) = self.churn.pop_before(t_ev, &self.alive) {
                    self.apply_churn(ev.kind)?;
                }
            } else {
                let index = self.next_arrival as u64;
                self.next_arrival += 1;
                self.queue.push(index);
                self.push_event(OnlineEventKind::Arrive(index));
            }
        }
    }

    /// Admits queued jobs into free backlog slots: generates the graph,
    /// computes its matrix/ideal, and seeds the incumbent with MCPA.
    fn admit(&mut self) -> usize {
        let mut admitted = 0;
        while !self.queue.is_empty() && self.active_slots().len() < self.cfg.max_backlog {
            let index = self.queue.remove(0);
            let it = item(self.cfg.seed, index, &self.cfg.costs);
            let matrix = TimeMatrix::compute(&it.ptg, self.model, self.speed, self.p_total);
            let alloc = Mcpa.allocate(&it.ptg, &matrix);
            let ideal = ListScheduler.makespan(&it.ptg, &matrix, &alloc);
            let n = it.ptg.task_count();
            self.jobs.push(Job {
                index,
                g: it.ptg,
                matrix,
                alloc,
                arrival: self.arrivals[index as usize],
                admitted: self.now,
                ideal,
                finished: vec![None; n],
                plan: Vec::new(),
                first_start: None,
                completion: None,
            });
            self.push_event(OnlineEventKind::Admit(index));
            self.rec.add("online.jobs_admitted", 1);
            admitted += 1;
            self.dirty = true;
        }
        admitted
    }

    /// Ring 2: reactive survivors-only FIFO. Each active job is
    /// rescheduled alone, behind per-processor `busy_until` floors raised
    /// by the jobs planned before it (and everyone's running tasks) —
    /// the cheapest plan that is always available.
    fn plan_ring2(&mut self, active: &[usize]) {
        let now = self.now;
        let mut floors = vec![now; self.p_total as usize];
        // Running tasks reserve their processors up front.
        for &slot in active {
            for p in self.jobs[slot].running_placements(now) {
                for &q in &p.processors {
                    floors[q as usize] = floors[q as usize].max(p.finish);
                }
            }
        }
        for &slot in active {
            let job = &self.jobs[slot];
            let running = job.running_placements(now);
            let state = ResumeState {
                now,
                alive: self.alive.clone(),
                finished: job.finished.clone(),
                running: running
                    .iter()
                    .map(|p| RunningTask {
                        task: p.task,
                        finish: p.finish,
                        processors: p.processors.clone(),
                    })
                    .collect(),
                busy_until: floors.clone(),
            };
            let fresh = Rescheduler
                .reschedule(&job.g, &job.matrix, &job.alloc, &state)
                .expect("ring 2 plans only with survivors");
            for p in &fresh {
                for &q in &p.processors {
                    floors[q as usize] = floors[q as usize].max(p.finish);
                }
            }
            let job = &mut self.jobs[slot];
            job.plan = running;
            job.plan.extend(fresh);
        }
    }

    /// Builds the backlog union for rings 1 and 0.
    fn build_union(&self, active: &[usize]) -> BacklogUnion {
        let mut b = PtgBuilder::new();
        let mut offsets = Vec::with_capacity(active.len());
        let mut alloc = Vec::new();
        let mut off = 0usize;
        for &slot in active {
            let job = &self.jobs[slot];
            for v in job.g.task_ids() {
                let t = job.g.task(v);
                b.add_task(t.name.clone(), t.flop, t.alpha);
            }
            for v in job.g.task_ids() {
                for &w in job.g.successors(v) {
                    b.add_edge(
                        TaskId((off + v.index()) as u32),
                        TaskId((off + w.index()) as u32),
                    )
                    .expect("job edges are valid in the union");
                }
            }
            for v in job.g.task_ids() {
                alloc.push(job.alloc.of(v));
            }
            offsets.push((slot, off, job.g.task_count()));
            off += job.g.task_count();
        }
        let g = b.build().expect("active jobs form a valid union graph");
        let matrix = TimeMatrix::compute(&g, self.model, self.speed, self.p_total);
        let mut finished = vec![None; off];
        let mut running = Vec::new();
        for &(slot, start, _) in &offsets {
            let job = &self.jobs[slot];
            for (i, f) in job.finished.iter().enumerate() {
                finished[start + i] = *f;
            }
            for p in job.running_placements(self.now) {
                running.push(RunningTask {
                    task: TaskId((start + p.task.index()) as u32),
                    finish: p.finish,
                    processors: p.processors.clone(),
                });
            }
        }
        BacklogUnion {
            g,
            matrix,
            alloc: Allocation::from_vec(alloc),
            state: ResumeState {
                now: self.now,
                alive: self.alive.clone(),
                finished,
                running,
                busy_until: Vec::new(),
            },
            offsets,
        }
    }

    /// Adopts `fresh` pending placements (already split per job) on top of
    /// each job's kept running tasks.
    fn adopt(&mut self, fresh: Vec<(usize, Vec<Placement>)>) {
        let now = self.now;
        for (slot, pending) in fresh {
            let job = &mut self.jobs[slot];
            let mut plan = job.running_placements(now);
            plan.extend(pending);
            job.plan = plan;
        }
    }

    /// One decision epoch: admit, and replan through the degradation
    /// rings if anything is dirty.
    fn decide(&mut self, epoch_index: usize) -> Result<(), OnlineError> {
        let admitted = self.admit();
        if !self.dirty {
            self.totals.idle_epochs += 1;
            self.rec.add("online.epochs.idle", 1);
            return Ok(());
        }
        if self.survivors() == 0 {
            // Total outage with capacity pending: stay dirty, wait.
            self.totals.idle_epochs += 1;
            self.rec.add("online.epochs.idle", 1);
            return Ok(());
        }
        let active = self.active_slots();
        if active.is_empty() {
            self.dirty = false;
            return Ok(());
        }

        // lint:allow(src-timing) -- the epoch budget is a wall-clock contract of the loop
        let t0 = Instant::now();
        let budget = self.cfg.epoch_budget;
        let slice_ok = |frac: f64| budget.is_none_or(|b| t0.elapsed() < b.mul_f64(frac));

        let rec = self.rec;
        let (ring, degraded) = rec.time("online.decide", || {
            // Ring 2 first: the safety net is always in hand before any
            // expensive thinking starts.
            self.plan_ring2(&active);
            let mut ring = 2u8;
            let mut degraded = false;
            if self.cfg.emts.is_some() {
                if slice_ok(0.25) {
                    let union = self.build_union(&active);
                    let repaired = Rescheduler
                        .reschedule(&union.g, &union.matrix, &union.alloc, &union.state)
                        .expect("ring 1 plans only with survivors");
                    self.adopt(union.split(repaired));
                    ring = 1;
                    let sabotaged = self.cfg.sabotage_ring0.contains(&epoch_index);
                    if !sabotaged && slice_ok(0.5) {
                        let deadline = budget.map(|b| t0 + b.mul_f64(0.9));
                        let emts_cfg = self.cfg.emts.clone().expect("checked above");
                        let result = Emts::new(emts_cfg).run_deadline(
                            &union.g,
                            &union.matrix,
                            epoch_seed(self.cfg.seed, epoch_index as u64),
                            deadline,
                            std::slice::from_ref(&union.alloc),
                            self.rec,
                        );
                        let evolved = Rescheduler
                            .reschedule(&union.g, &union.matrix, &result.best, &union.state)
                            .expect("ring 0 plans only with survivors");
                        self.adopt(union.split(evolved));
                        // The evolved allocation becomes the incumbent —
                        // the warm start of the next epoch.
                        for &(slot, off, len) in &union.offsets {
                            let per_job: Vec<u32> = (0..len)
                                .map(|i| result.best.of(TaskId((off + i) as u32)))
                                .collect();
                            self.jobs[slot].alloc = Allocation::from_vec(per_job);
                        }
                        ring = 0;
                    } else {
                        degraded = true;
                    }
                } else {
                    degraded = true;
                }
            }
            (ring, degraded)
        });

        let decision_seconds = t0.elapsed().as_secs_f64();
        let overran = budget.is_some_and(|b| decision_seconds > b.as_secs_f64());
        self.dirty = false;
        self.totals.decision_epochs += 1;
        self.totals.decision_wall_seconds += decision_seconds;
        match ring {
            0 => self.totals.ring0_epochs += 1,
            1 => self.totals.ring1_epochs += 1,
            _ => self.totals.ring2_epochs += 1,
        }
        self.rec.add("online.epochs.decision", 1);
        self.rec.add(
            match ring {
                0 => "online.ring0",
                1 => "online.ring1",
                _ => "online.ring2",
            },
            1,
        );
        if degraded {
            self.totals.watchdog_degraded += 1;
            self.rec.add("online.watchdog_degraded", 1);
        }
        if overran {
            self.totals.deadline_overruns += 1;
            self.rec.add("online.overruns", 1);
        }
        self.push_event(OnlineEventKind::Plan(epoch_index, ring, active.len()));
        self.epochs.push(EpochOutcome {
            epoch: epoch_index,
            time: self.now,
            ring,
            backlog: active.len(),
            admitted,
            degraded,
            overran,
            decision_seconds,
        });
        Ok(())
    }
}

/// Runs the online control loop to completion. See the module docs for
/// the regime; the result is deterministic in simulated time for a fixed
/// `(cluster, model, cfg)`.
pub fn run_online<R: Recorder>(
    cluster: &Cluster,
    model: &dyn ExecutionTimeModel,
    cfg: &OnlineConfig,
    rec: &R,
) -> Result<OnlineReport, OnlineError> {
    assert!(cfg.epoch > 0.0, "epoch period must be positive");
    assert!(cfg.max_backlog >= 1, "backlog must admit at least one job");
    assert!(cfg.slo_factor > 0.0, "SLO factor must be positive");

    let p_total = cluster.processors + cfg.churn.spares;
    let mut arrivals = Vec::with_capacity(cfg.jobs as usize);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ ARRIVAL_SALT);
    let mut t = 0.0;
    for _ in 0..cfg.jobs {
        if cfg.arrival_mean > 0.0 {
            t += -cfg.arrival_mean * (1.0 - rng.gen::<f64>()).ln();
        }
        arrivals.push(t);
    }

    let mut alive = vec![false; p_total as usize];
    for a in alive.iter_mut().take(cluster.processors as usize) {
        *a = true;
    }
    let mut sim = Online {
        cfg,
        model,
        rec,
        speed: cluster.speed_flops(),
        processors: cluster.processors,
        p_total,
        now: 0.0,
        alive,
        churn: ChurnStream::new(&cfg.churn, cfg.seed),
        arrivals,
        next_arrival: 0,
        queue: Vec::new(),
        jobs: Vec::new(),
        dirty: false,
        alive_seconds: 0.0,
        busy_seconds: 0.0,
        makespan: 0.0,
        events: Vec::new(),
        epochs: Vec::new(),
        totals: OnlineTotals {
            jobs: cfg.jobs,
            completed: 0,
            makespan: 0.0,
            queue_wait_mean: 0.0,
            stretch_mean: 0.0,
            stretch_p95: 0.0,
            utilization: 0.0,
            slo_attainment: 0.0,
            decision_epochs: 0,
            idle_epochs: 0,
            ring0_epochs: 0,
            ring1_epochs: 0,
            ring2_epochs: 0,
            watchdog_degraded: 0,
            deadline_overruns: 0,
            reactive_replans: 0,
            tasks_killed: 0,
            node_failures: 0,
            node_recoveries: 0,
            node_joins: 0,
            decision_wall_seconds: 0.0,
        },
    };

    let mut epoch_index = 0usize;
    while sim.totals.completed < cfg.jobs {
        let target = epoch_index as f64 * cfg.epoch;
        sim.advance_to(target)?;
        if sim.totals.completed >= cfg.jobs {
            break;
        }
        sim.decide(epoch_index)?;
        epoch_index += 1;
        assert!(
            epoch_index < 100_000_000,
            "online loop failed to make progress"
        );
    }

    // Aggregates. Jobs are reported in stream order.
    let mut outcomes: Vec<JobOutcome> = sim
        .jobs
        .iter()
        .map(|j| {
            let completion = j.completion.expect("run ended with all jobs complete");
            let first_start = j.first_start.expect("completed jobs started");
            JobOutcome {
                job: j.index,
                tasks: j.g.task_count(),
                arrival: j.arrival,
                admitted: j.admitted,
                first_start,
                completion,
                ideal: j.ideal,
                queue_wait: first_start - j.arrival,
                stretch: (completion - j.arrival) / j.ideal,
                slo_met: completion <= j.arrival + cfg.slo_factor * j.ideal,
            }
        })
        .collect();
    outcomes.sort_by_key(|o| o.job);

    let n = outcomes.len().max(1) as f64;
    let mut stretches: Vec<f64> = outcomes.iter().map(|o| o.stretch).collect();
    stretches.sort_by(|a, b| a.partial_cmp(b).expect("stretches are finite"));
    let p95 = stretches
        .get(((stretches.len() as f64 * 0.95).ceil() as usize).saturating_sub(1))
        .copied()
        .unwrap_or(0.0);
    sim.totals.makespan = sim.makespan;
    sim.totals.queue_wait_mean = outcomes.iter().map(|o| o.queue_wait).sum::<f64>() / n;
    sim.totals.stretch_mean = outcomes.iter().map(|o| o.stretch).sum::<f64>() / n;
    sim.totals.stretch_p95 = p95;
    sim.totals.utilization = if sim.alive_seconds > 0.0 {
        sim.busy_seconds / sim.alive_seconds
    } else {
        0.0
    };
    sim.totals.slo_attainment = outcomes.iter().filter(|o| o.slo_met).count() as f64 / n;

    rec.add("online.jobs_completed", sim.totals.completed);
    rec.gauge("online.queue_wait.mean", sim.totals.queue_wait_mean);
    rec.gauge("online.stretch.mean", sim.totals.stretch_mean);
    rec.gauge("online.stretch.p95", sim.totals.stretch_p95);
    rec.gauge("online.utilization", sim.totals.utilization);
    rec.gauge("online.slo_attainment", sim.totals.slo_attainment);
    rec.gauge("online.makespan", sim.totals.makespan);

    Ok(OnlineReport {
        mode: if cfg.emts.is_some() {
            "rolling".to_string()
        } else {
            "reactive".to_string()
        },
        seed: cfg.seed,
        epoch: cfg.epoch,
        arrival_mean: cfg.arrival_mean,
        slo_factor: cfg.slo_factor,
        churn: cfg.churn.canonical(),
        processors: cluster.processors,
        spares: cfg.churn.spares,
        epoch_budget_seconds: cfg.epoch_budget.map(|b| b.as_secs_f64()),
        totals: sim.totals,
        jobs: outcomes,
        epochs: sim.epochs,
        events: sim.events,
    })
}
