//! The simulator's event queue.

use ptg::TaskId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Kinds of simulation events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A task begins executing.
    Start,
    /// A task completes and releases its processors.
    Finish,
}

/// One timestamped event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Simulation time in seconds.
    pub time: f64,
    /// What happens.
    pub kind: EventKind,
    /// The task involved.
    pub task: TaskId,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap semantics via reversed comparison; at equal times,
        // finishes run before starts so released processors are reusable
        // at the same instant, and ties beyond that break by task id for
        // determinism.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then_with(|| match (self.kind, other.kind) {
                (EventKind::Finish, EventKind::Start) => Ordering::Greater,
                (EventKind::Start, EventKind::Finish) => Ordering::Less,
                _ => Ordering::Equal,
            })
            .then_with(|| other.task.cmp(&self.task))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue (earliest first; finishes before starts at
/// equal times).
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues an event.
    pub fn push(&mut self, event: Event) {
        assert!(
            event.time.is_finite() && event.time >= 0.0,
            "event time must be non-negative and finite"
        );
        self.heap.push(event);
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64, kind: EventKind, task: u32) -> Event {
        Event {
            time,
            kind,
            task: TaskId(task),
        }
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(ev(3.0, EventKind::Start, 0));
        q.push(ev(1.0, EventKind::Start, 1));
        q.push(ev(2.0, EventKind::Start, 2));
        let times: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn finish_precedes_start_at_equal_time() {
        let mut q = EventQueue::new();
        q.push(ev(1.0, EventKind::Start, 0));
        q.push(ev(1.0, EventKind::Finish, 1));
        assert_eq!(q.pop().unwrap().kind, EventKind::Finish);
        assert_eq!(q.pop().unwrap().kind, EventKind::Start);
    }

    #[test]
    fn equal_events_break_ties_by_task_id() {
        let mut q = EventQueue::new();
        q.push(ev(1.0, EventKind::Start, 5));
        q.push(ev(1.0, EventKind::Start, 2));
        assert_eq!(q.pop().unwrap().task, TaskId(2));
    }

    #[test]
    fn len_and_is_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(ev(1.0, EventKind::Start, 0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_panics() {
        EventQueue::new().push(ev(-1.0, EventKind::Start, 0));
    }
}
